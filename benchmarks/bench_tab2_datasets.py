"""Table II — the dataset catalog: paper numbers vs generated stand-ins."""

from conftest import run_once

from repro.bench.experiments import tab2_datasets


def test_tab2_dataset_catalog(benchmark, record_result):
    result = record_result(run_once(benchmark, tab2_datasets))

    assert [row["graph"] for row in result.rows] == ["WG", "CP", "AS", "LJ", "AB", "UK"]
    for row in result.rows:
        # Stand-ins preserve the paper's mean degree within 25%.
        paper_mean = row["paper_edges"] / row["paper_vertices"]
        assert abs(row["sim_mean_degree"] - paper_mean) / paper_mean < 0.25, row
        # Edge ordering of the catalog matches the paper (ascending |E|).
    paper_edges = result.column("paper_edges")
    assert paper_edges == sorted(paper_edges)
    # Directed web/citation graphs carry dangling vertices; social ones don't.
    by_name = {row["graph"]: row for row in result.rows}
    assert by_name["WG"]["sim_dangling"] > 0.05
    assert by_name["CP"]["sim_dangling"] > 0.15
    assert by_name["LJ"]["sim_dangling"] < 0.02
