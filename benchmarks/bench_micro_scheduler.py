"""Section VI microbenchmarks — the scheduler's formal guarantees.

Two sweeps back the design choices DESIGN.md calls out:

* Theorem VI.1 buffer depth: bubbles collapse once per-pipeline FIFO
  depth reaches ``1 + 4*log2(N)``;
* the asynchronous engine's outstanding-request capacity: throughput
  saturates once the window covers the memory round trip (the paper
  provisions 128).
"""

from conftest import run_once

from repro.bench.experiments import micro_outstanding_sweep, micro_scheduler_depth


def test_micro_theorem_depth_sweep(benchmark, record_result):
    result = record_result(run_once(benchmark, micro_scheduler_depth))

    by_depth = {row["depth"]: row["bubble_ratio"] for row in result.rows}
    depths = sorted(by_depth)
    shallow = by_depth[depths[0]]
    theorem_rows = [row for row in result.rows if row["meets_theorem"]]
    assert theorem_rows, "sweep must include the theorem depth"
    # Bubbles at/above the theorem depth are at least 4x below the
    # shallow configuration.
    for row in theorem_rows:
        assert row["bubble_ratio"] < shallow / 4, row
    # And the deepest configuration is essentially bubble-free.
    assert by_depth[depths[-1]] < 0.01


def test_micro_outstanding_sweep(record_result, benchmark):
    result = record_result(run_once(benchmark, micro_outstanding_sweep))

    by_capacity = {row["outstanding"]: row["msteps"] for row in result.rows}
    # Monotone improvement until saturation.
    assert by_capacity[4] > by_capacity[1]
    assert by_capacity[16] > by_capacity[4]
    assert by_capacity[64] > by_capacity[16] * 0.95
    # 128 buys little over 64 once the round trip is covered.
    assert by_capacity[128] < by_capacity[64] * 1.3
    # The async window is worth at least 5x over blocking access.
    assert by_capacity[128] > 5 * by_capacity[1]
