"""Serving benchmark: open-loop micro-batched service vs the closed batch engine.

Three measurements on one workload (default: Node2Vec, length 80,
RMAT-18 — a second-order workload whose per-hop cost is representative
of real serving; on trivially cheap workloads the fixed per-request
scheduling cost dominates and the ratio measures asyncio, not the
service design):

1. **Closed-batch baseline** — the single-core batch engine runs every
   query as one pre-materialized batch with a warmed kernel: the
   throughput ceiling an open system can approach but not beat.
2. **Saturation serving** — the same queries arrive back-to-back as
   individual requests through :class:`repro.serve.WalkService`
   (micro-batching, futures, slicing included).  Sustained hops/sec —
   first submission to last completion — must stay within
   ``--min-ratio`` (default 0.8x) of the closed baseline, or the
   benchmark exits non-zero on full runs: micro-batching is allowed to
   cost a scheduling overhead, not a pipeline stall.
3. **Nominal Poisson serving** — open-loop arrivals at ``--load`` x the
   measured capacity, admission depth sized by the M/M/1[N] occupancy
   model.  Reports p50/p95/p99 latency and the micro-batch histogram;
   zero requests may be shed at nominal load.

Every serving run is also replayed offline through ``run_walks_batch``
and compared bit-for-bit — determinism under batching is part of the
perf contract, not a separate test.

``--smoke`` (wired into ``scripts/check.sh``) shrinks the workload,
skips the throughput gate (timing on a loaded CI host is noise at that
size), and keeps the hard assertions: zero drops at nominal load,
bit-identical replay on both serving runs.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import RMAT_BENCH_ALGORITHMS, make_spec
from repro.engines import hops_per_second
from repro.graph import rmat
from repro.sampling.hybrid import SAMPLER_MODES, make_walk_kernel
from repro.serve import (
    ServeConfig,
    WalkService,
    recommended_queue_depth,
    replay_paths,
    serve_open_loop,
)
from repro.walks import EngineStats, make_queries
from repro.walks.batch import run_walks_batch_arrays


def closed_batch_baseline(graph, spec, starts, seed, sampler="auto"):
    """Warmed single-core batch run over all queries at once.

    ``sampler`` must match the service's mode: the >= min-ratio gate is
    about micro-batching overhead, so the baseline and the service have
    to run the same kernel family.
    """
    kernel = make_walk_kernel(spec.make_sampler(), sampler)
    kernel.prepare(graph)
    query_ids = np.arange(starts.size, dtype=np.int64)
    stats = EngineStats()
    started = time.perf_counter()
    run_walks_batch_arrays(graph, spec, kernel, starts, query_ids,
                           seed=seed, stats=stats)
    elapsed = time.perf_counter() - started
    return stats.total_hops, elapsed


def assert_replay_identical(graph, spec, report, seed, label, sampler="auto"):
    """Every served path must equal its offline replay, bit for bit."""
    requests = {query_id: int(path[0]) for query_id, path in report.paths.items()}
    oracle = replay_paths(graph, spec, requests, seed=seed, sampler=sampler)
    for query_id, expected in oracle.items():
        if not np.array_equal(report.paths[query_id], expected):
            print(f"FAIL: {label}: request {query_id} diverged from offline replay",
                  file=sys.stderr)
            return False
    print(f"replay:   {label}: {len(oracle)} served paths bit-identical offline")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=18,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=12)
    parser.add_argument("--requests", type=int, default=16_000)
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--algorithm", choices=RMAT_BENCH_ALGORITHMS,
                        default="Node2Vec")
    parser.add_argument("--engine", choices=("batch", "parallel"), default="batch",
                        help="engine behind the service (baseline is always "
                        "the closed single-core batch engine)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (parallel engine only)")
    parser.add_argument("--sampler", choices=SAMPLER_MODES, default="auto",
                        help="sampling backend for BOTH the service and the "
                        "closed baseline (default: auto, the serve default)")
    parser.add_argument("--max-batch", type=int, default=8192,
                        help="service micro-batch flush size (the saturation "
                        "leg is throughput-oriented; nominal-load batches "
                        "stay small because max_wait_ms flushes them)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N runs for the closed and saturation "
                        "legs (full runs only; smokes run once)")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="fail a full run when sustained serve hops/sec "
                        "falls below this fraction of the closed baseline")
    parser.add_argument("--load", type=float, default=0.5,
                        help="nominal Poisson run's offered load as a fraction "
                        "of measured capacity")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_serve.json for full runs and off for "
                        "--smoke; '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny workload, no throughput gate, hard "
                        "zero-drop and bit-identical-replay assertions")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 10)
        args.edge_factor = min(args.edge_factor, 8)
        args.requests = min(args.requests, 400)
        args.length = min(args.length, 40)
        args.max_batch = min(args.max_batch, 64)
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_serve.json")

    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, args.requests, seed=args.seed + 1)
    starts = np.fromiter((q.start_vertex for q in queries), dtype=np.int64,
                         count=len(queries))
    serve_seed = args.seed + 2
    print(f"graph: {graph}")
    print(f"workload: {args.algorithm}, {args.requests} requests, "
          f"length {args.length}; service engine: {args.engine}, "
          f"max_batch {args.max_batch}")

    # Best-of-N on both sides: single-run wall clocks on a shared host
    # swing +-15%, which would make a 0.8x ratio gate a coin flip.  Both
    # legs get the same treatment, so the ratio stays honest.
    repeats = 1 if args.smoke else args.repeats
    closed_hops, closed_s = min(
        (closed_batch_baseline(graph, spec, starts, serve_seed, args.sampler)
         for _ in range(repeats)),
        key=lambda pair: pair[1],
    )
    closed_rate = hops_per_second(closed_hops, closed_s)
    print(f"closed:   {closed_hops:>10d} hops  {closed_s:8.3f}s  "
          f"{closed_rate:>12,.0f} hops/s  (batch engine, one closed batch, "
          f"best of {repeats})")

    engine_options = {"workers": args.workers} if args.engine == "parallel" else {}
    engine_options["sampler"] = args.sampler

    # -- saturation serving: equal total query count, open ingest ----------
    saturation_config = ServeConfig(
        max_batch=args.max_batch,
        # The saturation leg is throughput-oriented: a flush deadline a
        # little above the burst's fill time lets micro-batches reach
        # max_batch while admission pipelines behind execution.  Nominal
        # load below keeps the latency-oriented --max-wait-ms.
        max_wait_ms=max(args.max_wait_ms, 50.0),
        # Depth >= the whole burst: the saturation run measures pipeline
        # throughput, so nothing may shed.
        queue_depth=args.requests,
    )
    report, service = None, None
    for _ in range(repeats):
        candidate_report, candidate_service = serve_open_loop(
            lambda: WalkService(graph, spec, engine=args.engine, seed=serve_seed,
                                config=saturation_config, **engine_options),
            starts,
            rate_per_second=0.0,
        )
        if (service is None
                or candidate_service.stats.sustained_hops_per_second()
                > service.stats.sustained_hops_per_second()):
            report, service = candidate_report, candidate_service
    serve_stats = service.stats
    serve_rate = serve_stats.sustained_hops_per_second()
    ratio = serve_rate / closed_rate if closed_rate else float("inf")
    print(f"serve:    {serve_stats.total_hops:>10d} hops  "
          f"{serve_stats.total_hops / serve_rate if serve_rate else 0:8.3f}s  "
          f"{serve_rate:>12,.0f} hops/s  "
          f"(saturation, mean batch {serve_stats.mean_batch_size():.1f})")
    print(f"ratio:    {ratio:.3f}x of closed batch "
          f"(gate: >= {args.min_ratio:.2f}x on full runs)")
    ok = True
    if report.dropped:
        print(f"FAIL: saturation run shed {len(report.dropped)} requests with "
              f"depth {saturation_config.queue_depth}", file=sys.stderr)
        ok = False
    ok = assert_replay_identical(graph, spec, report, serve_seed, "saturation",
                                 sampler=args.sampler) and ok

    # -- nominal Poisson serving: latency under admission-model depth ------
    mean_hops = serve_stats.total_hops / max(1, serve_stats.completed)
    capacity = closed_rate / max(mean_hops, 1e-9)  # requests/sec
    arrival_rate = args.load * capacity
    depth = recommended_queue_depth(
        arrival_rate=arrival_rate,
        service_rate=capacity / args.max_batch,
        max_batch=args.max_batch,
    )
    nominal_requests = max(200, args.requests // 4)
    nominal_config = ServeConfig(max_batch=args.max_batch,
                                 max_wait_ms=args.max_wait_ms, queue_depth=depth)
    nominal_report, nominal_service = serve_open_loop(
        lambda: WalkService(graph, spec, engine=args.engine, seed=serve_seed,
                            config=nominal_config, **engine_options),
        starts[:nominal_requests],
        rate_per_second=arrival_rate,
        arrival_seed=args.seed + 3,
    )
    nominal_stats = nominal_service.stats
    percentiles = nominal_stats.latency_percentiles()
    print(f"nominal:  {nominal_requests} requests at "
          f"{arrival_rate:,.0f} req/s ({args.load:.0%} capacity), depth {depth}: "
          f"p50 {percentiles['p50'] * 1e3:.2f}ms  "
          f"p95 {percentiles['p95'] * 1e3:.2f}ms  "
          f"p99 {percentiles['p99'] * 1e3:.2f}ms, "
          f"{nominal_stats.dropped} shed")
    if nominal_report.dropped:
        print(f"FAIL: nominal load shed {len(nominal_report.dropped)} requests "
              f"(depth {depth} from the occupancy model)", file=sys.stderr)
        ok = False
    ok = assert_replay_identical(graph, spec, nominal_report, serve_seed,
                                 "nominal", sampler=args.sampler) and ok

    if args.json:
        write_bench_json(args.json, {
            "benchmark": "serve",
            "workload": {
                "algorithm": args.algorithm,
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "requests": args.requests,
                "length": args.length,
                "smoke": args.smoke,
            },
            "service": {
                "engine": args.engine,
                "max_batch": args.max_batch,
                "max_wait_ms": args.max_wait_ms,
            },
            "hops_per_sec": {
                "closed_batch": round(closed_rate),
                "serve_sustained": round(serve_rate),
            },
            "serve_to_closed_ratio": round(ratio, 3),
            "saturation": serve_stats.snapshot(),
            "nominal": {
                "arrival_rate_per_sec": round(arrival_rate, 1),
                "offered_load": args.load,
                "queue_depth": depth,
                **nominal_stats.snapshot(),
            },
            "gate": {
                "min_ratio": args.min_ratio,
                "enforced": not args.smoke,
            },
        })
        print(f"wrote {args.json}")

    if not ok:
        return 1
    if not args.smoke and ratio < args.min_ratio:
        print("FAIL: serving throughput below required fraction of the closed "
              "batch engine", file=sys.stderr)
        return 1
    print("PASS" + (" (smoke: zero drops + bit-identical replay)"
                    if args.smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
