"""Table IV — resource utilization and frequency per GRW kernel (U55C)."""

from conftest import run_once

from repro.bench.experiments import tab4_resources


def test_tab4_resource_model(benchmark, record_result):
    result = record_result(run_once(benchmark, tab4_resources))

    rows = {row["kernel"]: row for row in result.rows}
    # Model within 6 percentage points of the paper on every cell.
    for kernel, row in rows.items():
        for model_key, paper_key in (
            ("luts_pct", "paper_luts"),
            ("regs_pct", "paper_regs"),
            ("brams_pct", "paper_brams"),
            ("dsps_pct", "paper_dsps"),
        ):
            assert abs(row[model_key] - row[paper_key]) < 6.0, (kernel, model_key, row)
    # Table IV's ordering: Node2Vec is the heaviest kernel in LUTs,
    # DeepWalk the heaviest in BRAM, URW the lightest overall.
    assert rows["Node2Vec"]["luts_pct"] == max(r["luts_pct"] for r in rows.values())
    assert rows["DeepWalk"]["brams_pct"] == max(r["brams_pct"] for r in rows.values())
    assert rows["URW"]["luts_pct"] == min(r["luts_pct"] for r in rows.values())
    # Every kernel closes at 320 MHz.
    assert all(row["frequency_mhz"] == 320.0 for row in rows.values())
