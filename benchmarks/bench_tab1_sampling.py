"""Table I — supported sampling algorithms and RP entry configurations."""

from conftest import run_once

from repro.bench.experiments import tab1_sampling_support


def test_tab1_sampling_support(benchmark, record_result):
    result = record_result(run_once(benchmark, tab1_sampling_support))

    for row in result.rows:
        assert row["sampler"] == row["expected_sampler"], row
        assert row["rp_entry_bits"] == row["expected_bits"], row
    # All four Table I sampler families are covered.
    assert set(result.column("sampler")) == {"uniform", "alias", "rejection", "reservoir"}
