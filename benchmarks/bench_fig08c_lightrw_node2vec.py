"""Figure 8c — Node2Vec (weighted, reservoir): RidgeWalker vs LightRW.

Paper shape: modest but consistent wins (1.1x-1.5x) — LightRW is deeply
pipelined too; the delta comes from its static batch bubbles.
"""

from conftest import run_once

from repro.bench.experiments import fig8c_lightrw_node2vec
from repro.bench.reporting import geometric_mean


def test_fig8c_node2vec_vs_lightrw(benchmark, record_result):
    result = record_result(run_once(benchmark, fig8c_lightrw_node2vec))

    speedups = result.column("speedup")
    # RidgeWalker at least matches LightRW everywhere...
    assert all(s > 0.7 for s in speedups), speedups
    # ...wins on average...
    assert geometric_mean(speedups) > 1.0
    # ...but not by an order of magnitude: LightRW is a strong baseline.
    assert max(speedups) < 8.0
