"""Table III — average URW throughput across four FPGA platforms.

Paper shape: throughput ranks U55C > U50 >> U250 > VCK5000, tracking
each platform's random-access channel capability, with bandwidth
utilization high (81-88%) everywhere.
"""

from conftest import run_once

from repro.bench.experiments import tab3_devices


def test_tab3_urw_across_devices(benchmark, record_result):
    result = record_result(run_once(benchmark, tab3_devices))

    rows = {row["device"]: row for row in result.rows}
    # HBM platforms crush the DDR4 platforms.
    assert rows["U55C"]["avg_msteps"] > 3 * rows["U250"]["avg_msteps"]
    assert rows["U50"]["avg_msteps"] > 3 * rows["VCK5000"]["avg_msteps"]
    # U55C is the fastest stack, U50 second (Table III ordering).
    assert rows["U55C"]["avg_msteps"] > rows["U50"]["avg_msteps"]
    assert rows["U250"]["avg_msteps"] > rows["VCK5000"]["avg_msteps"]
    # Utilization stays healthy on every platform (paper: 81-88%).
    for device, row in rows.items():
        assert row["avg_utilization"] > 0.4, (device, row["avg_utilization"])
