"""Distributed engine benchmark: bit-identity gate + scaling vs parallel.

Runs one workload — by default 50k DeepWalk queries of length 80 on an
RMAT-17 graph — through the single-core batch engine, the sharded
``parallel`` engine, and the distributed shard-routed ``dist`` engine
(all warmed), then:

* **always** verifies the dist engine's results are bit-identical to the
  batch engine's — the determinism contract of walker forwarding, which
  no configuration is allowed to lose;
* on a host with >= 4 cores, requires dist throughput to reach
  ``--min-ratio`` (default 0.7x) of the parallel engine's — dist pays
  per-superstep routing the worker pool does not, but partitioned
  execution must stay in the same performance class (advisory on
  smaller hosts: nothing to scale across).

``BENCH_dist.json`` records hops/sec for all three engines plus the
routing telemetry that characterizes the partition: forwarding rate
(fraction of hops that crossed a shard boundary) and per-shard occupancy
(walker-steps processed per shard, normalized).

``--smoke`` (used by ``scripts/check.sh`` and the CI fast lane) shrinks
to a 2-shard RMAT-12 run and checks only the bit-identity gate.

Run:  PYTHONPATH=src python benchmarks/bench_dist_engine.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_dist_engine.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import RMAT_BENCH_ALGORITHMS, make_spec
from repro.dist import DistWalkEngine
from repro.engines import hops_per_second
from repro.graph import rmat
from repro.parallel import ParallelWalkEngine, default_workers
from repro.sampling.vectorized import make_kernel
from repro.walks import EngineStats, WalkResults, make_queries
from repro.walks.batch import run_walks_batch_arrays

#: Available cores below which the scaling gate is advisory — with
#: fewer, shard workers time-slice and the ratio measures the
#: scheduler, not the engine.
MIN_GATED_CORES = 4


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=17,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--queries", type=int, default=50_000)
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--algorithm", choices=RMAT_BENCH_ALGORITHMS, default="DeepWalk")
    parser.add_argument("--shards", type=int, default=None,
                        help="graph partitions (default: all cores)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="fail when dist/parallel hops-per-sec falls below "
                        f"this on a >= {MIN_GATED_CORES}-core host")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_dist.json for full runs and off for "
                        "--smoke (so CI smokes don't overwrite the acceptance "
                        "record); '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: 2 shards on RMAT-12, bit-identity only")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 12)
        args.edge_factor = min(args.edge_factor, 8)
        args.queries = min(args.queries, 2_000)
        args.length = min(args.length, 40)
        args.shards = args.shards or 2
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_dist.json")

    host_cores = default_workers()
    shards = args.shards or host_cores
    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    print(f"graph: {graph}")
    print(f"workload: {args.algorithm}, {args.queries} queries, length {args.length}")
    print(f"host: {host_cores} cores; dist shards: {shards}")

    # Warmed-vs-warmed throughout (see bench_parallel_engine.py): every
    # engine's one-time preparation — kernel tables, partitioning,
    # worker start-up — stays outside the timed section.
    kernel = make_kernel(spec.make_sampler())
    kernel.prepare(graph)
    query_ids = np.fromiter((q.query_id for q in queries), np.int64, len(queries))
    starts = np.fromiter((q.start_vertex for q in queries), np.int64, len(queries))
    batch_stats = EngineStats()
    started = time.perf_counter()
    paths, hops = run_walks_batch_arrays(
        graph, spec, kernel, starts, query_ids, seed=args.seed + 2, stats=batch_stats
    )
    batch_results = WalkResults()
    batch_results.extend_from_matrix(paths, hops)
    batch_s = time.perf_counter() - started
    batch_rate = hops_per_second(batch_stats.total_hops, batch_s)
    print(f"batch:    {batch_stats.total_hops:>10d} hops  {batch_s:8.3f}s  "
          f"{batch_rate:>12,.0f} hops/s")

    parallel_stats = EngineStats()
    with ParallelWalkEngine(graph, spec, workers=shards) as engine:
        engine.run(queries[: shards * 8], seed=args.seed + 99)
        started = time.perf_counter()
        engine.run(queries, seed=args.seed + 2, stats=parallel_stats)
        parallel_s = time.perf_counter() - started
    parallel_rate = hops_per_second(parallel_stats.total_hops, parallel_s)
    print(f"parallel: {parallel_stats.total_hops:>10d} hops  {parallel_s:8.3f}s  "
          f"{parallel_rate:>12,.0f} hops/s")

    dist_stats = EngineStats()
    with DistWalkEngine(graph, spec, shards=shards) as engine:
        engine.run(queries[: shards * 8], seed=args.seed + 99)
        started = time.perf_counter()
        dist_results = engine.run(queries, seed=args.seed + 2, stats=dist_stats)
        dist_s = time.perf_counter() - started
        routing = engine.last_run_stats or {}
    dist_rate = hops_per_second(dist_stats.total_hops, dist_s)
    print(f"dist:     {dist_stats.total_hops:>10d} hops  {dist_s:8.3f}s  "
          f"{dist_rate:>12,.0f} hops/s")

    processed = np.asarray(routing.get("per_shard_processed", []), dtype=np.float64)
    occupancy = (processed / processed.sum()).tolist() if processed.sum() else []
    forward_rate = float(routing.get("forward_rate", 0.0))
    ratio = dist_rate / parallel_rate if parallel_rate else float("inf")
    print(f"routing:  {routing.get('forwarded', 0)} forwards "
          f"({forward_rate * 100:.1f}% of hops crossed shards); "
          f"occupancy {['%.3f' % o for o in occupancy]}")
    print(f"ratio:    {ratio:.2f}x of parallel "
          f"(gate: {args.min_ratio:.1f}x on >= {MIN_GATED_CORES} cores)")

    if args.json:
        write_bench_json(args.json, {
            "benchmark": "dist_engine",
            "workload": {
                "algorithm": args.algorithm,
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "queries": args.queries,
                "length": args.length,
                "smoke": args.smoke,
            },
            "host_cores": host_cores,
            "shards": shards,
            "hops_per_sec": {
                "batch": round(batch_rate),
                "parallel": round(parallel_rate),
                "dist": round(dist_rate),
            },
            "total_hops": dist_stats.total_hops,
            "ratio_vs_parallel": round(ratio, 3),
            "forward_rate": round(forward_rate, 4),
            "per_shard_occupancy": [round(o, 4) for o in occupancy],
            "gate": {
                "min_ratio": args.min_ratio,
                "enforced": host_cores >= MIN_GATED_CORES and not args.smoke,
            },
        })
        print(f"wrote {args.json}")

    # The bit-identity gate applies to every run, full or smoke: losing
    # it silently would invalidate every other number in the record.
    if dist_stats.total_hops != batch_stats.total_hops:
        print("FAIL: dist engine hop count diverges from batch", file=sys.stderr)
        return 1
    for a, b in zip(batch_results.paths, dist_results.paths):
        if not np.array_equal(a, b):
            print("FAIL: dist engine paths diverge from batch", file=sys.stderr)
            return 1
    print("bit-identity: dist results identical to batch")

    if args.smoke:
        print("PASS (smoke)")
        return 0
    if host_cores < MIN_GATED_CORES:
        print(f"PASS (advisory: {host_cores} < {MIN_GATED_CORES} cores, "
              "scaling gate not enforced)")
        return 0
    if ratio < args.min_ratio:
        print("FAIL: dist engine below required fraction of parallel throughput",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
