"""Figure 9 — RidgeWalker (U55C) vs gSampler (H100), four GRWs x six graphs.

Paper shape per panel: PPR 8.8-21.1x (divergence from geometric walk
lengths), URW 3.1-7.6x, DeepWalk 8.7-22.9x (alias sampling doubles GPU
RNG/instruction work), Node2Vec 1.28-2.16x (rejection sampling's bulk
probes suit the GPU — the smallest gap).
"""

from conftest import run_once

from repro.bench.experiments import fig9_gpu
from repro.bench.reporting import geometric_mean


def test_fig9_speedup_over_gsampler(benchmark, record_result):
    result = record_result(run_once(benchmark, fig9_gpu))

    by_algorithm: dict[str, list[float]] = {}
    for row in result.rows:
        by_algorithm.setdefault(row["algorithm"], []).append(row["speedup"])

    means = {alg: geometric_mean(vals) for alg, vals in by_algorithm.items()}
    # RidgeWalker wins on every algorithm on average.
    assert all(m > 1.0 for m in means.values()), means
    # Node2Vec is the GPU's best case: the smallest average gap.
    assert means["Node2Vec"] == min(means.values()), means
    # PPR and DeepWalk are the GPU's worst cases: clearly above URW.
    assert means["PPR"] > means["URW"]
    assert means["DeepWalk"] > means["Node2Vec"]
    # Per-row: RidgeWalker never loses by more than a whisker anywhere.
    assert all(row["speedup"] > 0.8 for row in result.rows)
