"""Figure 3a — FastRW bandwidth collapse (motivation, Observation #1).

Regenerates the bottom-up analysis: FastRW's effective bandwidth on WG
(row pointers cached on-chip) vs LJ (working set spills), against the
Equation (1) random-access peak.
"""

from conftest import run_once

from repro.bench.experiments import fig3a_motivation


def test_fig3a_fastrw_bandwidth_collapse(benchmark, record_result):
    result = record_result(run_once(benchmark, fig3a_motivation))

    wg = result.row_for(graph="WG")
    lj = result.row_for(graph="LJ")
    # The cliff: WG enjoys a far higher cache hit rate and utilization.
    assert wg["cache_hit_rate"] > 0.9
    assert lj["cache_hit_rate"] < 0.8
    assert wg["utilization"] > 2 * lj["utilization"]
    # Neither exceeds the Equation (1) peak.
    assert wg["effective_gbs"] <= wg["peak_gbs"] * 1.01
    assert lj["effective_gbs"] <= lj["peak_gbs"] * 1.01
