"""Shared fixtures for the experiment benchmarks.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round — these are simulations, not microbenchmarks to be repeated),
prints the regenerated table, and archives it under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.reporting import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print and archive one ExperimentResult."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        table = result.to_table()
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(table + "\n", encoding="utf-8")
        return result

    return _record


def run_once(benchmark, fn):
    """Run an experiment function once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
