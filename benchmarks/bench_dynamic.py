"""Dynamic-graph benchmark: incremental maintenance vs full rebuilds.

Streams a sliding-window update trace (the default; grow-only and
weight-churn are selectable) over an RMAT graph into
:class:`repro.dynamic.DynamicGraph`, publishing one epoch snapshot per
batch, and measures:

1. **updates/s** — edge operations applied and published per second,
   including the incremental alias/ITS/edge-key maintenance;
2. **maintenance speedup** — per-batch incremental cost vs the
   from-scratch rebuild (``from_edges`` + alias tables + ITS CDF + edge
   keys) a static pipeline pays per update batch.  Full runs **gate**
   this at ``--min-speedup`` (default 5x) on the RMAT-16 sliding-window
   trace — incremental maintenance that cannot clearly beat a rebuild
   has no reason to exist;
3. **walk-throughput retention** — batch-engine hops/s on the final
   snapshot (kernel state handed over from the snapshot, zero prepare)
   vs a freshly built static graph, with paths and ``EngineStats``
   required to be **bit-identical** (the snapshot-equivalence guarantee;
   asserted on smokes and full runs alike).

``--smoke`` (wired into ``scripts/check.sh``) shrinks the trace and
skips the timing gate (wall-clock on a loaded CI host is noise at that
size) but keeps the hard equivalence assertion.

Run:  PYTHONPATH=src python benchmarks/bench_dynamic.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_dynamic.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import make_spec
from repro.dynamic import make_trace, run_mutate_bench

ALGORITHMS = ("DeepWalk", "Node2Vec", "PPR", "URW")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=("grow", "window", "churn"),
                        default="window",
                        help="update pattern (acceptance gate: window)")
    parser.add_argument("--scale", type=int, default=16,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=600,
                        help="edge operations per update batch")
    parser.add_argument("--batches", type=int, default=60,
                        help="60 batches of 600 ops cross the default "
                        "compaction threshold on RMAT-16, so the acceptance "
                        "run records a real compaction cost")
    parser.add_argument("--algorithm", choices=ALGORITHMS, default="DeepWalk",
                        help="walk workload for the retention measurement "
                        "(DeepWalk exercises the weighted alias path the "
                        "incremental maintenance exists for)")
    parser.add_argument("--queries", type=int, default=2048)
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--compaction-threshold", type=float, default=0.25)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail a full run when incremental maintenance is "
                        "not at least this much faster than full rebuilds")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_dynamic.json for full runs and off "
                        "for --smoke; '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny trace, no timing gate, hard "
                        "snapshot-equivalence assertion")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 9)
        args.batch_size = min(args.batch_size, 200)
        args.batches = min(args.batches, 6)
        args.queries = min(args.queries, 256)
        args.length = min(args.length, 40)
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_dynamic.json")

    kwargs = dict(edge_factor=args.edge_factor, batch_size=args.batch_size,
                  num_batches=args.batches, seed=args.seed)
    if args.trace != "churn":
        kwargs["weighted"] = True
    trace = make_trace(args.trace, args.scale, **kwargs)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length

    print(f"trace: {trace.name}, {len(trace.batches)} batches of "
          f"~{args.batch_size} edge ops ({trace.total_ops} total)")
    print(f"retention workload: {args.algorithm}, {args.queries} queries, "
          f"length {args.length}")
    report = run_mutate_bench(
        trace, spec,
        seed=args.seed,
        walk_queries=args.queries,
        compaction_threshold=args.compaction_threshold,
    )
    print()
    print(report.summary())
    print()

    ok = True
    if not report.snapshot_equivalent:
        print("FAIL: snapshot diverged from a from-scratch build of the same "
              "logical graph (arrays, paths or EngineStats)", file=sys.stderr)
        ok = False
    else:
        print("equivalence: snapshot bit-identical to a from-scratch build "
              "(graph arrays, sampler state, walk paths, EngineStats)")
    if args.smoke:
        print(f"speedup gate skipped on --smoke (measured "
              f"{report.maintenance_speedup:.1f}x)")
    elif report.maintenance_speedup < args.min_speedup:
        print(f"FAIL: incremental maintenance only "
              f"{report.maintenance_speedup:.1f}x faster than full rebuilds "
              f"(gate: >= {args.min_speedup:.1f}x)", file=sys.stderr)
        ok = False
    else:
        print(f"speedup gate: {report.maintenance_speedup:.1f}x >= "
              f"{args.min_speedup:.1f}x")

    if args.json:
        payload = {
            "benchmark": "dynamic",
            "trace": report.trace,
            "algorithm": report.algorithm,
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "batch_size": args.batch_size,
            "batches": report.num_batches,
            "ops_applied": report.ops_applied,
            "final_edges": report.final_edges,
            "final_epoch": report.final_epoch,
            "updates_per_second": round(report.updates_per_second, 1),
            "mean_snapshot_ms": round(report.mean_snapshot_seconds * 1e3, 3),
            "compactions": report.compactions,
            "compaction_seconds": round(report.compaction_seconds, 4),
            "updates_applied": report.updates_applied,
            "delta_edges": report.delta_edges,
            "delta_peak": report.delta_peak,
            "mean_full_rebuild_ms": round(
                report.mean_full_rebuild_seconds * 1e3, 3),
            "maintenance_speedup": round(report.maintenance_speedup, 2),
            "min_speedup_gate": args.min_speedup,
            "dynamic_hops_per_second": round(report.dynamic_hops_per_second, 1),
            "static_hops_per_second": round(report.static_hops_per_second, 1),
            "walk_retention": round(report.walk_retention, 4),
            "snapshot_equivalent": report.snapshot_equivalent,
            "host_cores": os.cpu_count(),
            "seed": args.seed,
        }
        write_bench_json(args.json, payload)
        print(f"wrote {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
