"""Figure 10 — RMAT graphs: balanced vs Graph500 initiators (DeepWalk).

Paper shape: on balanced RMAT the GPU runs near its random-access peak
(~9473 MStep/s on SC24) and beats RidgeWalker's absolute throughput; the
Graph500 initiator's skew collapses the GPU by over an order of
magnitude (592 MStep/s) through warp lockstep divergence, while
RidgeWalker holds roughly constant (~2130-2241) — architectural
tolerance to imbalance beats raw bandwidth.
"""

from conftest import run_once

from repro.bench.experiments import fig10_rmat


def test_fig10_balanced_vs_graph500(benchmark, record_result):
    result = record_result(run_once(benchmark, fig10_rmat))

    balanced = [r for r in result.rows if r["initiator"] == "balanced"]
    skewed = [r for r in result.rows if r["initiator"] == "graph500"]

    # Balanced: the GPU's lockstep efficiency is near perfect and its
    # absolute throughput beats RidgeWalker (the paper concedes this).
    for row in balanced:
        assert row["lockstep_efficiency"] > 0.9, row
        assert row["gsampler_msteps"] > row["ridgewalker_msteps"], row
        # ...and it runs near its own random-access peak.
        assert row["gsampler_msteps"] > 0.9 * row["gpu_peak_msteps"], row

    # Graph500 skew: warp divergence costs the GPU a large factor.
    gpu_balanced = sum(r["gsampler_msteps"] for r in balanced) / len(balanced)
    gpu_skewed = sum(r["gsampler_msteps"] for r in skewed) / len(skewed)
    assert gpu_balanced > 1.4 * gpu_skewed, (gpu_balanced, gpu_skewed)
    for row in skewed:
        assert row["lockstep_efficiency"] < 0.75, row

    # RidgeWalker is nearly flat across initiators — the architectural
    # tolerance to imbalance that is Figure 10's headline.
    rw_balanced = sum(r["ridgewalker_msteps"] for r in balanced) / len(balanced)
    rw_skewed = sum(r["ridgewalker_msteps"] for r in skewed) / len(skewed)
    assert rw_skewed > 0.8 * rw_balanced, (rw_balanced, rw_skewed)

    # Consequently RidgeWalker's position vs the GPU improves sharply
    # under skew (the crossover direction; our scaled RMAT reproduces a
    # 1.5-2.5x GPU collapse rather than the paper's full 16x — see
    # EXPERIMENTS.md on downscaled skew).
    ratio_balanced = rw_balanced / gpu_balanced
    ratio_skewed = rw_skewed / gpu_skewed
    assert ratio_skewed > 1.3 * ratio_balanced, (ratio_balanced, ratio_skewed)
