"""Throughput benchmark: vectorized batch engine vs the reference loop.

Runs the same workload — by default 10k DeepWalk queries of length 80 on
an RMAT graph — through :func:`repro.walks.batch.run_walks_batch` and
:func:`repro.walks.reference.run_walks`, reports hops/sec for both, and
exits non-zero when the batch engine fails the required speedup (1x in
``--smoke`` mode, used by ``scripts/check.sh``; pass ``--min-speedup``
to raise the bar).

The reference engine is measured on a query subsample (it is the
bottleneck being replaced; its per-hop cost is flat in the query count)
and compared on hops/sec, so the full acceptance run stays minutes, not
hours.

Run:  PYTHONPATH=src python benchmarks/bench_batch_engine.py            # RMAT-18 acceptance run
      PYTHONPATH=src python benchmarks/bench_batch_engine.py --smoke    # fast CI gate
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import RMAT_BENCH_ALGORITHMS, make_spec
from repro.engines import hops_per_second, run_software_walks
from repro.graph import rmat
from repro.parallel import default_workers
from repro.walks import EngineStats, make_queries


def measure(engine, graph, spec, queries, seed):
    """Run one engine once, returning (hops, seconds, hops/sec)."""
    stats = EngineStats()
    _, elapsed = run_software_walks(engine, graph, spec, queries, seed=seed, stats=stats)
    return stats.total_hops, elapsed, hops_per_second(stats.total_hops, elapsed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=18,
                        help="RMAT scale (2**scale vertices; paper's SC18 default)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--queries", type=int, default=10_000)
    parser.add_argument("--ref-queries", type=int, default=1_000,
                        help="reference-engine subsample (hops/sec is flat in it)")
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--algorithm", choices=RMAT_BENCH_ALGORITHMS, default="DeepWalk")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail when batch/reference hops-per-sec falls below this")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_batch.json for full runs and off for "
                        "--smoke (so CI smokes don't overwrite the acceptance "
                        "record); '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: RMAT-14, small reference subsample, "
                        "require only that batch is faster at all")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 14)
        args.edge_factor = min(args.edge_factor, 8)
        args.ref_queries = min(args.ref_queries, 300)
        args.min_speedup = 1.0
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_batch.json")

    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    print(f"graph: {graph}")
    print(f"workload: {args.algorithm}, {args.queries} queries, length {args.length}")

    batch_hops, batch_s, batch_rate = measure("batch", graph, spec, queries, args.seed + 2)
    print(f"batch:     {batch_hops:>10d} hops  {batch_s:8.3f}s  {batch_rate:>12,.0f} hops/s")

    ref_queries = queries[: args.ref_queries]
    ref_hops, ref_s, ref_rate = measure("reference", graph, spec, ref_queries, args.seed + 2)
    print(f"reference: {ref_hops:>10d} hops  {ref_s:8.3f}s  {ref_rate:>12,.0f} hops/s"
          f"  ({len(ref_queries)} query subsample)")

    speedup = batch_rate / ref_rate
    print(f"speedup:   {speedup:.1f}x (required: {args.min_speedup:.1f}x)")

    if args.json:
        write_bench_json(args.json, {
            "benchmark": "batch_engine",
            "workload": {
                "algorithm": args.algorithm,
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "queries": args.queries,
                "length": args.length,
                "smoke": args.smoke,
            },
            "host_cores": default_workers(),  # affinity-aware available cores
            "hops_per_sec": {
                "batch": round(batch_rate),
                "reference": round(ref_rate),
            },
            "total_hops": batch_hops,
            "speedup_vs_reference": round(speedup, 3),
        })
        print(f"wrote {args.json}")

    if speedup < args.min_speedup:
        print("FAIL: batch engine below required speedup", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
