"""Figure 8b — PPR and URW throughput: RidgeWalker vs Su et al. on U280.

Paper shape: ~9-10x on both algorithms, from the asynchronous memory
engine outpacing the blocking walker pool.
"""

from conftest import run_once

from repro.bench.experiments import fig8b_su


def test_fig8b_ppr_urw_vs_su(benchmark, record_result):
    result = record_result(run_once(benchmark, fig8b_su))

    ppr = result.row_for(algorithm="PPR")
    urw = result.row_for(algorithm="URW")
    # Large wins on both algorithms (paper: 9.2x and 9.9x).
    assert ppr["speedup"] > 3.0
    assert urw["speedup"] > 3.0
    # URW sustains at least PPR-level absolute throughput (PPR walks are
    # short, so query injection bounds them harder).
    assert urw["ridgewalker_msteps"] >= 0.8 * ppr["ridgewalker_msteps"]
