"""QoS serving benchmark: tenant isolation under flood + epoch-safe caching.

Three legs on one workload (default: Node2Vec, length 80, RMAT — the
same representative serving workload as ``bench_serve.py``):

1. **Nominal two-tenant baseline** — a premium (weight 8) and a
   best-effort (weight 1) tenant both offer steady Poisson load well
   inside their declared capacity shares; per-tenant depths come from
   :func:`repro.serve.size_tenant_depths` (the M/M/1[N] model against
   each tenant's weight share).  Records the premium tenant's p99 —
   the SLO reference for leg 2.  Nothing may shed at nominal load.
2. **Flash crowd** — the premium tenant offers the *same* schedule while
   the best-effort tenant's arrivals flash to a multiple of service
   capacity behind a deliberately small queue depth.  The isolation
   gate (full runs): premium p99 under the flood stays within
   ``--p99-factor`` (default 2x) of its nominal p99, while the
   best-effort tenant sheds at its own gate (``dropped > 0`` — asserted
   on smokes too; a flash crowd that nothing sheds wasn't over
   capacity).
3. **Hot-walk cache across epochs** — a dynamic two-epoch graph served
   with a :class:`repro.serve.HotWalkCache` while a hub is hammered with
   query-id-independent requests; the epoch swaps mid-run.  Hard
   assertions (all runs): cache hits occur on *both* epochs, every
   response after the swap carries the new epoch, and every response —
   hit or miss — replays bit-identically offline against its own
   epoch's graph under the query id it carries.

Every leg also asserts the accounting identity
``offered == completed + dropped + failed`` per tenant and globally.

``--smoke`` (wired into ``scripts/check.sh``) shrinks the workload and
skips the p99-factor gate (tail latency on a loaded CI host is noise at
that size) but keeps every hard assertion above.

Run:  PYTHONPATH=src python benchmarks/bench_serve_qos.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_serve_qos.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import RMAT_BENCH_ALGORITHMS, make_spec
from repro.dynamic import DynamicGraph
from repro.graph import from_edges, rmat
from repro.sampling.hybrid import make_walk_kernel
from repro.serve import (
    HotWalkCache,
    ServeConfig,
    TenantSpec,
    TenantTrace,
    WalkService,
    arrival_gaps,
    flash_crowd_gaps,
    replay_paths,
    run_tenant_traces,
    size_tenant_depths,
)
from repro.walks import EngineStats, make_queries
from repro.walks.batch import run_walks_batch_arrays

PREMIUM, BESTEFFORT = "premium", "besteffort"


def closed_capacity(graph, spec, starts, seed):
    """Measured service capacity in requests/sec (warmed closed batch)."""
    kernel = make_walk_kernel(spec.make_sampler(), "auto")
    kernel.prepare(graph)
    query_ids = np.arange(starts.size, dtype=np.int64)
    stats = EngineStats()
    started = time.perf_counter()
    run_walks_batch_arrays(graph, spec, kernel, starts, query_ids,
                           seed=seed, stats=stats)
    elapsed = time.perf_counter() - started
    return starts.size / elapsed


def drive_two_tenants(graph, spec, seed, config, specs, traces):
    """Run both tenants' schedules against one service; return reports+service."""

    async def _run():
        service = WalkService(graph, spec, engine="batch", seed=seed,
                              config=config, tenants=specs)
        async with service:
            reports = await run_tenant_traces(service, traces)
        return reports, service

    return asyncio.run(_run())


def check_identity(reports, service) -> bool:
    """Accounting identity per tenant and on the global ledger."""
    ok = True
    for name, report in reports.items():
        try:
            report.check_identity()
        except AssertionError as exc:
            print(f"FAIL: tenant {name}: {exc}", file=sys.stderr)
            ok = False
        tenant = service.tenant_stats[name]
        if tenant.offered != tenant.completed + tenant.dropped + tenant.failed:
            print(f"FAIL: tenant {name} service ledger broken: "
                  f"{tenant.snapshot()}", file=sys.stderr)
            ok = False
    stats = service.stats
    if stats.offered != stats.completed + stats.dropped + stats.failed:
        print(f"FAIL: global service ledger broken: {stats.snapshot()}",
              file=sys.stderr)
        ok = False
    return ok


def check_replay(graph, spec, reports, seed, label) -> bool:
    """Every completed path across all tenants equals its offline replay."""
    requests, paths = {}, {}
    for report in reports.values():
        requests.update(report.requests)
        paths.update(report.paths)
    oracle = replay_paths(graph, spec, requests, seed=seed)
    for query_id, path in paths.items():
        if not np.array_equal(path, oracle[query_id]):
            print(f"FAIL: {label}: request {query_id} diverged from offline "
                  f"replay", file=sys.stderr)
            return False
    print(f"replay:   {label}: {len(paths)} served paths bit-identical offline")
    return True


def cache_epoch_leg(spec_length, seed, pool_size, hammer_count):
    """Leg 3: hot-walk cache correctness across an epoch swap.

    A two-epoch ring graph (forward, then reversed — URW on degree-1
    vertices is deterministic, so a path identifies its epoch) served
    with a cache while one vertex is hammered through the cached path;
    the swap lands mid-hammer.  Returns (ok, metrics dict).
    """
    from repro.walks import URWSpec

    n = 64
    forward = from_edges([(i, (i + 1) % n) for i in range(n)], num_vertices=n)
    dynamic = DynamicGraph(forward)
    cache = HotWalkCache(pool_size=pool_size, hot_threshold=4)
    dynamic.add_epoch_listener(cache.on_epoch)
    snap0 = dynamic.snapshot()
    spec = URWSpec(max_length=spec_length)
    hub = 0
    config = ServeConfig(max_batch=16, max_wait_ms=0.5,
                         queue_depth=4 * hammer_count)

    async def _hammer(service, count, wave=8):
        # Waves, not one synchronous burst: the pool fill triggered by
        # the first wave's misses must execute before later waves can
        # hit it (awaiting a wave drains its micro-batch, and the fill
        # rides the same queue).
        walks = []
        for _ in range((count + wave - 1) // wave):
            walks.extend(await asyncio.gather(*[
                service.try_submit_cached(hub)
                for _ in range(min(wave, count - len(walks)))
            ]))
        return walks

    async def _run():
        service = WalkService(snap0, spec, engine="batch", seed=seed,
                              config=config, cache=cache)
        async with service:
            first = await _hammer(service, hammer_count)
            dynamic.remove_edges([(i, (i + 1) % n) for i in range(n)])
            dynamic.add_edges([(i, (i - 1) % n) for i in range(n)])
            snap1 = dynamic.snapshot()
            await service.update_graph(snap1)
            second = await _hammer(service, hammer_count)
        return first, second, snap1

    first, second, snap1 = asyncio.run(_run())
    graphs = {snap0.epoch: snap0.graph, snap1.epoch: snap1.graph}
    ok = True
    hits = {snap0.epoch: 0, snap1.epoch: 0}
    for leg, walks in (("pre-swap", first), ("post-swap", second)):
        for walk in walks:
            if walk.cache_hit:
                hits[walk.epoch] += 1
            oracle = replay_paths(graphs[walk.epoch], spec,
                                  {walk.query_id: hub}, seed=seed)
            if not np.array_equal(walk.path, oracle[walk.query_id]):
                print(f"FAIL: cache {leg}: query {walk.query_id} (epoch "
                      f"{walk.epoch}, hit={walk.cache_hit}) diverged from "
                      f"its epoch's replay", file=sys.stderr)
                ok = False
    if any(walk.epoch != snap1.epoch for walk in second):
        print("FAIL: cache: a post-swap response carries a stale epoch",
              file=sys.stderr)
        ok = False
    for epoch, count in hits.items():
        if count == 0:
            print(f"FAIL: cache: no hits on epoch {epoch} — the pool never "
                  f"warmed or survived wrongly", file=sys.stderr)
            ok = False
    if ok:
        print(f"replay:   cache: {2 * hammer_count} responses bit-identical "
              f"per-epoch (hits: {hits})")
    return ok, {"hits_by_epoch": {str(k): v for k, v in hits.items()},
                **cache.snapshot()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=12)
    parser.add_argument("--requests", type=int, default=4000,
                        help="requests per tenant per leg")
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--algorithm", choices=RMAT_BENCH_ALGORITHMS,
                        default="Node2Vec")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--load", type=float, default=0.4,
                        help="nominal per-tenant offered load as a fraction "
                        "of measured capacity (premium tenant)")
    parser.add_argument("--flash-multiplier", type=float, default=8.0,
                        help="best-effort burst rate as a multiple of its "
                        "nominal rate during the flash crowd")
    parser.add_argument("--p99-factor", type=float, default=2.0,
                        help="fail a full run when premium p99 under flood "
                        "exceeds this factor of its nominal p99")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_serve_qos.json for full runs and "
                        "off for --smoke; '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny workload, no p99 gate, hard "
                        "shed/identity/replay/cache assertions")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 10)
        args.edge_factor = min(args.edge_factor, 8)
        args.requests = min(args.requests, 200)
        args.length = min(args.length, 32)
        args.max_batch = min(args.max_batch, 32)
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_serve_qos.json")

    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, 2 * args.requests, seed=args.seed + 1)
    starts = np.fromiter((q.start_vertex for q in queries), dtype=np.int64,
                         count=len(queries))
    serve_seed = args.seed + 2
    print(f"graph: {graph}")
    print(f"workload: {args.algorithm}, {args.requests} requests/tenant, "
          f"length {args.length}, max_batch {args.max_batch}")

    capacity = closed_capacity(graph, spec, starts, serve_seed)
    print(f"capacity: {capacity:,.0f} req/s (closed batch)")

    # Declared rates sit inside each tenant's weight share (premium 8/9,
    # best-effort 1/9 of capacity) so the depth model accepts them.
    premium_rate = args.load * capacity
    besteffort_rate = min(0.5 * premium_rate, 0.08 * capacity)
    specs = (
        TenantSpec(PREMIUM, weight=8, rate_per_second=premium_rate),
        TenantSpec(BESTEFFORT, weight=1, rate_per_second=besteffort_rate),
    )
    depths = size_tenant_depths(specs, capacity, args.max_batch)
    config = ServeConfig(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                         queue_depth=max(depths.values()))
    sized = tuple(
        TenantSpec(s.name, weight=s.weight, rate_per_second=s.rate_per_second,
                   queue_depth=depths[s.name])
        for s in specs
    )
    print(f"depths:   {depths} (M/M/1[N] against weight shares)")

    premium_starts = starts[:args.requests]
    besteffort_starts = starts[args.requests:2 * args.requests]
    premium_gaps = arrival_gaps(args.requests, premium_rate, seed=args.seed + 3)

    # -- leg 1: nominal two-tenant baseline --------------------------------
    nominal_traces = [
        TenantTrace(PREMIUM, premium_starts, premium_gaps),
        TenantTrace(BESTEFFORT, besteffort_starts,
                    arrival_gaps(args.requests, besteffort_rate,
                                 seed=args.seed + 4)),
    ]
    reports, service = drive_two_tenants(graph, spec, serve_seed, config,
                                         sized, nominal_traces)
    nominal_p99 = service.tenant_stats[PREMIUM].latency_percentiles()["p99"]
    nominal_snapshot = {name: service.tenant_stats[name].snapshot()
                        for name in (PREMIUM, BESTEFFORT)}
    print(f"nominal:  premium p99 {nominal_p99 * 1e3:.2f}ms, "
          f"best-effort p99 "
          f"{service.tenant_stats[BESTEFFORT].latency_percentiles()['p99'] * 1e3:.2f}ms")
    ok = check_identity(reports, service)
    shed = sum(len(r.dropped) for r in reports.values())
    if shed:
        print(f"FAIL: nominal load shed {shed} requests with model-sized "
              f"depths {depths}", file=sys.stderr)
        ok = False
    ok = check_replay(graph, spec, reports, serve_seed, "nominal") and ok

    # -- leg 2: flash crowd on the best-effort tenant ----------------------
    # Same premium schedule; best-effort floods at flash-multiplier x its
    # nominal rate behind a deliberately small depth, so it must shed.
    flood = tuple(
        TenantSpec(s.name, weight=s.weight, rate_per_second=s.rate_per_second,
                   queue_depth=(depths[PREMIUM] if s.name == PREMIUM
                                else args.max_batch))
        for s in specs
    )
    flash_traces = [
        TenantTrace(PREMIUM, premium_starts, premium_gaps),
        TenantTrace(BESTEFFORT, besteffort_starts,
                    flash_crowd_gaps(args.requests, besteffort_rate,
                                     burst_multiplier=args.flash_multiplier
                                     * premium_rate / besteffort_rate,
                                     seed=args.seed + 5)),
    ]
    flash_reports, flash_service = drive_two_tenants(
        graph, spec, serve_seed, config, flood, flash_traces)
    flash_p99 = flash_service.tenant_stats[PREMIUM].latency_percentiles()["p99"]
    flash_shed = len(flash_reports[BESTEFFORT].dropped)
    flash_snapshot = {name: flash_service.tenant_stats[name].snapshot()
                      for name in (PREMIUM, BESTEFFORT)}
    factor = flash_p99 / nominal_p99 if nominal_p99 > 0 else float("inf")
    print(f"flash:    premium p99 {flash_p99 * 1e3:.2f}ms "
          f"({factor:.2f}x nominal; gate <= {args.p99_factor:.1f}x on full "
          f"runs), best-effort shed {flash_shed}")
    ok = check_identity(flash_reports, flash_service) and ok
    if flash_shed == 0:
        print("FAIL: flash crowd shed nothing — the burst never exceeded "
              "best-effort capacity; the leg is not a flood", file=sys.stderr)
        ok = False
    if len(flash_reports[PREMIUM].dropped) > 0:
        print(f"FAIL: the flood shed {len(flash_reports[PREMIUM].dropped)} "
              f"premium requests — tenant isolation failed at admission",
              file=sys.stderr)
        ok = False
    ok = check_replay(graph, spec, flash_reports, serve_seed, "flash") and ok

    # -- leg 3: hot-walk cache across an epoch swap ------------------------
    cache_ok, cache_metrics = cache_epoch_leg(
        spec_length=min(args.length, 16), seed=args.seed + 6,
        pool_size=16, hammer_count=max(32, args.requests // 20))
    ok = cache_ok and ok

    if args.json:
        write_bench_json(args.json, {
            "benchmark": "serve_qos",
            "workload": {
                "algorithm": args.algorithm,
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "requests_per_tenant": args.requests,
                "length": args.length,
                "smoke": args.smoke,
            },
            "service": {
                "max_batch": args.max_batch,
                "max_wait_ms": args.max_wait_ms,
                "capacity_req_per_sec": round(capacity),
                "tenant_depths": depths,
                "premium_rate_per_sec": round(premium_rate, 1),
                "besteffort_rate_per_sec": round(besteffort_rate, 1),
            },
            "nominal": nominal_snapshot,
            "flash": {
                **flash_snapshot,
                "premium_p99_factor": (round(factor, 3)
                                       if np.isfinite(factor) else None),
                "besteffort_shed": flash_shed,
            },
            "cache": cache_metrics,
            "gate": {
                "p99_factor": args.p99_factor,
                "enforced": not args.smoke,
            },
        })
        print(f"wrote {args.json}")

    if not ok:
        return 1
    if not args.smoke and factor > args.p99_factor:
        print(f"FAIL: premium p99 degraded {factor:.2f}x under the flash "
              f"crowd (gate {args.p99_factor:.1f}x) — tenant isolation "
              f"failed at dispatch", file=sys.stderr)
        return 1
    print("PASS" + (" (smoke: isolation sheds + identity + per-epoch replay)"
                    if args.smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
