"""Throughput benchmark: sharded parallel engine vs the single-core batch engine.

Runs the same workload — by default 100k DeepWalk queries of length 80 on
an RMAT-18 graph, the acceptance workload — through a warmed
:class:`repro.parallel.ParallelWalkEngine` (persistent worker pool,
shared-memory graph) and the single-core batch engine with an equally
warmed (pre-prepared) kernel, and compares hops/sec.  On a host with >= 4 cores the parallel engine must
reach ``--min-speedup`` (default 3x) over batch or the benchmark exits
non-zero; on smaller hosts the ratio is reported but not enforced —
there is nothing to scale across.

Both runs also write machine-readable ``BENCH_parallel.json`` (hops/sec,
workload, host cores, workers) via ``--json`` so the perf trajectory is
tracked across PRs.

``--smoke`` (used by ``scripts/check.sh``) shrinks the workload to a
2-worker, RMAT-12 run, skips the speedup gate, and instead asserts the
parallel engine's results are bit-identical to the batch engine's — the
correctness property CI must never lose.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_engine.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_parallel_engine.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import RMAT_BENCH_ALGORITHMS, make_spec
from repro.engines import hops_per_second
from repro.graph import rmat
from repro.parallel import ParallelWalkEngine, default_workers
from repro.sampling.vectorized import make_kernel
from repro.walks import EngineStats, WalkResults, make_queries
from repro.walks.batch import run_walks_batch_arrays

#: Available cores below which the speedup gate is advisory, not
#: enforced (the acceptance criterion targets ">= 3x on a >= 4-core
#: host").  Affinity-aware, like the engine's own worker default.
MIN_GATED_CORES = 4


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=18,
                        help="RMAT scale (2**scale vertices; acceptance default 18)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--queries", type=int, default=100_000)
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--algorithm", choices=RMAT_BENCH_ALGORITHMS, default="DeepWalk")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail when parallel/batch hops-per-sec falls below "
                        f"this on a >= {MIN_GATED_CORES}-core host")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_parallel.json for full runs and off "
                        "for --smoke (so CI smokes don't overwrite the "
                        "acceptance record); '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: 2 workers on RMAT-12, verify the parallel "
                        "engine is bit-identical to batch instead of gating speedup")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 12)
        args.edge_factor = min(args.edge_factor, 8)
        args.queries = min(args.queries, 2_000)
        args.length = min(args.length, 40)
        args.workers = args.workers or 2
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_parallel.json")

    host_cores = default_workers()  # affinity-aware available cores
    workers = args.workers or host_cores
    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    print(f"graph: {graph}")
    print(f"workload: {args.algorithm}, {args.queries} queries, length {args.length}")
    print(f"host: {host_cores} cores; parallel workers: {workers}")

    # Warmed-vs-warmed comparison: the parallel engine amortizes kernel
    # preparation (alias tables, edge keys) across batches, so the batch
    # side gets the same courtesy — prepare untimed, then time the
    # array-level run.  Comparing a warmed pool against cold per-call
    # preparation would inflate the gated speedup.
    kernel = make_kernel(spec.make_sampler())
    kernel.prepare(graph)
    query_ids = np.fromiter((q.query_id for q in queries), np.int64, len(queries))
    starts = np.fromiter((q.start_vertex for q in queries), np.int64, len(queries))
    batch_stats = EngineStats()
    started = time.perf_counter()
    paths, hops = run_walks_batch_arrays(
        graph, spec, kernel, starts, query_ids, seed=args.seed + 2, stats=batch_stats
    )
    batch_results = WalkResults()
    batch_results.extend_from_matrix(paths, hops)
    batch_s = time.perf_counter() - started
    batch_rate = hops_per_second(batch_stats.total_hops, batch_s)
    print(f"batch:    {batch_stats.total_hops:>10d} hops  {batch_s:8.3f}s  "
          f"{batch_rate:>12,.0f} hops/s")

    parallel_stats = EngineStats()
    with ParallelWalkEngine(graph, spec, workers=workers) as engine:
        # Pool + shared-graph setup is a one-time serving cost; a tiny
        # warmup batch forces every worker through its (lazy) initializer
        # so the measured section is what a warmed-up server does per
        # batch.
        engine.run(queries[: workers * 8], seed=args.seed + 99)
        started = time.perf_counter()
        parallel_results = engine.run(queries, seed=args.seed + 2, stats=parallel_stats)
        parallel_s = time.perf_counter() - started
    parallel_rate = hops_per_second(parallel_stats.total_hops, parallel_s)
    print(f"parallel: {parallel_stats.total_hops:>10d} hops  {parallel_s:8.3f}s  "
          f"{parallel_rate:>12,.0f} hops/s")

    speedup = parallel_rate / batch_rate if batch_rate else float("inf")
    print(f"speedup:  {speedup:.2f}x over batch "
          f"(gate: {args.min_speedup:.1f}x on >= {MIN_GATED_CORES} cores)")

    if args.json:
        write_bench_json(args.json, {
            "benchmark": "parallel_engine",
            "workload": {
                "algorithm": args.algorithm,
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "queries": args.queries,
                "length": args.length,
                "smoke": args.smoke,
            },
            "host_cores": host_cores,
            "workers": workers,
            "hops_per_sec": {
                "batch": round(batch_rate),
                "parallel": round(parallel_rate),
            },
            "total_hops": parallel_stats.total_hops,
            "speedup_vs_batch": round(speedup, 3),
            # Records are self-describing about whether the >=3x gate
            # applied on the recording host.
            "gate": {
                "min_speedup": args.min_speedup,
                "enforced": host_cores >= MIN_GATED_CORES and not args.smoke,
            },
        })
        print(f"wrote {args.json}")

    if args.smoke:
        if parallel_stats.total_hops != batch_stats.total_hops:
            print("FAIL: parallel engine hop count diverges from batch", file=sys.stderr)
            return 1
        for a, b in zip(batch_results.paths, parallel_results.paths):
            if not np.array_equal(a, b):
                print("FAIL: parallel engine paths diverge from batch", file=sys.stderr)
                return 1
        print("PASS (smoke: parallel results bit-identical to batch)")
        return 0

    if host_cores < MIN_GATED_CORES:
        print(f"PASS (advisory: {host_cores} < {MIN_GATED_CORES} cores, "
              "speedup gate not enforced)")
        return 0
    if speedup < args.min_speedup:
        print("FAIL: parallel engine below required speedup", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
