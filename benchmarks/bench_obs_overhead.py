"""Observability overhead benchmark: the pay-for-what-you-use gate.

The tracer's design contract (``src/repro/obs/trace.py``) is that
instrumented-but-disabled code costs one hoisted ``active()`` call per
run plus one local ``is not None`` branch per superstep.  This
benchmark measures that claim on the acceptance workload — DeepWalk on
an RMAT-16 graph through the vectorized batch engine — across three
configurations, interleaved round-robin so clock drift and cache state
hit all three equally:

* **baseline** — the instrumented engine with the tracer lookup
  short-circuited to ``None`` at module level: the closest runnable
  stand-in for the uninstrumented engine (the hoisted lookup never
  touches the tracer singleton);
* **disabled** — the shipped default: tracing off, ``active()``
  consulted once per run (what every user who never enables tracing
  pays);
* **enabled** — tracing on with a ring large enough to hold every
  superstep span (what a traced run pays; advisory, not gated).

Full runs **gate** ``best(disabled) >= (1 - tolerance) *
best(baseline)`` over the interleaved repetitions, with a 2% tolerance
— instrumentation whose disabled path is measurably slower than
baseline does not ship.  Best-of-N, not median: shared-host noise is
one-sided (interference only slows runs down), so the max converges to
each configuration's true capability.  The enabled
ratio is recorded but never gated (tracing is opt-in).  Every run,
gated or smoke, additionally asserts the no-effect contract: paths and
``EngineStats`` with tracing enabled are bit-identical to disabled.

The machine-readable ``BENCH_obs.json`` (hops/sec per configuration,
overhead ratios, gate status) is committed alongside code changes so
the overhead trajectory lives in version control.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

import repro.walks.batch as batch_module
from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import make_spec
from repro.engines import hops_per_second
from repro.graph import rmat
from repro.obs.trace import get_tracer, tracing
from repro.sampling.hybrid import make_walk_kernel
from repro.walks import EngineStats, make_queries
from repro.walks.batch import run_walks_batch_arrays

CONFIGS = ("baseline", "disabled", "enabled")


def _run_once(graph, spec, kernel, starts, query_ids, seed):
    """One timed engine run; returns (paths, hops, stats, seconds)."""
    stats = EngineStats()
    started = time.perf_counter()
    paths, hops = run_walks_batch_arrays(
        graph, spec, kernel, starts, query_ids, seed=seed, stats=stats
    )
    return paths, hops, stats, time.perf_counter() - started


def _measure(config, graph, spec, kernel, starts, query_ids, seed, capacity):
    """Run one configuration once and return (rate, paths, hops, stats)."""
    if config == "baseline":
        # Short-circuit the hoisted lookup: the engine never touches the
        # tracer singleton, approximating the uninstrumented code path.
        saved = batch_module._active_tracer
        batch_module._active_tracer = lambda: None
        try:
            paths, hops, stats, seconds = _run_once(
                graph, spec, kernel, starts, query_ids, seed
            )
        finally:
            batch_module._active_tracer = saved
    elif config == "disabled":
        paths, hops, stats, seconds = _run_once(
            graph, spec, kernel, starts, query_ids, seed
        )
    else:
        with tracing(capacity):
            paths, hops, stats, seconds = _run_once(
                graph, spec, kernel, starts, query_ids, seed
            )
    return hops_per_second(stats.total_hops, seconds), paths, hops, stats


def _paths_equal(a_paths, a_hops, b_paths, b_hops) -> bool:
    """Per-walk prefix comparison: the buffer beyond each walk's last hop
    is uninitialized padding (see bench_jit_engine), so only
    ``paths[row, :hops[row] + 1]`` is meaningful."""
    if not np.array_equal(a_hops, b_hops):
        return False
    valid = np.arange(a_paths.shape[1])[None, :] <= a_hops[:, None]
    return np.array_equal(a_paths[valid], b_paths[valid])


def _stats_tuple(stats: EngineStats) -> tuple:
    return (
        stats.total_hops,
        stats.sampling_proposals,
        stats.neighbor_reads,
        stats.early_terminations,
        stats.dangling_terminations,
        stats.probabilistic_terminations,
        stats.length_terminations,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="RMAT scale (2**scale vertices; acceptance "
                        "default 16)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--queries", type=int, default=20_000)
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--reps", type=int, default=9,
                        help="interleaved repetitions per configuration; the "
                        "gate compares best-of-N rates")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional slowdown of the disabled "
                        "path vs baseline (ISSUE gate: 0.02)")
    parser.add_argument("--capacity", type=int, default=65_536,
                        help="tracer ring capacity for the enabled runs")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_obs.json for full runs and off for "
                        "--smoke; '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny RMAT-10 workload, overhead gate "
                        "advisory (wall-clock noise at that size), hard "
                        "bit-identity assertion")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 10)
        args.edge_factor = min(args.edge_factor, 8)
        args.queries = min(args.queries, 1_000)
        args.length = min(args.length, 20)
        args.reps = min(args.reps, 3)
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_obs.json")

    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    spec = make_spec("DeepWalk")
    spec.max_length = args.length
    kernel = make_walk_kernel(spec.make_sampler(), "auto")
    kernel.prepare(graph)
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    query_ids = np.fromiter((q.query_id for q in queries), np.int64,
                            len(queries))
    starts = np.fromiter((q.start_vertex for q in queries), np.int64,
                         len(queries))

    print(f"graph: {graph}")
    print(f"workload: DeepWalk, {args.queries} queries, length {args.length}, "
          f"batch engine, {args.reps} interleaved reps per configuration")

    # Warmup (kernel caches, page faults) outside the timed section.
    _run_once(graph, spec, kernel, starts, query_ids, args.seed + 2)

    rates: dict[str, list[float]] = {config: [] for config in CONFIGS}
    reference: dict[str, tuple] = {}
    identical = True
    for rep in range(args.reps):
        for config in CONFIGS:
            get_tracer().clear()
            rate, paths, hops, stats = _measure(
                config, graph, spec, kernel, starts, query_ids,
                args.seed + 2, args.capacity,
            )
            rates[config].append(rate)
            # The no-effect contract: every configuration produces the
            # same walks.  Compare everything against the first run.
            if "paths" not in reference:
                reference["paths"] = (paths, hops, _stats_tuple(stats))
            else:
                ref_paths, ref_hops, ref_stats = reference["paths"]
                if not (_paths_equal(paths, hops, ref_paths, ref_hops)
                        and _stats_tuple(stats) == ref_stats):
                    identical = False

    # Gate on best-of-N: throughput noise on a shared host is one-sided
    # (interference only slows runs down), so the max rate converges to
    # the configuration's true capability while the median keeps a
    # sizeable noise floor — the disabled path does strictly less work
    # than the enabled one, and medians here routinely order them
    # backwards.  Medians are still reported and recorded.
    medians = {config: statistics.median(rates[config]) for config in CONFIGS}
    bests = {config: max(rates[config]) for config in CONFIGS}
    disabled_ratio = bests["disabled"] / bests["baseline"]
    enabled_ratio = bests["enabled"] / bests["baseline"]
    spans = len(get_tracer())
    for config in CONFIGS:
        print(f"{config:<9s} best {bests[config]:>12,.0f} hops/s "
              f"(median {medians[config]:,.0f}, min {min(rates[config]):,.0f})")
    print(f"disabled/baseline: {disabled_ratio:.4f} "
          f"(gate: >= {1 - args.tolerance:.2f})")
    print(f"enabled/baseline:  {enabled_ratio:.4f} (advisory; "
          f"{spans} spans buffered on the last traced run, "
          f"{get_tracer().dropped} dropped)")

    gated = not args.smoke
    if args.json:
        write_bench_json(args.json, {
            "benchmark": "obs_overhead",
            "workload": {
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "algorithm": "DeepWalk",
                "queries": args.queries,
                "length": args.length,
                "engine": "batch",
                "reps": args.reps,
                "smoke": args.smoke,
            },
            "hops_per_sec": {
                config: round(bests[config]) for config in CONFIGS
            },
            "hops_per_sec_median": {
                config: round(medians[config]) for config in CONFIGS
            },
            "disabled_over_baseline": round(disabled_ratio, 4),
            "enabled_over_baseline": round(enabled_ratio, 4),
            "bit_identical": identical,
            "gate": {
                "tolerance": args.tolerance,
                "enforced": gated,
                "status": "gated" if gated else "advisory",
            },
        })
        print(f"wrote {args.json}")

    if not identical:
        print("FAIL: traced runs are not bit-identical to untraced runs "
              "(paths, hops or EngineStats diverged)", file=sys.stderr)
        return 1
    if not gated:
        print(f"PASS (advisory: smoke; overhead gate not enforced, measured "
              f"{disabled_ratio:.4f})")
        return 0
    if disabled_ratio < 1 - args.tolerance:
        print(f"FAIL: instrumented-but-disabled throughput is "
              f"{(1 - disabled_ratio) * 100:.1f}% below baseline "
              f"(gate: <= {args.tolerance * 100:.0f}%)", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
