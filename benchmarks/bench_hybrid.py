"""Hybrid-sampler benchmark: auto mode vs every fixed strategy.

The acceptance workload is Node2Vec (paper ``p=2, q=0.5``) on a *skewed*
RMAT-16 graph (Graph500 initiator): the degree distribution that makes
fixed-strategy choices hurt.  Two fixed engines run the same workload —
**rejection** (O(1) proposals, retry rounds) and **reservoir** (exact
O(d) scan, disastrous on hubs) — plus the **auto** engine, whose cost
model assigns each vertex row a strategy at prepare time
(:mod:`repro.sampling.hybrid`).

Gates (full runs; ``--smoke`` keeps the conformance assertions but skips
the timing gates, which are noise at smoke sizes):

* auto >= ``--min-worst-ratio`` (default 1.3x) the *worst* fixed engine,
* auto >= ``--min-best-ratio`` (default 1.0x) the *best* fixed engine —
  adaptivity must be free, not a tax.

Always asserted, at any size:

* a forced all-rejection selection map is **bit-identical** to the
  standalone rejection kernel (fixed-map conformance);
* auto paths are bit-identical across **batch**, **parallel** (2
  workers) and **serve-replay** (micro-batched service vs offline
  oracle);
* auto survives a **dynamic sliding-window** run: an engine swapped
  across snapshots equals a fresh auto engine on a from-scratch build.

Run:  PYTHONPATH=src python benchmarks/bench_hybrid.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_hybrid.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.engines import prepare_engine
from repro.graph import rmat
from repro.graph.generators import GRAPH500_INITIATOR
from repro.parallel import default_workers
from repro.sampling.hybrid import HybridKernel, STRATEGY_REJECTION, make_walk_kernel
from repro.sampling.vectorized import RejectionKernel
from repro.walks import EngineStats, Node2VecSpec, make_queries
from repro.walks.batch import run_walks_batch


def measure_rates(graph, cells, seed, reps):
    """Best-of-``reps`` hops/s per engine cell, reps *interleaved* across
    cells (round-robin) so host-load drift penalizes every engine
    equally instead of whichever ran last.  One untimed warmup run per
    cell first.  ``cells`` maps name -> (spec, queries, kernel)."""
    rates = {name: 0.0 for name in cells}
    for name, (spec, queries, kernel) in cells.items():
        run_walks_batch(graph, spec, queries[: max(1, len(queries) // 10)],
                        seed=seed, kernel=kernel)
    for _ in range(reps):
        for name, (spec, queries, kernel) in cells.items():
            stats = EngineStats()
            started = time.perf_counter()
            run_walks_batch(graph, spec, queries, seed=seed, stats=stats,
                            kernel=kernel)
            elapsed = time.perf_counter() - started
            if elapsed > 0:
                rates[name] = max(rates[name], stats.total_hops / elapsed)
    return rates


def paths_equal(a, b):
    return len(a) == len(b) and all(np.array_equal(x, y) for x, y in zip(a, b))


def check_fixed_map_conformance(graph, spec, queries, seed):
    """Forced all-rejection hybrid == standalone rejection kernel, bit for bit."""
    forced = np.full(graph.num_vertices, STRATEGY_REJECTION, dtype=np.int8)
    hybrid = HybridKernel(spec.make_sampler(), selection=forced)
    hybrid.prepare(graph)
    single = RejectionKernel(p=spec.p, q=spec.q)
    single.prepare(graph)
    a = run_walks_batch(graph, spec, queries, seed=seed, kernel=hybrid)
    b = run_walks_batch(graph, spec, queries, seed=seed, kernel=single)
    return paths_equal(a.paths, b.paths)


def check_cross_engine_conformance(graph, spec, queries, seed):
    """Auto paths across batch / parallel / serve-replay, bit for bit."""
    from repro.serve import ServeConfig, WalkService, replay_paths

    batch = run_walks_batch(graph, spec, queries, seed=seed, sampler="auto")
    with prepare_engine("parallel", graph, spec, workers=2,
                        sampler="auto") as parallel:
        par = parallel.run(queries, seed=seed)
    if not paths_equal(batch.paths, par.paths):
        return False

    sub = queries[:200]
    oracle = replay_paths(graph, spec,
                          {q.query_id: q.start_vertex for q in sub}, seed=seed)

    async def _serve():
        config = ServeConfig(max_batch=64, max_wait_ms=20.0,
                             queue_depth=4 * len(sub))
        served = {}
        async with WalkService(graph, spec, engine="batch", seed=seed,
                               config=config) as service:
            futures = {
                q.query_id: service.try_submit(q.start_vertex, query_id=q.query_id)
                for q in sub
            }
            for query_id, future in futures.items():
                served[query_id] = (await future).path_of(0)
        return served

    served = asyncio.run(_serve())
    return all(np.array_equal(served[q.query_id], oracle[q.query_id])
               for q in sub)


def check_dynamic_window_conformance(seed):
    """Auto engine swapped across a sliding-window trace == fresh builds."""
    from repro.dynamic import apply_batch, make_trace
    from repro.dynamic.bench import fresh_static_build

    trace = make_trace("window", 9, edge_factor=6, batch_size=200,
                       num_batches=4, seed=seed, weighted=True)
    dynamic = trace.build_dynamic()
    from repro.walks import DeepWalkSpec

    spec = DeepWalkSpec(max_length=20)
    snapshot = dynamic.snapshot()
    queries = make_queries(snapshot.graph, 128, seed=seed + 1)
    with prepare_engine("batch", snapshot.graph, spec, sampler="auto") as engine:
        for batch in trace.batches:
            apply_batch(dynamic, batch)
            snapshot = dynamic.snapshot()
            engine.swap_snapshot(snapshot)
            swapped = engine.run(queries, seed=seed + 2)
            static_graph, _ = fresh_static_build(dynamic)
            fresh = run_walks_batch(static_graph, spec, queries,
                                    seed=seed + 2, sampler="auto")
            if not paths_equal(swapped.paths, fresh.paths):
                return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="RMAT scale (2**scale vertices; acceptance: 16)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--queries", type=int, default=30_000,
                        help="large batches are the acceptance shape: per-"
                        "superstep dispatch overhead amortizes, as in the "
                        "serving layer's saturated micro-batches")
    parser.add_argument("--scan-queries", type=int, default=1_000,
                        help="query subsample for the O(d)-scan reservoir "
                        "engine (hops/s is flat in the query count)")
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--p", type=float, default=2.0)
    parser.add_argument("--q", type=float, default=0.5)
    parser.add_argument("--reps", type=int, default=5,
                        help="timing repetitions, interleaved across "
                        "engines; best-of wins")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-worst-ratio", type=float, default=1.3,
                        help="fail a full run when auto is below this "
                        "multiple of the WORST fixed-strategy engine")
    parser.add_argument("--min-best-ratio", type=float, default=1.0,
                        help="fail a full run when auto is below this "
                        "multiple of the BEST fixed-strategy engine")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_hybrid.json for full runs and off "
                        "for --smoke; '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny graph, conformance assertions "
                        "only (timing gates are noise at this size)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 9)
        args.queries = min(args.queries, 400)
        args.scan_queries = min(args.scan_queries, 400)
        args.length = min(args.length, 30)
        args.reps = 1
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_hybrid.json")

    # The skewed graph the gate is about: Graph500 initiator, directed.
    graph = rmat(args.scale, edge_factor=args.edge_factor,
                 initiator=GRAPH500_INITIATOR, seed=args.seed, directed=True)
    spec_rejection = Node2VecSpec(p=args.p, q=args.q, strategy="rejection",
                                  max_length=args.length)
    spec_reservoir = Node2VecSpec(p=args.p, q=args.q, strategy="reservoir",
                                  max_length=args.length)
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    scan_queries = queries[: args.scan_queries]
    run_seed = args.seed + 2
    print(f"graph: {graph} (Graph500-skewed)")
    print(f"workload: Node2Vec p={args.p} q={args.q}, {args.queries} queries, "
          f"length {args.length}")

    auto_kernel = make_walk_kernel(spec_rejection.make_sampler(), "auto")
    auto_kernel.prepare(graph)
    strategy_counts = auto_kernel.strategy_counts()
    print(f"auto selection: {strategy_counts}")

    rejection_kernel = RejectionKernel(p=args.p, q=args.q)
    rejection_kernel.prepare(graph)
    reservoir_kernel = make_walk_kernel(spec_reservoir.make_sampler(), "default")
    reservoir_kernel.prepare(graph)

    # The auto-vs-rejection comparison is tight (the gate is 1.0x), so
    # those two interleave alone; the reservoir engine's O(d) hub scans
    # thrash the cache, and interleaving it with the pair would bias
    # whichever engine ran right after it.
    rates = measure_rates(graph, {
        "auto": (spec_rejection, queries, auto_kernel),
        "rejection": (spec_rejection, queries, rejection_kernel),
    }, run_seed, args.reps)
    rates.update(measure_rates(graph, {
        "reservoir": (spec_reservoir, scan_queries, reservoir_kernel),
    }, run_seed, max(1, args.reps - 2)))
    auto_rate = rates["auto"]
    rejection_rate = rates["rejection"]
    reservoir_rate = rates["reservoir"]
    fixed = {"rejection": rejection_rate, "reservoir": reservoir_rate}
    best_name = max(fixed, key=fixed.get)
    worst_name = min(fixed, key=fixed.get)
    print(f"auto:              {auto_rate:>12,.0f} hops/s")
    print(f"fixed rejection:   {rejection_rate:>12,.0f} hops/s")
    print(f"fixed reservoir:   {reservoir_rate:>12,.0f} hops/s "
          f"({len(scan_queries)} query subsample)")
    worst_ratio = auto_rate / fixed[worst_name] if fixed[worst_name] else float("inf")
    best_ratio = auto_rate / fixed[best_name] if fixed[best_name] else float("inf")
    print(f"auto vs worst ({worst_name}): {worst_ratio:.2f}x "
          f"(required >= {args.min_worst_ratio:.2f}x on full runs)")
    print(f"auto vs best ({best_name}):  {best_ratio:.2f}x "
          f"(required >= {args.min_best_ratio:.2f}x on full runs)")

    print()
    conformance_queries = queries[: min(len(queries), 400)]
    fixed_map_ok = check_fixed_map_conformance(
        graph, spec_rejection, conformance_queries, run_seed)
    print(f"fixed-map conformance (all-rejection == rejection kernel): "
          f"{'OK' if fixed_map_ok else 'FAIL'}")
    cross_engine_ok = check_cross_engine_conformance(
        graph, spec_rejection, conformance_queries, run_seed)
    print(f"cross-engine conformance (batch == parallel == serve-replay): "
          f"{'OK' if cross_engine_ok else 'FAIL'}")
    dynamic_ok = check_dynamic_window_conformance(args.seed)
    print(f"dynamic sliding-window conformance (swap == fresh build): "
          f"{'OK' if dynamic_ok else 'FAIL'}")

    ok = fixed_map_ok and cross_engine_ok and dynamic_ok
    if not ok:
        print("FAIL: hybrid conformance violated", file=sys.stderr)
    if args.smoke:
        print("timing gates skipped on --smoke "
              f"(measured {worst_ratio:.2f}x worst, {best_ratio:.2f}x best)")
    else:
        if worst_ratio < args.min_worst_ratio:
            print(f"FAIL: auto only {worst_ratio:.2f}x the worst fixed engine "
                  f"(gate: >= {args.min_worst_ratio:.2f}x)", file=sys.stderr)
            ok = False
        if best_ratio < args.min_best_ratio:
            print(f"FAIL: auto only {best_ratio:.2f}x the best fixed engine "
                  f"(gate: >= {args.min_best_ratio:.2f}x)", file=sys.stderr)
            ok = False

    if args.json:
        write_bench_json(args.json, {
            "benchmark": "hybrid_sampler",
            "workload": {
                "algorithm": "Node2Vec",
                "p": args.p,
                "q": args.q,
                "graph": f"rmat-{args.scale}-graph500",
                "edge_factor": args.edge_factor,
                "queries": args.queries,
                "length": args.length,
                "smoke": args.smoke,
            },
            "host_cores": default_workers(),
            "strategy_counts": strategy_counts,
            "hops_per_sec": {
                "auto": round(auto_rate),
                "fixed_rejection": round(rejection_rate),
                "fixed_reservoir": round(reservoir_rate),
            },
            "auto_vs_worst_fixed": round(worst_ratio, 3),
            "auto_vs_best_fixed": round(best_ratio, 3),
            "min_worst_ratio_gate": args.min_worst_ratio,
            "min_best_ratio_gate": args.min_best_ratio,
            "conformance": {
                "fixed_map_bit_identical": fixed_map_ok,
                "cross_engine_bit_identical": cross_engine_ok,
                "dynamic_window_bit_identical": dynamic_ok,
            },
            "timing_reps": args.reps,
            "seed": args.seed,
        })
        print(f"wrote {args.json}")

    if ok:
        print("PASS")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
