"""Throughput benchmark: fused jit kernels vs the vectorized batch engine.

Runs the acceptance workloads — DeepWalk and Node2Vec on an RMAT-16
graph — through the numba-compiled per-walker kernels
(:mod:`repro.walks.jit`) and the single-core batch engine, both warmed
(kernel preparation and numba compilation untimed), and compares
hops/sec.  With numba importable the jit engine must reach
``--min-speedup`` (default 3x) over batch on *both* algorithms or the
benchmark exits non-zero; without numba the kernels execute interpreted
— bit-identical, nowhere near compiled speed — so the ratio is reported
but not enforced, and the committed record says so
(``gate.enforced: false``, ``numba_available: false``).

Every run, gated or advisory, verifies the conformance property CI must
never lose: the jit paths and hop counts are bit-identical to batch on
the full query batch, for both algorithms.

The machine-readable ``BENCH_jit.json`` (hops/sec per algorithm, host
block, gate status) is committed alongside code changes so the perf
trajectory lives in version control.

Run:  PYTHONPATH=src python benchmarks/bench_jit_engine.py          # acceptance run
      PYTHONPATH=src python benchmarks/bench_jit_engine.py --smoke  # fast CI gate
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench.reporting import resolve_bench_json_path, write_bench_json
from repro.bench.workloads import make_spec
from repro.engines import hops_per_second
from repro.graph import rmat
from repro.sampling.hybrid import make_walk_kernel
from repro.walks import EngineStats, make_queries
from repro.walks.batch import run_walks_batch_arrays
from repro.walks.jit import NUMBA_AVAILABLE, jit_state_from_kernel, run_walks_jit_arrays

#: The two acceptance algorithms: first-order alias draws (DeepWalk) and
#: second-order rejection rounds (Node2Vec) — the cheapest and the most
#: RNG-hungry per-step paths through the fused kernel.
GATED_ALGORITHMS = ("DeepWalk", "Node2Vec")


def _bench_cell(graph, algorithm, queries, length, seed, sampler="auto"):
    """Run one algorithm on both engines; returns the result row."""
    spec = make_spec(algorithm)
    spec.max_length = length
    kernel = make_walk_kernel(spec.make_sampler(), sampler)
    kernel.prepare(graph)
    query_ids = np.fromiter((q.query_id for q in queries), np.int64, len(queries))
    starts = np.fromiter((q.start_vertex for q in queries), np.int64, len(queries))

    batch_stats = EngineStats()
    started = time.perf_counter()
    b_paths, b_hops = run_walks_batch_arrays(
        graph, spec, kernel, starts, query_ids, seed=seed, stats=batch_stats
    )
    batch_s = time.perf_counter() - started
    batch_rate = hops_per_second(batch_stats.total_hops, batch_s)

    state = jit_state_from_kernel(graph, spec, kernel)
    # Warmup: numba compiles the kernel on first entry (disk-cached via
    # cache=True); that one-time cost must not land in the timed section.
    run_walks_jit_arrays(graph, spec, state, starts[:64], query_ids[:64],
                         seed=seed + 99)
    jit_stats = EngineStats()
    started = time.perf_counter()
    j_paths, j_hops = run_walks_jit_arrays(
        graph, spec, state, starts, query_ids, seed=seed, stats=jit_stats
    )
    jit_s = time.perf_counter() - started
    jit_rate = hops_per_second(jit_stats.total_hops, jit_s)

    # Conformance: padded buffer widths may differ, the walks must not.
    identical = bool(np.array_equal(b_hops, j_hops))
    if identical:
        for row in range(b_hops.shape[0]):
            n = int(b_hops[row]) + 1
            if not np.array_equal(b_paths[row, :n], j_paths[row, :n]):
                identical = False
                break
    speedup = jit_rate / batch_rate if batch_rate else float("inf")
    print(f"{algorithm:<10s} batch {batch_stats.total_hops:>9d} hops "
          f"{batch_s:7.3f}s {batch_rate:>12,.0f} hops/s | "
          f"jit {jit_s:7.3f}s {jit_rate:>12,.0f} hops/s | "
          f"{speedup:5.2f}x {'bit-identical' if identical else 'DIVERGED'}")
    return {
        "algorithm": algorithm,
        "batch_rate": batch_rate,
        "jit_rate": jit_rate,
        "speedup": speedup,
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="RMAT scale (2**scale vertices; acceptance default 16)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--queries", type=int, default=50_000)
    parser.add_argument("--length", type=int, default=80)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail when jit/batch hops-per-sec falls below this "
                        "on a host with numba installed")
    parser.add_argument("--json", default=None,
                        help="machine-readable output path; defaults to "
                        "benchmarks/BENCH_jit.json for full runs and off for "
                        "--smoke (so CI smokes don't overwrite the acceptance "
                        "record); '' disables")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny RMAT-10 workload, verify jit results "
                        "are bit-identical to batch instead of gating speedup")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 10)
        args.edge_factor = min(args.edge_factor, 8)
        args.queries = min(args.queries, 1_000)
        args.length = min(args.length, 20)
    args.json = resolve_bench_json_path(args.json, args.smoke, __file__,
                                        "BENCH_jit.json")

    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    print(f"graph: {graph}")
    print(f"workload: {args.queries} queries, length {args.length}")
    print(f"numba: {'available (compiled kernels)' if NUMBA_AVAILABLE else 'absent (interpreted kernels, gate advisory)'}")

    rows = [_bench_cell(graph, algorithm, queries, args.length, args.seed + 2)
            for algorithm in GATED_ALGORITHMS]

    gated = NUMBA_AVAILABLE and not args.smoke
    if args.json:
        write_bench_json(args.json, {
            "benchmark": "jit_engine",
            "workload": {
                "graph": f"rmat-{args.scale}",
                "edge_factor": args.edge_factor,
                "queries": args.queries,
                "length": args.length,
                "sampler": "auto",
                "smoke": args.smoke,
            },
            "numba_available": NUMBA_AVAILABLE,
            "hops_per_sec": {
                row["algorithm"]: {
                    "batch": round(row["batch_rate"]),
                    "jit": round(row["jit_rate"]),
                } for row in rows
            },
            "speedup_vs_batch": {
                row["algorithm"]: round(row["speedup"], 3) for row in rows
            },
            "bit_identical": all(row["identical"] for row in rows),
            # Records are self-describing about whether the >=3x gate
            # applied on the recording host.
            "gate": {
                "min_speedup": args.min_speedup,
                "enforced": gated,
                "status": "gated" if gated else "advisory",
            },
        })
        print(f"wrote {args.json}")

    # The conformance property holds on every host, compiled or not.
    diverged = [row["algorithm"] for row in rows if not row["identical"]]
    if diverged:
        print(f"FAIL: jit paths diverge from batch on {', '.join(diverged)}",
              file=sys.stderr)
        return 1
    if not gated:
        reason = "smoke" if args.smoke else "numba absent, interpreted kernels"
        print(f"PASS (advisory: {reason}; speedup gate not enforced)")
        return 0
    slow = [row["algorithm"] for row in rows if row["speedup"] < args.min_speedup]
    if slow:
        print(f"FAIL: jit engine below required {args.min_speedup:.1f}x on "
              f"{', '.join(slow)}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
