"""Figure 8a — DeepWalk throughput: RidgeWalker vs FastRW on U50.

Paper shape: RidgeWalker wins everywhere; the speedup grows with graph
size (2.2x on cache-resident WG up to 71x on LJ) because FastRW's
frequency cache collapses once the working set spills on-chip SRAM.
"""

from conftest import run_once

from repro.bench.experiments import fig8a_fastrw


def test_fig8a_deepwalk_vs_fastrw(benchmark, record_result):
    result = record_result(run_once(benchmark, fig8a_fastrw))

    speedups = {row["graph"]: row["speedup"] for row in result.rows}
    # RidgeWalker wins on every dataset.
    assert all(s > 1.0 for s in speedups.values()), speedups
    # The win is small on cache-resident WG and large on LJ.
    assert speedups["WG"] < 6.0
    assert speedups["LJ"] > 2 * speedups["WG"]
    # Largest two graphs (AS, LJ) beat the small ones.
    assert min(speedups["AS"], speedups["LJ"]) > min(speedups["WG"], speedups["CP"])
