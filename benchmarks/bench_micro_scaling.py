"""Section VIII-F scalability study — pipelines beyond the 32-channel stack.

The paper reports the zero-bubble scheduler standalone at 450 MHz using
1.8% of U55C LUTs and argues it scales "beyond 32 HBM channels".  This
sweep measures throughput from 2 to 16 pipelines on the U55C stack and
32 pipelines on a projected 64-channel HBM3 stack: if the butterfly
scheduler were the bottleneck, per-pipeline throughput would collapse as
N grows.
"""

from conftest import run_once

from repro.bench.experiments import micro_pipeline_scaling


def test_micro_pipeline_scaling(benchmark, record_result):
    result = record_result(run_once(benchmark, micro_pipeline_scaling))

    rows = {row["pipelines"]: row for row in result.rows}
    # Aggregate throughput grows with pipeline count...
    assert rows[4]["msteps"] > 1.5 * rows[2]["msteps"]
    assert rows[16]["msteps"] > 2.5 * rows[4]["msteps"]
    assert rows[32]["msteps"] > 1.3 * rows[16]["msteps"]
    # ...and per-pipeline efficiency does not collapse through N=32
    # (the scheduler is not the scaling limit).
    assert rows[32]["msteps_per_pipeline"] > 0.4 * rows[2]["msteps_per_pipeline"]
