"""Figure 11 — breakdown of the asynchronous pipeline and the scheduler.

Paper shape: enabling the zero-bubble scheduler alone gives 1.6x-4.8x
(small on undirected LJ, large where early termination bites); the
asynchronous pipeline alone gives 6.8x-14.7x; together they compound to
12.4x-16.7x and up to 88% of the Equation (1) HBM peak.
"""

from conftest import run_once

from repro.bench.experiments import fig11_ablation


def test_fig11_breakdown(benchmark, record_result):
    result = record_result(run_once(benchmark, fig11_ablation))

    by_graph: dict[str, dict[str, dict]] = {}
    for row in result.rows:
        by_graph.setdefault(row["graph"], {})[row["variant"]] = row

    for graph, variants in by_graph.items():
        base = variants["baseline"]["msteps"]
        sched = variants["scheduler-only"]["msteps"]
        async_ = variants["async-only"]["msteps"]
        full = variants["full"]["msteps"]
        # Each optimization helps; async is the bigger single lever;
        # the combination beats either alone.
        assert sched >= base * 0.95, (graph, base, sched)
        assert async_ > base * 1.5, (graph, base, async_)
        assert async_ > sched, (graph, sched, async_)
        assert full > async_ * 0.95, (graph, async_, full)
        assert full > base * 4.0, (graph, base, full)

    # The scheduler matters most where walks die early (directed WG/CP
    # ghosts) and least on the undirected graphs (AS/LJ).
    sched_gain = {
        g: v["scheduler-only"]["speedup_over_baseline"] for g, v in by_graph.items()
    }
    if "LJ" in sched_gain and "WG" in sched_gain:
        assert sched_gain["WG"] >= sched_gain["LJ"] * 0.95

    # Ghost laps appear only in the bulk-synchronous variants.
    for graph, variants in by_graph.items():
        assert variants["full"]["ghost_laps"] == 0
        assert variants["scheduler-only"]["ghost_laps"] == 0

    # Full configuration reaches a healthy fraction of the random-access
    # peak on the undirected graphs (paper: up to 88%).
    best = max(v["full"]["normalized_to_peak"] for v in by_graph.values())
    assert best > 0.5, best
