"""Figure 8d — MetaPath: RidgeWalker vs LightRW on U250.

Paper shape: 1.3x-1.7x — a *larger* gap than Node2Vec (Figure 8c)
because typed walks terminate early when no admissible neighbor exists,
and LightRW's static slots ride empty while RidgeWalker's scheduler
refills them.
"""

from conftest import run_once

from repro.bench.experiments import fig8d_lightrw_metapath
from repro.bench.reporting import geometric_mean


def test_fig8d_metapath_vs_lightrw(benchmark, record_result):
    result = record_result(run_once(benchmark, fig8d_lightrw_metapath))

    speedups = result.column("speedup")
    assert all(s > 0.7 for s in speedups), speedups
    assert geometric_mean(speedups) > 1.1
    # Early termination shows up as LightRW bubbles on directed graphs.
    bubbles = {row["graph"]: row["lightrw_bubbles"] for row in result.rows}
    assert bubbles["WG"] > 0.1
    assert bubbles["CP"] > 0.1
