#!/usr/bin/env bash
# CI gate: the determinism & resource-safety lint (`repro lint`, zero
# unsuppressed findings over src/repro — see the README's "Determinism
# contract"), then the tier-1 test suite plus engine smoke benchmarks
# — the batch
# engine must beat the reference loop on a 10k-query RMAT workload, the
# sharded parallel engine (2 workers, small graph) must produce
# bit-identical results to the batch engine, the async walk service
# must shed zero requests under nominal open-loop load while replaying
# bit-identically offline, the multi-tenant QoS layer must keep a
# flash-crowding best-effort tenant from starving premium while the
# epoch-keyed hot-walk cache stays bit-identical to replay across an
# epoch swap, the dynamic subsystem must publish
# snapshots bit-identical to from-scratch builds after a streamed
# update trace, the hybrid auto sampler must stay bit-identical to
# fixed-strategy kernels under forced selection maps, the observability
# layer must keep instrumented-but-disabled throughput at baseline
# (gated on full runs; the smoke asserts traced runs stay bit-identical
# to untraced) while a traced CLI run exports sample trace + metrics
# artifacts, and the fused jit
# kernels must stay bit-identical to the batch engine (compiled where
# numba is installed, interpreted through the same code path where it
# is not) plus run end-to-end from the CLI, and the distributed
# graph-partitioned engine (2 shards, walker forwarding) must stay
# bit-identical to the batch engine end-to-end.  (The machine-readable
# BENCH_*.json perf records are rewritten by the *full* benchmark runs,
# not by these smokes.)
#
# When pytest-cov is installed (it is in CI; see requirements-ci.txt),
# the suite runs under a coverage gate on the sampling + dynamic
# packages — the floor sits just below measured coverage so genuinely
# untested new code fails the lane, and the XML report lands next to
# the BENCH_*.json artifacts.  Without pytest-cov the suite runs plain,
# so local checks need no extra installs.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism & resource-safety lint (repro lint) =="
python -m repro lint src/repro

if command -v ruff >/dev/null 2>&1; then
  echo
  echo "== ruff (error-tier rules) =="
  ruff check .
else
  echo "(ruff not installed; skipping — CI runs it)"
fi

echo
echo "== tier-1 tests =="
if python -c "import pytest_cov" >/dev/null 2>&1; then
  python -m pytest -x -q \
    --cov=repro.sampling --cov=repro.dynamic \
    --cov-report=term --cov-report=xml:benchmarks/coverage.xml \
    --cov-fail-under=93
else
  echo "(pytest-cov not installed; running without the coverage gate)"
  python -m pytest -x -q
fi

echo
echo "== batch engine smoke benchmark =="
python benchmarks/bench_batch_engine.py --smoke

echo
echo "== parallel engine smoke (2 workers) =="
python benchmarks/bench_parallel_engine.py --smoke

echo
echo "== serve smoke (zero drops at nominal load, bit-identical replay) =="
python benchmarks/bench_serve.py --smoke

echo
echo "== serve QoS smoke (tenant isolation under flash crowd, epoch-safe cache) =="
python benchmarks/bench_serve_qos.py --smoke
python -m repro serve-bench --scenario flash-crowd --tenants 2 \
  --requests 200 --rate 2000 --scale 0.05 --length 16 --max-batch 64

echo
echo "== dynamic smoke (update trace + snapshot-equivalence check) =="
python benchmarks/bench_dynamic.py --smoke

echo
echo "== hybrid smoke (auto vs fixed strategies, conformance + throughput) =="
python benchmarks/bench_hybrid.py --smoke

echo
echo "== observability smoke (disabled-overhead gate + traced CLI artifacts) =="
python benchmarks/bench_obs_overhead.py --smoke
python -m repro trace --out benchmarks/sample_trace.jsonl --format jsonl -- \
  serve-bench --scenario flash-crowd --tenants 2 --cache \
  --requests 200 --rate 2000 --scale 0.05 --length 16 --max-batch 64
python -m repro metrics --out benchmarks/sample_metrics.prom -- \
  walk --engine batch --queries 200 --length 20 --scale 0.05

echo
echo "== jit smoke (fused kernels bit-identical to batch + CLI end-to-end) =="
python benchmarks/bench_jit_engine.py --smoke
python -m repro walk --engine jit --algorithm DeepWalk --queries 200 --length 20 --scale 0.05
python -m repro walk --engine jit --algorithm Node2Vec --queries 200 --length 20 --scale 0.05

echo
echo "== dist engine smoke (2 shards, walker forwarding, bit-identical to batch) =="
python benchmarks/bench_dist_engine.py --smoke
python -m repro walk --engine dist --shards 2 --algorithm DeepWalk --queries 200 --length 20 --scale 0.05
