#!/usr/bin/env bash
# CI gate: tier-1 test suite plus a batch-engine smoke benchmark that
# fails when the vectorized engine is not faster than the reference loop
# on a 10k-query RMAT workload.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== batch engine smoke benchmark =="
python benchmarks/bench_batch_engine.py --smoke
