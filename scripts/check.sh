#!/usr/bin/env bash
# CI gate: tier-1 test suite plus engine smoke benchmarks — the batch
# engine must beat the reference loop on a 10k-query RMAT workload, the
# sharded parallel engine (2 workers, small graph) must produce
# bit-identical results to the batch engine, the async walk service
# must shed zero requests under nominal open-loop load while replaying
# bit-identically offline, and the dynamic subsystem must publish
# snapshots bit-identical to from-scratch builds after a streamed
# update trace.  (The machine-readable BENCH_*.json perf records are
# rewritten by the *full* benchmark runs, not by these smokes.)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== batch engine smoke benchmark =="
python benchmarks/bench_batch_engine.py --smoke

echo
echo "== parallel engine smoke (2 workers) =="
python benchmarks/bench_parallel_engine.py --smoke

echo
echo "== serve smoke (zero drops at nominal load, bit-identical replay) =="
python benchmarks/bench_serve.py --smoke

echo
echo "== dynamic smoke (update trace + snapshot-equivalence check) =="
python benchmarks/bench_dynamic.py --smoke
