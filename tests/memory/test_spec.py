"""Unit tests for memory specs and Equation (1)."""

import pytest

from repro.errors import MemoryModelError
from repro.memory import (
    DDR4_U250,
    DDR4_VCK5000,
    HBM2_U50,
    HBM2_U55C,
    MemorySpec,
    equation1_peak_gbs,
)


class TestMemorySpec:
    def test_peak_random_bandwidth(self):
        # Eq (1): rate * channels * 8 bytes.
        spec = MemorySpec("t", num_channels=4, random_tx_rate_mhz=100, sequential_gbs=50)
        assert spec.peak_random_bandwidth_gbs() == pytest.approx(4 * 100e6 * 8 / 1e9)

    def test_peak_tx_per_second(self):
        spec = MemorySpec("t", num_channels=2, random_tx_rate_mhz=150, sequential_gbs=50)
        assert spec.peak_random_tx_per_second() == pytest.approx(300e6)

    def test_channel_tx_per_core_cycle(self):
        spec = MemorySpec("t", num_channels=1, random_tx_rate_mhz=160, sequential_gbs=10)
        assert spec.channel_tx_per_core_cycle(320.0) == pytest.approx(0.5)

    def test_burst_cost_monotone(self):
        spec = HBM2_U55C
        costs = [spec.burst_cost_tx(w) for w in (1, 2, 8, 64)]
        assert costs[0] == 1.0
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_burst_cost_cheaper_than_random(self):
        # A 16-word burst must cost far less than 16 random transactions.
        assert HBM2_U55C.burst_cost_tx(16) < 4.0

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            MemorySpec("t", num_channels=0, random_tx_rate_mhz=1, sequential_gbs=1)
        with pytest.raises(MemoryModelError):
            MemorySpec("t", num_channels=1, random_tx_rate_mhz=0, sequential_gbs=1)
        with pytest.raises(MemoryModelError):
            HBM2_U55C.burst_cost_tx(0)
        with pytest.raises(MemoryModelError):
            HBM2_U55C.channel_tx_per_core_cycle(0)


class TestEquationOne:
    def test_literal_form(self):
        # 1/t_RRD activations/s * channels * 8B
        assert equation1_peak_gbs(450, 10.0, 1) == pytest.approx(0.8)
        assert equation1_peak_gbs(450, 10.0, 32) == pytest.approx(25.6)

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            equation1_peak_gbs(0, 1, 1)


class TestCatalog:
    def test_channel_counts_match_table3(self):
        assert HBM2_U55C.num_channels == 32
        assert HBM2_U50.num_channels == 32
        assert DDR4_U250.num_channels == 4
        assert DDR4_VCK5000.num_channels == 4

    def test_sequential_bandwidths_match_table3(self):
        assert HBM2_U55C.sequential_gbs == 460.0
        assert HBM2_U50.sequential_gbs == 316.0
        assert DDR4_U250.sequential_gbs == 77.0
        assert DDR4_VCK5000.sequential_gbs == 102.0

    def test_hbm_ordering(self):
        # U55C is the faster HBM stack.
        assert HBM2_U55C.random_tx_rate_mhz > HBM2_U50.random_tx_rate_mhz
