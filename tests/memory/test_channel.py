"""Unit tests for the cycle-level memory channel model."""

import pytest

from repro.errors import MemoryModelError
from repro.memory import MemoryChannel, MemoryRequest, MemorySpec


def make_channel(rate_mhz=160.0, core_mhz=320.0, latency=10, outstanding=4, queue=8):
    spec = MemorySpec(
        "test",
        num_channels=1,
        random_tx_rate_mhz=rate_mhz,
        sequential_gbs=10.0,
        round_trip_cycles=latency,
        max_outstanding=outstanding,
    )
    return MemoryChannel(spec, core_mhz=core_mhz, queue_capacity=queue)


class TestLatency:
    def test_response_after_round_trip(self):
        ch = make_channel(rate_mhz=320.0, latency=10)
        ch.submit(MemoryRequest(tag="a"))
        for cycle in range(10):
            assert not ch.has_response(), f"early response at {cycle}"
            ch.tick()
        ch.tick()
        assert ch.has_response()
        assert ch.pop_response().tag == "a"

    def test_responses_in_order(self):
        ch = make_channel(rate_mhz=320.0, latency=5)
        for tag in ("a", "b", "c"):
            ch.submit(MemoryRequest(tag=tag))
        for _ in range(30):
            ch.tick()
        assert [ch.pop_response().tag for _ in range(3)] == ["a", "b", "c"]


class TestRateLimit:
    def test_issue_rate_is_half_core_rate(self):
        # 160 MT/s at 320 MHz core = 0.5 tx/cycle.
        ch = make_channel(rate_mhz=160.0, outstanding=64, queue=2000)
        for i in range(1000):
            ch.submit(MemoryRequest(tag=i))
        for _ in range(1000):
            ch.tick()
        completed_plus_inflight = ch.stats.requests_accepted - ch.pending_count()
        assert completed_plus_inflight == pytest.approx(500, abs=10)

    def test_burst_consumes_more_tokens(self):
        single = make_channel(outstanding=64, queue=2000)
        burst = make_channel(outstanding=64, queue=2000)
        for i in range(500):
            single.submit(MemoryRequest(tag=i, burst_words=1))
            burst.submit(MemoryRequest(tag=i, burst_words=32))
        for _ in range(600):
            single.tick()
            burst.tick()
        assert burst.stats.requests_completed < single.stats.requests_completed

    def test_token_bank_is_capped(self):
        # A long idle period must not bank unbounded issue credit.
        ch = make_channel(rate_mhz=32.0, outstanding=64, queue=100)
        for _ in range(1000):
            ch.tick()  # idle
        for i in range(50):
            ch.submit(MemoryRequest(tag=i))
        issued_immediately = 0
        ch.tick()
        issued_immediately = ch.in_flight_count()
        assert issued_immediately <= 4  # bank cap, not 100 cycles' worth


class TestOutstandingWindow:
    def test_window_blocks_issue(self):
        ch = make_channel(rate_mhz=320.0, latency=100, outstanding=2, queue=50)
        for i in range(10):
            ch.submit(MemoryRequest(tag=i))
        for _ in range(50):
            ch.tick()
        assert ch.in_flight_count() <= 2

    def test_queue_capacity_enforced(self):
        ch = make_channel(queue=2)
        ch.submit(MemoryRequest(tag=1))
        ch.submit(MemoryRequest(tag=2))
        assert not ch.can_accept()
        with pytest.raises(MemoryModelError, match="overflow"):
            ch.submit(MemoryRequest(tag=3))


class TestReorderWindow:
    def test_deliver_out_of_order_skips_blocked(self):
        ch = make_channel(rate_mhz=320.0, latency=1, queue=10)
        for tag in ("x", "y", "z"):
            ch.submit(MemoryRequest(tag=tag))
        for _ in range(10):
            ch.tick()
        delivered = []
        ch.deliver_out_of_order(
            lambda req: delivered.append(req.tag) or True if req.tag != "x" else False,
            window=8,
        )
        assert delivered == ["y", "z"]
        # x stays at the head, order preserved
        assert ch.peek_response().tag == "x"

    def test_window_bounds_scan(self):
        ch = make_channel(rate_mhz=320.0, latency=1, queue=40, outstanding=40)
        for i in range(10):
            ch.submit(MemoryRequest(tag=i))
        for _ in range(20):
            ch.tick()
        seen = []
        ch.deliver_out_of_order(lambda req: seen.append(req.tag) or False, window=4)
        assert seen == [0, 1, 2, 3]

    def test_window_validation(self):
        ch = make_channel()
        with pytest.raises(MemoryModelError):
            ch.deliver_out_of_order(lambda r: True, window=0)

    def test_window_of_one_degenerates_to_in_order(self):
        # window=1 offers only the head: a rejection at the head delivers
        # nothing and moves nothing, exactly in-order semantics.
        ch = make_channel(rate_mhz=320.0, latency=1, queue=10)
        for tag in ("a", "b", "c"):
            ch.submit(MemoryRequest(tag=tag))
        for _ in range(10):
            ch.tick()
        offered = []
        delivered = ch.deliver_out_of_order(
            lambda req: offered.append(req.tag) or False, window=1
        )
        assert delivered == 0
        assert offered == ["a"]
        assert ch.peek_response().tag == "a"
        # Accepting the head with window=1 consumes exactly one.
        assert ch.deliver_out_of_order(lambda req: True, window=1) == 1
        assert ch.peek_response().tag == "b"

    def test_window_larger_than_pending(self):
        # The scan is bounded by what has completed, not the window: a
        # huge window over two responses offers two, delivers two, and a
        # second call on the drained queue is a no-op.
        ch = make_channel(rate_mhz=320.0, latency=1, queue=10)
        for tag in ("a", "b"):
            ch.submit(MemoryRequest(tag=tag))
        for _ in range(10):
            ch.tick()
        offered = []
        delivered = ch.deliver_out_of_order(
            lambda req: offered.append(req.tag) or True, window=1000
        )
        assert delivered == 2
        assert offered == ["a", "b"]
        assert not ch.has_response()
        assert ch.deliver_out_of_order(lambda req: True, window=1000) == 0

    def test_responses_arriving_during_drain_wait_their_turn(self):
        # A response that completes *while* a drain call is running (the
        # delivery callback ticks the channel, as a cycle-driven consumer
        # does) must not be offered by the in-progress call — the scan is
        # over the snapshot at call time — and must queue behind the
        # survivors of that scan.
        ch = make_channel(rate_mhz=320.0, latency=3, queue=10)
        ch.submit(MemoryRequest(tag="early"))
        for _ in range(6):
            ch.tick()
        assert ch.has_response()
        ch.submit(MemoryRequest(tag="late"))

        offered = []

        def tick_through(req):
            offered.append(req.tag)
            for _ in range(10):
                ch.tick()  # "late" completes mid-drain
            return False

        ch.deliver_out_of_order(tick_through, window=8)
        assert offered == ["early"]
        # Both remain, original arrival order intact for the next call.
        seen = []
        ch.deliver_out_of_order(lambda req: seen.append(req.tag) or True, window=8)
        assert seen == ["early", "late"]


class TestAccounting:
    def test_drain_complete(self):
        ch = make_channel(rate_mhz=320.0, latency=3)
        assert ch.drain_complete()
        ch.submit(MemoryRequest(tag=1))
        assert not ch.drain_complete()
        for _ in range(10):
            ch.tick()
        ch.pop_response()
        assert ch.drain_complete()

    def test_words_and_bytes(self):
        ch = make_channel(rate_mhz=320.0)
        ch.submit(MemoryRequest(tag=1, burst_words=4))
        for _ in range(20):
            ch.tick()
        assert ch.stats.words_transferred == 4
        assert ch.stats.bytes_transferred() == 32

    def test_burst_words_validation(self):
        with pytest.raises(MemoryModelError):
            MemoryRequest(tag=1, burst_words=0)

    def test_pop_empty_raises(self):
        with pytest.raises(MemoryModelError):
            make_channel().pop_response()
