"""Unit tests for the graph memory layout and the multi-channel system."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.graph import cycle_graph, powerlaw
from repro.memory import (
    ChannelGroup,
    GraphMemoryLayout,
    MemoryRequest,
    MemorySpec,
    MemorySystem,
)

SPEC = MemorySpec(
    "t", num_channels=8, random_tx_rate_mhz=160, sequential_gbs=10, round_trip_cycles=5
)


class TestLayout:
    def graph(self):
        return powerlaw(num_vertices=200, num_edges=1000, seed=1)

    def test_row_partitioning_is_deterministic_hash(self):
        g = self.graph()
        layout = GraphMemoryLayout(g, 4, 4, replicate_hot_entries=0)
        channels = [layout.row_channel(v) for v in range(g.num_vertices)]
        assert channels == [layout.row_channel(v) for v in range(g.num_vertices)]
        assert set(channels) == {0, 1, 2, 3}
        # Random partition: roughly balanced entry counts per channel.
        for c in range(4):
            count = channels.count(c)
            assert abs(count - g.num_vertices / 4) < g.num_vertices * 0.15

    def test_hot_entries_served_from_home_channel(self):
        g = self.graph()
        layout = GraphMemoryLayout(g, 4, 4, replicate_hot_entries=16)
        import numpy as np

        hot = int(np.argmax(np.bincount(g.col, minlength=g.num_vertices)))
        assert layout.is_replicated(hot)
        for home in range(4):
            assert layout.row_channel(hot, home_channel=home) == home
        # Without a home channel, the hash placement is used.
        assert 0 <= layout.row_channel(hot) < 4

    def test_column_interleaving(self):
        layout = GraphMemoryLayout(self.graph(), 4, 4)
        # consecutive elements cycle through channels
        channels = [layout.column_channel_of(e) for e in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_hub_list_spans_all_channels(self):
        g = self.graph()
        layout = GraphMemoryLayout(g, 4, 4)
        hub = int(np.argmax(g.degrees()))
        lo = int(g.row_ptr[hub])
        degree = g.degree(hub)
        touched = {layout.column_channel_of(lo + i) for i in range(degree)}
        assert touched == {0, 1, 2, 3}

    def test_row_entry_decodes_graph(self):
        g = self.graph()
        layout = GraphMemoryLayout(g, 4, 4)
        v = 17
        entry = layout.row_entry(v)
        assert entry.degree == g.degree(v)
        assert entry.column_address == int(g.row_ptr[v])
        assert entry.column_channel == layout.column_channel_of(entry.column_address)

    def test_rp_entry_words_by_width(self):
        g = self.graph()
        assert GraphMemoryLayout(g, 2, 2, rp_entry_bits=64).rp_entry_words() == 1
        assert GraphMemoryLayout(g, 2, 2, rp_entry_bits=128).rp_entry_words() == 2
        assert GraphMemoryLayout(g, 2, 2, rp_entry_bits=256).rp_entry_words() == 4

    def test_invalid_rp_width_rejected(self):
        with pytest.raises(MemoryModelError, match="Table I"):
            GraphMemoryLayout(self.graph(), 2, 2, rp_entry_bits=96)

    def test_column_load_balance_near_one(self):
        layout = GraphMemoryLayout(self.graph(), 4, 4)
        assert layout.column_load_balance() == pytest.approx(1.0, abs=0.01)

    def test_row_partition_bytes_sum(self):
        g = self.graph()
        layout = GraphMemoryLayout(g, 4, 4, rp_entry_bits=128)
        total = sum(layout.row_partition_bytes(c) for c in range(4))
        assert total == g.num_vertices * 16

    def test_column_partition_bytes_sum(self):
        g = self.graph()
        layout = GraphMemoryLayout(g, 4, 4)
        total = sum(layout.column_partition_bytes(c) for c in range(4))
        assert total == g.num_edges * 8

    def test_vertex_bounds_checked(self):
        layout = GraphMemoryLayout(self.graph(), 4, 4)
        with pytest.raises(MemoryModelError):
            layout.row_channel(9999)
        with pytest.raises(MemoryModelError):
            layout.column_channel_of(-1)


class TestMemorySystem:
    def test_group_split(self):
        system = MemorySystem(SPEC, core_mhz=320, num_row_channels=3, num_column_channels=5)
        assert system.num_row_channels == 3
        assert system.num_column_channels == 5
        assert len(system.all_channels()) == 8

    def test_rejects_overprovisioning(self):
        with pytest.raises(MemoryModelError, match="exposes"):
            MemorySystem(SPEC, core_mhz=320, num_row_channels=5, num_column_channels=5)

    def test_submit_routes_to_group(self):
        system = MemorySystem(SPEC, core_mhz=320, num_row_channels=2, num_column_channels=2)
        system.submit(ChannelGroup.ROW, 1, MemoryRequest(tag="r"))
        system.submit(ChannelGroup.COLUMN, 0, MemoryRequest(tag="c"))
        assert system.channel(ChannelGroup.ROW, 1).pending_count() == 1
        assert system.channel(ChannelGroup.COLUMN, 0).pending_count() == 1

    def test_idle_and_tick(self):
        system = MemorySystem(SPEC, core_mhz=320, num_row_channels=1, num_column_channels=1)
        assert system.idle()
        system.submit(ChannelGroup.ROW, 0, MemoryRequest(tag="x"))
        assert not system.idle()
        for _ in range(20):
            system.tick()
        system.channel(ChannelGroup.ROW, 0).pop_response()
        assert system.idle()

    def test_bandwidth_accounting(self):
        system = MemorySystem(SPEC, core_mhz=320, num_row_channels=1, num_column_channels=1)
        system.submit(ChannelGroup.ROW, 0, MemoryRequest(tag="x", burst_words=2))
        for _ in range(10):
            system.tick()
        assert system.total_words_transferred() == 2
        assert system.total_requests() == 1
        assert system.effective_bandwidth_gbs(10) > 0

    def test_channel_index_bounds(self):
        system = MemorySystem(SPEC, core_mhz=320, num_row_channels=2, num_column_channels=2)
        with pytest.raises(MemoryModelError, match="out of range"):
            system.channel(ChannelGroup.ROW, 2)

    def test_utilization_fraction(self):
        g = cycle_graph(4)  # unused; utilization is pure accounting
        system = MemorySystem(SPEC, core_mhz=320, num_row_channels=1, num_column_channels=1)
        for i in range(100):
            system.submit(ChannelGroup.ROW, 0, MemoryRequest(tag=i))
        for _ in range(100):
            system.tick()
        util = system.utilization(100)
        assert 0.0 < util <= 1.01
