"""Distributed engine: bit-identity to batch, lifecycle, registry, serving.

The determinism contract under test everywhere: a walker's randomness is
its per-query ``SeedSequence((seed, query_id))`` substream, carried with
the walker as it forwards between shards — so the shard count, the
partition, and the routing interleave are invisible in the results.
``dist`` must be *bit-identical* to ``batch``: same paths, same
termination counters, same proposal/read totals, for every algorithm,
any shard count, either sampler mode, and across an epoch swap.
"""

import functools

import numpy as np
import pytest

from repro.bench.workloads import make_spec
from repro.cli import ALGORITHMS
from repro.dist import DistWalkEngine, run_walks_dist
from repro.engines import prepare_engine, run_software_walks
from repro.errors import GraphError, WalkConfigError
from repro.graph import load_dataset
from repro.graph.datasets import assign_metapath_schema
from repro.parallel.worker import STAT_FIELDS
from repro.walks import (
    DeepWalkSpec,
    EngineStats,
    URWSpec,
    make_queries,
    run_walks_batch,
)

NUM_QUERIES = 200
WALK_LENGTH = 10
SEED = 17


@functools.lru_cache(maxsize=None)
def _graph():
    """Weighted + metapath-typed so one graph serves every algorithm."""
    graph = load_dataset("WG", scale=0.08, seed=1, weighted=True)
    return assign_metapath_schema(graph, num_types=3, seed=1)


@functools.lru_cache(maxsize=None)
def _queries():
    return tuple(make_queries(_graph(), NUM_QUERIES, seed=5))


def _spec(algorithm):
    spec = make_spec(algorithm)
    spec.max_length = WALK_LENGTH
    return spec


def _assert_identical(expected, expected_stats, actual, actual_stats, label=""):
    assert expected.num_queries == actual.num_queries
    for a, b in zip(expected.paths, actual.paths):
        assert np.array_equal(a, b), label
    for name in STAT_FIELDS + ("total_hops",):
        assert getattr(expected_stats, name) == getattr(actual_stats, name), (
            f"{label}: EngineStats.{name} diverged"
        )


class TestBitIdenticalToBatch:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_every_algorithm_every_shard_count(self, algorithm, shards):
        batch_stats = EngineStats()
        baseline = run_walks_batch(
            _graph(), _spec(algorithm), list(_queries()), seed=SEED,
            stats=batch_stats,
        )
        dist_stats = EngineStats()
        result = run_walks_dist(
            _graph(), _spec(algorithm), list(_queries()), seed=SEED,
            stats=dist_stats, shards=shards,
        )
        _assert_identical(baseline, batch_stats, result, dist_stats,
                          label=f"{algorithm} @ {shards} shards")

    @pytest.mark.parametrize("sampler", ["default", "auto"])
    def test_sampler_modes_match_batch(self, sampler):
        batch_stats = EngineStats()
        baseline, _ = run_software_walks(
            "batch", _graph(), _spec("Node2Vec"), list(_queries()),
            seed=SEED, stats=batch_stats, sampler=sampler,
        )
        dist_stats = EngineStats()
        result, _ = run_software_walks(
            "dist", _graph(), _spec("Node2Vec"), list(_queries()),
            seed=SEED, stats=dist_stats, shards=3, sampler=sampler,
        )
        _assert_identical(baseline, batch_stats, result, dist_stats,
                          label=f"sampler={sampler}")

    def test_identical_across_epoch_swap(self):
        """Repartitioning onto a mutated graph keeps both epochs exact."""
        from repro.dynamic import DynamicGraph

        # Untyped: dynamic graphs reject MetaPath schemas.
        base = load_dataset("WG", scale=0.08, seed=1, weighted=True)
        dynamic = DynamicGraph(base)
        snap0 = dynamic.snapshot()
        rng = np.random.default_rng(9)
        edges = [
            (int(a), int(b))
            for a, b in rng.integers(0, base.num_vertices, size=(40, 2))
            if a != b
        ]
        dynamic.add_edges(edges, weights=rng.uniform(0.5, 2.0, len(edges)))
        snap1 = dynamic.snapshot()

        spec = DeepWalkSpec(max_length=WALK_LENGTH)
        queries = list(_queries())
        with prepare_engine("dist", snap0.graph, spec, shards=2) as engine:
            before = engine.run(queries, seed=SEED)
            oracle0 = run_walks_batch(snap0.graph, spec, queries, seed=SEED)
            for a, b in zip(oracle0.paths, before.paths):
                assert np.array_equal(a, b)
            engine.swap_snapshot(snap1)
            after = engine.run(queries, seed=SEED)
            oracle1 = run_walks_batch(snap1.graph, spec, queries, seed=SEED)
            for a, b in zip(oracle1.paths, after.paths):
                assert np.array_equal(a, b)

    def test_routing_telemetry_reported(self):
        with DistWalkEngine(_graph(), URWSpec(max_length=8), shards=2) as engine:
            engine.run(list(_queries())[:50], seed=SEED)
            stats = engine.last_run_stats
        assert stats["steps"] >= 1
        assert 0.0 <= stats["forward_rate"] <= 1.0
        assert len(stats["per_shard_processed"]) == 2
        assert sum(stats["per_shard_processed"]) > 0


class TestLifecycle:
    def test_invalid_shards_rejected(self):
        with pytest.raises(WalkConfigError):
            DistWalkEngine(_graph(), URWSpec(max_length=5), shards=0)

    def test_zero_queries(self):
        with DistWalkEngine(_graph(), URWSpec(max_length=5), shards=2) as engine:
            assert engine.run([]).num_queries == 0

    def test_out_of_range_start_vertex(self):
        from repro.walks import Query

        with DistWalkEngine(_graph(), URWSpec(max_length=5), shards=2) as engine:
            with pytest.raises(GraphError):
                engine.run([Query(0, _graph().num_vertices + 7)])

    def test_closed_engine_rejects_runs(self):
        engine = DistWalkEngine(_graph(), URWSpec(max_length=5), shards=2)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(WalkConfigError):
            engine.run(list(_queries())[:4], seed=SEED)
        with pytest.raises(WalkConfigError):
            engine.swap_graph(_graph())


class TestRegistry:
    def test_misdirected_options_rejected(self):
        with pytest.raises(WalkConfigError):
            run_software_walks(
                "dist", _graph(), URWSpec(max_length=5), list(_queries())[:4],
                workers=2,  # a parallel-engine option
            )
        with pytest.raises(WalkConfigError):
            run_software_walks(
                "batch", _graph(), URWSpec(max_length=5), list(_queries())[:4],
                shards=2,  # a dist-engine option
            )

    def test_prepared_engine_amortizes_workers(self):
        spec = URWSpec(max_length=8)
        queries = list(_queries())[:60]
        baseline = run_walks_batch(_graph(), spec, queries, seed=SEED)
        with prepare_engine("dist", _graph(), spec, shards=2) as engine:
            for _ in range(2):  # same workers serve repeated runs
                result = engine.run(queries, seed=SEED)
                for a, b in zip(baseline.paths, result.paths):
                    assert np.array_equal(a, b)


class TestServing:
    def test_service_serves_through_dist(self):
        import asyncio

        from repro.serve import WalkService, replay_paths

        graph = _graph()
        spec = URWSpec(max_length=6)

        requests = {100 + i: i * 7 % graph.num_vertices for i in range(5)}

        async def scenario():
            async with WalkService(graph, spec, engine="dist", seed=11,
                                   shards=2) as service:
                return {
                    query_id: await service.submit(start, query_id=query_id)
                    for query_id, start in requests.items()
                }

        results = asyncio.run(scenario())
        # Every served slice replays bit-identically offline: the serving
        # engine being distributed is invisible in the results.
        oracle = replay_paths(graph, spec, requests, seed=11)
        for query_id, walk in results.items():
            assert np.array_equal(walk.paths[0], oracle[query_id])
