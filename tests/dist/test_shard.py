"""Shard partitioning and per-shard shared-memory store hygiene."""

import os

import numpy as np
import pytest

from repro.dist import build_shard_stores, partition_vertices, shard_view_from_store
from repro.graph import load_dataset
from repro.parallel.shared_graph import SharedArrayStore
from repro.sampling.vectorized import make_kernel
from repro.walks import DeepWalkSpec, URWSpec


def _graph():
    return load_dataset("WG", scale=0.05, seed=1, weighted=True)


def _kernel_arrays(graph, spec):
    kernel = make_kernel(spec.make_sampler())
    kernel.prepare(graph)
    return kernel.state_arrays()


def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs hosts
        return set()


class TestPartition:
    def test_owner_map_covers_every_vertex(self):
        graph = _graph()
        owner = partition_vertices(graph, URWSpec(max_length=5), 3)
        assert owner.shape == (graph.num_vertices,)
        assert set(np.unique(owner)) <= {0, 1, 2}
        # Every shard owns something on a graph much larger than 3.
        assert len(set(np.unique(owner))) == 3

    def test_partition_is_deterministic(self):
        graph = _graph()
        spec = DeepWalkSpec(max_length=5)
        assert np.array_equal(
            partition_vertices(graph, spec, 4), partition_vertices(graph, spec, 4)
        )


class TestShardStores:
    def test_views_roundtrip_owned_rows(self):
        graph = _graph()
        spec = DeepWalkSpec(max_length=5)
        owner = partition_vertices(graph, spec, 2)
        stores = build_shard_stores(graph, _kernel_arrays(graph, spec), owner, 2)
        try:
            for shard, store in enumerate(stores):
                view, owner_view = shard_view_from_store(store)
                assert np.array_equal(owner_view, owner)
                assert view.num_vertices == graph.num_vertices
                assert np.array_equal(view.degrees(), graph.degrees())
                owned = np.nonzero(owner == shard)[0]
                for v in owned[:20]:
                    lo, hi = graph.row_ptr[v], graph.row_ptr[v + 1]
                    start = view.row_ptr[v]
                    assert np.array_equal(
                        view.col[start:start + (hi - lo)], graph.col[lo:hi]
                    )
        finally:
            for store in stores:
                store.close()

    def test_non_owned_rows_are_poisoned(self):
        # Reading a foreign row must blow up (IndexError), never silently
        # sample another shard's edges.
        graph = _graph()
        spec = URWSpec(max_length=5)
        owner = partition_vertices(graph, spec, 2)
        stores = build_shard_stores(graph, _kernel_arrays(graph, spec), owner, 2)
        try:
            view, _ = shard_view_from_store(stores[0])
            foreign = np.nonzero(owner == 1)[0]
            victim = next(int(v) for v in foreign if graph.degrees()[v] > 0)
            assert view.row_ptr[victim] == view.col.size
            with pytest.raises(IndexError):
                view.col[view.row_ptr[victim]]
        finally:
            for store in stores:
                store.close()

    def test_failure_midway_unlinks_created_segments(self, monkeypatch):
        """RW103 audit: a crash partway through bring-up must not strand
        the already-created shards' segments in /dev/shm."""
        graph = _graph()
        spec = URWSpec(max_length=5)
        owner = partition_vertices(graph, spec, 3)
        arrays = _kernel_arrays(graph, spec)

        real_create = SharedArrayStore.create.__func__
        calls = {"n": 0}

        def flaky_create(cls, store_arrays, graph_name="graph"):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("injected segment failure")
            return real_create(cls, store_arrays, graph_name=graph_name)

        monkeypatch.setattr(SharedArrayStore, "create", classmethod(flaky_create))
        before = _shm_segments()
        with pytest.raises(RuntimeError, match="injected segment failure"):
            build_shard_stores(graph, arrays, owner, 3)
        assert calls["n"] == 3  # two stores existed when the third failed
        assert _shm_segments() == before
