"""Statistical helpers shared across engine-equivalence test suites.

Importable from any test module because ``tests/conftest.py`` puts this
directory on ``sys.path``; keeping one copy of the oracle means a tuning
change (binning rule, significance floor) cannot silently leave two
suites testing different statistics.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats


def chi_square_compare(counts_a, counts_b, min_expected=5.0):
    """Two-sample chi-square on visit histograms; returns the p-value."""
    counts_a = np.asarray(counts_a, dtype=np.float64)
    counts_b = np.asarray(counts_b, dtype=np.float64)
    keep = (counts_a + counts_b) >= 2 * min_expected
    if keep.sum() < 2:
        pytest.skip("not enough populated bins for a chi-square test")
    a, b = counts_a[keep], counts_b[keep]
    total_a, total_b = a.sum(), b.sum()
    pooled = (a + b) / (total_a + total_b)
    chi2 = float((((a - pooled * total_a) ** 2) / (pooled * total_a)).sum()
                 + (((b - pooled * total_b) ** 2) / (pooled * total_b)).sum())
    return 1.0 - scipy_stats.chi2.cdf(chi2, int(keep.sum() - 1))
