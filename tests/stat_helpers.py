"""Statistical helpers shared across engine-equivalence test suites.

Importable from any test module because ``tests/conftest.py`` puts this
directory on ``sys.path``; keeping one copy of the oracle means a tuning
change (binning rule, significance floor) cannot silently leave two
suites testing different statistics.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

#: Shared significance floor for every chi-square assertion in the suite.
#: One constant — not per-file copies — so loosening or tightening the
#: statistical tier is a single reviewed change.  At 1e-3, a correct
#: sampler fails a given test about once per thousand (seed-pinned, so in
#: practice: never or always).
CHI_SQUARE_ALPHA = 1e-3


def chi_square_gof(observed_counts, expected_probs, min_expected=5.0):
    """One-sample goodness-of-fit p-value of counts vs exact probabilities.

    Bins whose expected count falls below ``min_expected`` are pooled
    into one tail bin (keeping total mass, so the statistic stays valid
    on heavy-tailed rows) before the chi-square is computed.
    """
    observed = np.asarray(observed_counts, dtype=np.float64)
    probs = np.asarray(expected_probs, dtype=np.float64)
    if observed.shape != probs.shape:
        raise ValueError(f"shape mismatch: {observed.shape} vs {probs.shape}")
    total = observed.sum()
    expected = probs * total
    keep = expected >= min_expected
    obs = list(observed[keep])
    exp = list(expected[keep])
    if not np.all(keep):
        obs.append(observed[~keep].sum())
        exp.append(expected[~keep].sum())
    if len(obs) < 2:
        pytest.skip("not enough populated bins for a chi-square test")
    obs, exp = np.asarray(obs), np.asarray(exp)
    chi2 = float((((obs - exp) ** 2) / exp).sum())
    return 1.0 - scipy_stats.chi2.cdf(chi2, len(obs) - 1)


def assert_chi_square_fit(observed_counts, expected_probs, label,
                          alpha=CHI_SQUARE_ALPHA, min_expected=5.0):
    """Assert observed counts fit the exact distribution (shared floor)."""
    p = chi_square_gof(observed_counts, expected_probs, min_expected=min_expected)
    assert p > alpha, (
        f"{label} diverges from its exact distribution "
        f"(p={p:.6f} <= alpha={alpha})"
    )


def chi_square_compare(counts_a, counts_b, min_expected=5.0):
    """Two-sample chi-square on visit histograms; returns the p-value."""
    counts_a = np.asarray(counts_a, dtype=np.float64)
    counts_b = np.asarray(counts_b, dtype=np.float64)
    keep = (counts_a + counts_b) >= 2 * min_expected
    if keep.sum() < 2:
        pytest.skip("not enough populated bins for a chi-square test")
    a, b = counts_a[keep], counts_b[keep]
    total_a, total_b = a.sum(), b.sum()
    pooled = (a + b) / (total_a + total_b)
    chi2 = float((((a - pooled * total_a) ** 2) / (pooled * total_a)).sum()
                 + (((b - pooled * total_b) ** 2) / (pooled * total_b)).sum())
    return 1.0 - scipy_stats.chi2.cdf(chi2, int(keep.sum() - 1))
