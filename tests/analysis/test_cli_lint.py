"""The ``repro lint`` subcommand and the repository's own gate.

The last two tests ARE the acceptance criteria: the shipped source tree
must lint clean (every finding fixed or waived with a written reason),
and fast enough for the PR lane.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(repro.__file__).resolve().parent


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "fine.py").write_text("x = 1\n", encoding="utf-8")
    assert main(["lint", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_findings_exit_one_with_locations(capsys):
    flag = FIXTURES / "rw102_flag.py"
    assert main(["lint", str(flag)]) == 1
    out = capsys.readouterr().out
    assert "RW102" in out
    assert f"{flag.name}:" in out or "rw102_flag.py:" in out


def test_lint_json_format_is_machine_readable(capsys):
    assert main(["lint", str(FIXTURES / "rw102_flag.py"),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["counts"]["active"] >= 3
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"RW102"}
    locations = [(f["path"], f["line"], f["col"]) for f in payload["findings"]]
    assert locations == sorted(locations)


def test_lint_verbose_lists_suppression_reasons(capsys):
    assert main(["lint", str(FIXTURES / "rw103_suppressed.py"),
                 "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "suppressed (test harness owns cleanup" in out


def test_lint_select_restricts_rules(capsys):
    assert main(["lint", str(FIXTURES / "rw101_flag.py"),
                 "--select", "RW103"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RW100", "RW101", "RW102", "RW103", "RW104", "RW105"):
        assert rule_id in out


def test_lint_baseline_workflow_via_cli(tmp_path, capsys):
    module = tmp_path / "legacy.py"
    module.write_text(
        "import numpy as np\nrng = np.random.default_rng(seed + 1)\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(module), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert "recorded 1 finding(s)" in capsys.readouterr().out
    assert main(["lint", str(module), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_write_baseline_requires_baseline_path(capsys):
    assert main(["lint", "--write-baseline"]) == 1
    assert "--write-baseline requires" in capsys.readouterr().err


def test_unknown_select_is_a_clean_error(capsys):
    assert main(["lint", "--select", "RW042"]) == 1
    assert "unknown rule id" in capsys.readouterr().err


def test_repro_source_tree_is_lint_clean():
    """Acceptance gate: zero unsuppressed findings over src/repro, and
    every waiver carries a written reason."""
    report = lint_paths([SRC])
    assert report.files_scanned > 80
    assert not report.active, "\n".join(
        f"{f.location()}: {f.rule_id} {f.message}" for f in report.active
    )
    for finding in report.suppressed:
        assert finding.suppression_reason.strip(), finding
    assert report.exit_code == 0


def test_lint_is_fast_enough_for_the_pr_lane():
    """Acceptance gate: the CI invocation finishes in well under 5 s."""
    report = lint_paths([SRC])
    assert report.elapsed_seconds < 5.0


def test_default_paths_lint_the_installed_package(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
