"""Framework-level behavior: suppression grammar, ordering, baselines."""

import numpy as np
import pytest

from repro.analysis import lint_paths, lint_source, load_baseline, write_baseline
from repro.analysis.core import AnalysisError

FLAGGED = "import numpy as np\nrng = np.random.default_rng(seed + 1)\n"


def violation(prefix="", comment="", above=""):
    lines = ["import numpy as np"]
    if above:
        lines.append(above)
    lines.append(f"{prefix}rng = np.random.default_rng(seed + 1){comment}")
    return "\n".join(lines) + "\n"


seed = 0  # referenced by the snippet text only


class TestSuppressionGrammar:
    def test_same_line_allow_with_reason_suppresses(self):
        findings = lint_source(violation(
            comment="  # repro: allow[RW102] frozen golden stream"))
        assert [f.suppressed for f in findings] == [True]
        assert findings[0].suppression_reason == "frozen golden stream"

    def test_standalone_previous_line_allow_suppresses(self):
        findings = lint_source(violation(
            above="# repro: allow[RW102] frozen golden stream"))
        assert [f.suppressed for f in findings] == [True]

    def test_previous_line_allow_behind_code_does_not_reach_down(self):
        src = (
            "import numpy as np\n"
            "x = 1  # repro: allow[RW102] reason on a code line above\n"
            "rng = np.random.default_rng(seed + 1)\n"
        )
        findings = lint_source(src)
        rw102 = [f for f in findings if f.rule_id == "RW102"]
        assert [f.suppressed for f in rw102] == [False]

    def test_reasonless_allow_does_not_suppress_and_is_reported(self):
        findings = lint_source(violation(comment="  # repro: allow[RW102]"))
        by_rule = {f.rule_id: f for f in findings}
        assert not by_rule["RW102"].suppressed
        assert "no reason" in by_rule["RW100"].message

    def test_multi_rule_allow(self):
        src = (
            "import numpy as np\n"
            "# repro: allow[RW101, RW102] legacy trace replay pins both\n"
            "np.random.shuffle(np.random.default_rng(seed + 1).permutation(4))\n"
        )
        findings = lint_source(src)
        assert findings, "expected findings"
        assert all(f.suppressed for f in findings)

    def test_wrong_rule_id_does_not_suppress(self):
        findings = lint_source(violation(
            comment="  # repro: allow[RW101] aimed at the wrong rule"))
        rw102 = [f for f in findings if f.rule_id == "RW102"]
        assert [f.suppressed for f in rw102] == [False]
        # ...and the mistargeted allow is reported as unused.
        assert any(
            f.rule_id == "RW100" and "unused" in f.message for f in findings
        )

    def test_allow_inside_string_literal_is_ignored(self):
        src = (
            "import numpy as np\n"
            'text = "# repro: allow[RW102] not a comment"\n'
            "rng = np.random.default_rng(seed + 1)\n"
        )
        rw102 = [f for f in lint_source(src) if f.rule_id == "RW102"]
        assert [f.suppressed for f in rw102] == [False]


class TestDeterministicOutput:
    def test_findings_sorted_and_stable_across_path_order(self, tmp_path):
        first = tmp_path / "a_module.py"
        second = tmp_path / "b_module.py"
        first.write_text(FLAGGED, encoding="utf-8")
        second.write_text(FLAGGED, encoding="utf-8")
        forward = lint_paths([first, second])
        backward = lint_paths([second, first])
        keys = [f.sort_key() for f in forward.findings]
        assert keys == sorted(keys)
        assert keys == [f.sort_key() for f in backward.findings]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule id"):
            lint_source(FLAGGED, select=["RW042"])

    def test_select_runs_only_requested_rules(self):
        src = (
            "import numpy as np\n"
            "np.random.shuffle([1])\n"
            "rng = np.random.default_rng(seed + 1)\n"
        )
        findings = lint_source(src, select=["RW101"])
        assert {f.rule_id for f in findings} == {"RW101"}


class TestBaseline:
    def test_round_trip_silences_recorded_findings(self, tmp_path):
        module = tmp_path / "legacy.py"
        module.write_text(FLAGGED, encoding="utf-8")
        baseline_path = tmp_path / "lint-baseline.json"
        count = write_baseline(baseline_path, lint_paths([module]))
        assert count == 1
        report = lint_paths([module], baseline=load_baseline(baseline_path))
        assert not report.active
        assert [f.baselined for f in report.findings] == [True]
        assert report.exit_code == 0

    def test_new_findings_still_fail_under_baseline(self, tmp_path):
        module = tmp_path / "legacy.py"
        module.write_text(FLAGGED, encoding="utf-8")
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, lint_paths([module]))
        module.write_text(
            FLAGGED + "other = np.random.default_rng(seed ^ 0x5EED)\n",
            encoding="utf-8",
        )
        report = lint_paths([module], baseline=load_baseline(baseline_path))
        assert len(report.active) == 1
        assert "0x5EED" in report.active[0].snippet

    def test_editing_the_flagged_line_invalidates_its_entry(self, tmp_path):
        module = tmp_path / "legacy.py"
        module.write_text(FLAGGED, encoding="utf-8")
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, lint_paths([module]))
        module.write_text(
            "import numpy as np\nrng = np.random.default_rng(seed + 2)\n",
            encoding="utf-8",
        )
        report = lint_paths([module], baseline=load_baseline(baseline_path))
        assert len(report.active) == 1

    def test_unreadable_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{]", encoding="utf-8")
        with pytest.raises(AnalysisError, match="unreadable baseline"):
            load_baseline(bad)
        with pytest.raises(AnalysisError, match="not found"):
            load_baseline(tmp_path / "missing.json")


def test_missing_path_raises():
    with pytest.raises(AnalysisError, match="no such file"):
        lint_paths(["/nonexistent/lint/target"])


def test_derive_seed_streams_are_independent():
    """The helper the RW102 fixes migrated to: distinct tag paths give
    distinct, reproducible child seeds for every root."""
    from repro.sampling.base import derive_seed

    seeds = {derive_seed(7, tag) for tag in ("queries", "engine", "arrivals", 1, 2)}
    assert len(seeds) == 5
    assert derive_seed(7, "queries") == derive_seed(7, "queries")
    assert derive_seed(7, "queries") != derive_seed(8, "queries")
    # Negative roots are normalized, not rejected (CLI contract).
    assert derive_seed(-3, "queries") == derive_seed(-3 & (2**64 - 1), "queries")
