"""RW107 flagging fixture: wall-clock differences posing as durations."""
import time as clock
from time import time


def inline_difference():
    started = do_work()
    return clock.time() - started


def tracked_names_difference():
    started = clock.time()
    do_work()
    finished = clock.time()
    return finished - started


def bare_import_difference():
    begun = do_work()
    return time() - begun


def do_work():
    return 0.0
