"""RW104 suppressed fixture: a justified blocking call, with reason."""
import time


async def startup_probe():
    # repro: allow[RW104] startup path before the loop serves traffic; bounded 1ms backoff
    time.sleep(0.001)
