"""RW103 clean fixture: both accepted lifecycle shapes."""
import numpy as np
from multiprocessing import shared_memory


def broadcast_scoped(array: np.ndarray):
    with shared_memory.SharedMemory(create=True, size=array.nbytes) as shm:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return bytes(shm.buf)


def broadcast_guarded(array: np.ndarray):
    shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
    try:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return shm
    except BaseException:
        shm.close()
        shm.unlink()
        raise


def attach_only(name: str):
    # create=False (attach) takes no ownership; nothing to flag.
    return shared_memory.SharedMemory(name=name)
