"""RW101 clean fixture: every stream rooted in an explicit generator."""
import numpy as np


def scramble(vertices, seed):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0)))
    rng.shuffle(vertices)
    return vertices


def pick_start(candidates, rng: np.random.Generator):
    return candidates[int(rng.integers(0, len(candidates)))]
