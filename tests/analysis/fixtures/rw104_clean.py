"""RW104 clean fixture: async waits and executor dispatch only."""
import asyncio
from functools import partial


def run_walks(queries, seed=0):
    return queries


async def handler(queries):
    await asyncio.sleep(0.01)
    loop = asyncio.get_running_loop()
    # Handing the sync engine to an executor is the sanctioned shape;
    # the callable is an argument, not a call, so nothing blocks here.
    results = await loop.run_in_executor(None, partial(run_walks, queries, seed=1))
    return results


def sync_helper(queries):
    # Blocking calls are fine outside async bodies...
    import time

    time.sleep(0.0)
    return run_walks(queries)


async def outer():
    def inner(queries):
        # ...including inside a *sync* def nested in an async one:
        # only calling it on the loop would block, which the nested
        # body cannot show.
        return run_walks(queries)

    return inner
