"""RW100 suppressed fixture: a stale allow kept deliberately.

The RW101 allow matches nothing (stale), which RW100 reports at the
comment's line; the standalone RW100 allow directly above it waives
that hygiene finding — with a reason, per policy.
"""


def placeholder(count):
    # repro: allow[RW100] allow kept as the documented example for the README suppression table
    # repro: allow[RW101] kept-for-documentation waiver; see README determinism contract
    return list(range(count))
