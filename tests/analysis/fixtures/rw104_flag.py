"""RW104 flagging fixture: blocking work on the event loop."""
import time


def run_walks(queries, seed=0):
    return queries


async def handler(queries):
    time.sleep(0.01)  # stalls every other coroutine
    results = run_walks(queries, seed=1)  # sync engine on the loop
    with open("/tmp/results.txt", "w") as out:  # sync file I/O
        out.write(str(results))
    return results
