"""RW103 flagging fixture: a shared segment with no guaranteed unlink."""
import numpy as np
from multiprocessing import shared_memory


def broadcast(array: np.ndarray):
    shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array  # a cast failure here leaks the segment forever
    return shm
