"""RW102 clean fixture: spawn-key derivation only."""
import numpy as np


def make_queries(count, seed=0):
    return list(range(count))


def run(seed):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 1)))
    child = np.random.SeedSequence((seed, 0x7A3D))
    queries = make_queries(16, seed=seed)
    return rng, child, queries
