"""RW107 suppressed fixture: a deliberate wall-clock delta, with reason."""
import time


def seconds_since_epoch_boundary(epoch_boundary: float) -> float:
    # repro: allow[RW107] comparing against an externally recorded wall-clock date, not measuring a duration
    return time.time() - epoch_boundary


def do_work():
    return 0.0
