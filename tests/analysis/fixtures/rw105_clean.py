"""RW105 clean fixture: sets reduced or sorted before ordering matters."""
import numpy as np


def unique_vertices(edges):
    return sorted({source for source, _ in edges})


def format_names(names):
    pool = set(names) - {"skip"}
    return ", ".join(sorted(pool))


def count_unique(frontier):
    # Unordered reductions over sets are fine.
    unique = set(frontier)
    return len(unique), min(unique, default=0)


def visit_all(frontier):
    return np.array(sorted(set(frontier)))
