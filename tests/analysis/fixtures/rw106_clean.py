"""RW106 clean fixture: kernels compile once, cache on disk."""
import functools

import numba
from numba import njit


@njit(cache=True)
def cached_kernel(x):
    return x + 1


@numba.njit(cache=True, fastmath=False)
def cached_dotted_kernel(x):
    return x * 2


@functools.lru_cache(maxsize=None)
def not_a_numba_kernel(x):
    return x - 1
