"""RW102 flagging fixture: ad-hoc child-seed derivation."""
import numpy as np


def make_queries(count, seed=0):
    return list(range(count))


def run(seed):
    rng = np.random.default_rng(seed + 1)  # offset collides across sites
    salted = np.random.SeedSequence(seed ^ 0x7A3D)  # xor-mix, same problem
    queries = make_queries(16, seed=seed * 31)
    return rng, salted, queries
