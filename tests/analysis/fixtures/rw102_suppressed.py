"""RW102 suppressed fixture: a frozen historical stream, with reason."""
import numpy as np


def golden_weights(num_edges, seed):
    # repro: allow[RW102] frozen stream: golden files pin the historical xor derivation
    rng = np.random.default_rng(seed ^ 0x5EED)
    return rng.uniform(1.0, 64.0, size=num_edges)
