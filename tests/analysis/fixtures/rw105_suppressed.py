"""RW105 suppressed fixture: order provably irrelevant, with reason."""


def drain(pending):
    closed = []
    # repro: allow[RW105] drain order irrelevant: close() is idempotent and commutative
    for handle in set(pending):
        handle.close()
        closed.append(handle)
    return closed
