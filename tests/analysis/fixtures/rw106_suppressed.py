"""RW106 suppressed fixture: deliberate no-cache compile, with reason."""
from numba import njit


# repro: allow[RW106] closure captures a per-run constant; the cache would never hit
@njit(cache=False)
def per_run_specialized_kernel(x):
    return x + 1
