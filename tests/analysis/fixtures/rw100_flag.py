"""RW100 flagging fixture: every way a waiver can rot.

A reason-less allow (suppresses nothing, reported), an allow naming an
unknown rule, and a stale allow with no finding left to suppress.
"""
import numpy as np


def scramble(vertices):
    # repro: allow[RW101]
    np.random.shuffle(vertices)
    return vertices


def stale(vertices, seed):
    # repro: allow[RW101] historical waiver; the global-RNG call below was removed
    rng = np.random.default_rng(seed)
    rng.shuffle(vertices)
    return vertices


def unknown(count):
    # repro: allow[RW999] no such rule
    return list(range(count))
