"""RW101 flagging fixture: draws from process-global RNG state."""
import random

import numpy as np
from random import shuffle


def scramble(vertices):
    np.random.shuffle(vertices)  # hidden global state
    return vertices


def pick_start(candidates):
    order = list(candidates)
    shuffle(order)  # stdlib global RNG via from-import
    return random.choice(order)  # stdlib global RNG via module call


def reseed():
    np.random.seed(0)  # global reseed poisons every later caller
