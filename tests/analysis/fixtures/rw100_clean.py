"""RW100 clean fixture: one well-formed, used, reasoned waiver."""
import numpy as np


def legacy_shuffle(vertices):
    # repro: allow[RW101] replaying a recorded third-party trace that used the global RNG
    np.random.shuffle(vertices)
    return vertices
