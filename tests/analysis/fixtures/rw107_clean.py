"""RW107 clean fixture: monotonic clocks for durations, time.time() for
timestamps of record only."""
import time


def monotonic_duration():
    started = time.perf_counter()
    do_work()
    return time.perf_counter() - started


def monotonic_clock_duration():
    started = time.monotonic()
    do_work()
    return time.monotonic() - started


def wall_clock_timestamp_of_record():
    # Reading the wall clock is fine — only *differencing* it is not.
    return {"recorded_at": time.time(), "value": do_work()}


def do_work():
    return 0.0
