"""RW106 flagging fixture: njit kernels that recompile per process."""
import numba
from numba import njit


@njit
def bare_decorator_kernel(x):
    return x + 1


@njit(fastmath=False)
def call_without_cache_kernel(x):
    return x * 2


@numba.njit(cache=False)
def explicitly_uncached_kernel(x):
    return x - 1
