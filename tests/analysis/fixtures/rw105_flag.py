"""RW105 flagging fixture: set iteration order leaking into outputs."""
import numpy as np


def unique_vertices(edges):
    return list({source for source, _ in edges})  # hash order into a list


def format_names(names):
    pool = set(names) - {"skip"}
    return ", ".join(pool)  # hash order into a string


def visit_all(frontier):
    order = []
    for vertex in set(frontier):  # hash order drives the walk order
        order.append(vertex)
    return np.array(order)
