"""RW103 suppressed fixture: ownership handed to a caller, with reason."""
from multiprocessing import shared_memory


def create_for_harness(size: int):
    # repro: allow[RW103] test harness owns cleanup; its teardown unlinks every segment
    return shared_memory.SharedMemory(create=True, size=size)
