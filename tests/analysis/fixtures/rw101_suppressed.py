"""RW101 suppressed fixture: a justified global-RNG waiver."""
import numpy as np


def legacy_compat_shuffle(vertices):
    # repro: allow[RW101] oracle replays a third-party trace recorded against the global RNG
    np.random.shuffle(vertices)
    return vertices
