"""Fixture-based proof for every shipped lint rule.

For each RW rule there are three fixtures under ``fixtures/``:

* ``rw###_flag.py`` — realistic violations the rule must catch;
* ``rw###_clean.py`` — the sanctioned pattern, which must stay silent;
* ``rw###_suppressed.py`` — the violation under a reasoned
  ``# repro: allow[...]`` waiver, which must suppress (not delete) it.

This is the acceptance-criteria matrix: a rule regression — missed
pattern, false positive on the blessed idiom, broken suppression — is a
red cell here before it is a broken CI gate.
"""

from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = ("RW100", "RW101", "RW102", "RW103", "RW104", "RW105", "RW106",
            "RW107")

#: Minimum *active* findings each flagging fixture must produce for its
#: own rule (the fixtures document each pattern they embed).
EXPECTED_FLAG_COUNTS = {
    "RW100": 3,  # reason-less, unknown-rule, and unused allows
    "RW101": 4,  # np.random.shuffle/seed, random.choice, from-import shuffle
    "RW102": 3,  # seed + 1, seed ^ salt, seed * 31
    "RW103": 1,
    "RW104": 3,  # time.sleep, sync engine call, open()
    "RW105": 3,  # list(setcomp), join(set var), for-over-set
    "RW106": 3,  # bare @njit, call without cache=, explicit cache=False
    "RW107": 3,  # inline time()-start, finish-start tracked names, bare time()
}


def lint_fixture(name: str):
    path = FIXTURES / name
    assert path.is_file(), f"missing fixture {name}"
    return lint_paths([path])


def test_registry_covers_the_documented_rule_table():
    assert tuple(rule.id for rule in all_rules()) == RULE_IDS
    for rule in all_rules():
        assert rule.name, rule.id
        assert len(rule.description) > 40, f"{rule.id} needs a real description"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_flagging_fixture_is_caught(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_flag.py")
    hits = [f for f in report.active if f.rule_id == rule_id]
    assert len(hits) >= EXPECTED_FLAG_COUNTS[rule_id], report.findings
    assert report.exit_code == 1
    for finding in hits:
        assert finding.line > 0 and finding.message and finding.snippet


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_stays_silent(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_clean.py")
    assert not report.active, [f.message for f in report.active]
    assert not [f for f in report.findings if f.rule_id == rule_id]
    assert report.exit_code == 0
    if rule_id != "RW100":
        # Only the hygiene fixture legitimately carries (suppressed)
        # findings of *other* rules — a healthy waiver needs something
        # to waive.  Every other clean fixture is findings-free.
        assert not report.findings, [f.message for f in report.findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_suppressed_fixture_waives_with_reason(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_suppressed.py")
    assert not report.active, [f.message for f in report.active]
    assert report.exit_code == 0
    waived = [f for f in report.suppressed if f.rule_id == rule_id]
    assert waived, report.findings
    for finding in waived:
        assert finding.suppression_reason.strip()


def test_flag_fixtures_do_not_bleed_into_other_rules():
    """Each flagging fixture trips only the rule it documents (so a rule
    change cannot silently re-route coverage through a sibling).  RW100
    is exempt: suppression hygiene is only observable alongside the
    rule whose waiver rotted, so its fixture necessarily trips RW101
    too (the reason-less allow suppresses nothing by design).
    """
    for rule_id in RULE_IDS:
        if rule_id == "RW100":
            continue
        report = lint_fixture(f"{rule_id.lower()}_flag.py")
        others = {f.rule_id for f in report.active} - {rule_id}
        assert not others, f"{rule_id} fixture also trips {others}"


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    report = lint_paths([bad])
    assert [f.rule_id for f in report.active] == ["RW000"]
    assert report.exit_code == 1
