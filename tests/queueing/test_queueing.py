"""Unit tests for the queueing-theory package (Section VI)."""

import pytest

from repro.errors import SchedulerError
from repro.queueing import (
    BulkServiceQueue,
    depth_sweep,
    feedback_delay_cycles,
    is_zero_bubble_depth,
    minimum_depth_per_pipeline,
    minimum_total_depth,
    simulate_delayed_feedback,
    zero_bubble_condition,
)


class TestBulkServiceQueue:
    def test_offered_load(self):
        q = BulkServiceQueue(arrival_rate=8.0, service_rate=1.0, batch_size=16)
        assert q.offered_load == pytest.approx(0.5)
        assert q.is_stable()

    def test_instability(self):
        q = BulkServiceQueue(arrival_rate=20.0, service_rate=1.0, batch_size=16)
        assert not q.is_stable()
        assert q.throughput() == pytest.approx(16.0)

    def test_stable_throughput_is_arrival_rate(self):
        q = BulkServiceQueue(arrival_rate=5.0, service_rate=1.0, batch_size=16)
        assert q.throughput() == pytest.approx(5.0)

    def test_idle_pipelines(self):
        q = BulkServiceQueue(arrival_rate=4.0, service_rate=1.0, batch_size=16)
        assert q.idle_pipelines() == pytest.approx(12.0)
        saturated = BulkServiceQueue(arrival_rate=32.0, service_rate=1.0, batch_size=16)
        assert saturated.idle_pipelines() == pytest.approx(0.0)

    def test_utilization_capped(self):
        q = BulkServiceQueue(arrival_rate=100.0, service_rate=1.0, batch_size=16)
        assert q.utilization() == 1.0

    def test_validation(self):
        with pytest.raises(SchedulerError):
            BulkServiceQueue(arrival_rate=0, service_rate=1, batch_size=4)
        with pytest.raises(SchedulerError):
            BulkServiceQueue(arrival_rate=1, service_rate=0, batch_size=4)
        with pytest.raises(SchedulerError):
            BulkServiceQueue(arrival_rate=1, service_rate=1, batch_size=0)

    def test_zero_bubble_condition(self):
        assert zero_bubble_condition(8.0, 1.0, 16, backlog=16)
        assert not zero_bubble_condition(8.0, 1.0, 16, backlog=15)


class TestTheoremFormulas:
    def test_feedback_delay(self):
        # 4*log2(N) per Section VI-D.
        assert feedback_delay_cycles(16) == 16
        assert feedback_delay_cycles(4) == 8
        assert feedback_delay_cycles(1) == 2

    def test_minimum_total_depth(self):
        # D = N + mu*C*N.
        assert minimum_total_depth(16) == 16 + 16 * 16
        assert minimum_total_depth(4, mu=2.0) == 4 + 2 * 8 * 4

    def test_per_pipeline_depth(self):
        assert minimum_depth_per_pipeline(16) == 17
        assert minimum_depth_per_pipeline(4) == 9

    def test_is_zero_bubble_depth(self):
        assert is_zero_bubble_depth(17, 16)
        assert not is_zero_bubble_depth(16, 16)

    def test_validation(self):
        with pytest.raises(SchedulerError):
            minimum_total_depth(0)
        with pytest.raises(SchedulerError):
            minimum_total_depth(4, mu=0)


class TestDelayedFeedbackSimulation:
    def test_no_delay_no_bubbles(self):
        result = simulate_delayed_feedback(
            num_servers=8, fifo_depth=8, feedback_delay=0, cycles=3000, seed=1
        )
        assert result.bubble_ratio < 0.02

    def test_theorem_depth_beats_shallow(self):
        shallow = simulate_delayed_feedback(
            num_servers=16, fifo_depth=1, feedback_delay=16, cycles=5000, seed=2
        )
        deep = simulate_delayed_feedback(
            num_servers=16,
            fifo_depth=minimum_depth_per_pipeline(16),
            feedback_delay=16,
            cycles=5000,
            seed=2,
        )
        assert deep.bubble_ratio < shallow.bubble_ratio / 3

    def test_served_counts_work(self):
        result = simulate_delayed_feedback(
            num_servers=4, fifo_depth=8, feedback_delay=4, cycles=2000, seed=3
        )
        assert result.served > 0
        assert result.server_cycles > 0

    def test_depth_sweep_monotone_trend(self):
        sweep = depth_sweep(
            num_servers=16, feedback_delay=16, depths=[1, 17, 34], cycles=5000, seed=4
        )
        assert sweep[17] < sweep[1]
        assert sweep[34] <= sweep[17] * 1.5  # no regression when deeper

    def test_validation(self):
        with pytest.raises(SchedulerError):
            simulate_delayed_feedback(0, 1, 1)
        with pytest.raises(SchedulerError):
            simulate_delayed_feedback(1, 0, 1)
        with pytest.raises(SchedulerError):
            simulate_delayed_feedback(1, 1, -1)
        with pytest.raises(SchedulerError):
            simulate_delayed_feedback(1, 1, 1, mu=8.0, burst=2)
