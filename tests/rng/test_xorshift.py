"""Unit tests for the bit-exact generators."""

import numpy as np

from repro.rng import SplitMix64, XorShift128, splitmix64_next


class TestSplitMix64:
    def test_known_vector(self):
        # Reference values for seed 0 (widely published splitmix64 output).
        _, first = splitmix64_next(0)
        assert first == 0xE220A8397B1DCDAF

    def test_deterministic(self):
        a = SplitMix64(123)
        b = SplitMix64(123)
        assert [a.next_u64() for _ in range(5)] == [b.next_u64() for _ in range(5)]

    def test_spawn_seeds_distinct(self):
        seeds = SplitMix64(7).spawn_seeds(64)
        assert len(set(seeds)) == 64

    def test_outputs_fit_64_bits(self):
        gen = SplitMix64(999)
        assert all(0 <= gen.next_u64() < 2**64 for _ in range(100))


class TestXorShift128:
    def test_deterministic_from_seed(self):
        a = XorShift128.from_seed(42)
        b = XorShift128.from_seed(42)
        assert [a.next_u32() for _ in range(8)] == [b.next_u32() for _ in range(8)]

    def test_different_seeds_diverge(self):
        a = XorShift128.from_seed(1)
        b = XorShift128.from_seed(2)
        assert [a.next_u32() for _ in range(4)] != [b.next_u32() for _ in range(4)]

    def test_never_all_zero_state(self):
        gen = XorShift128.from_seed(0)
        assert any((gen.x, gen.y, gen.z, gen.w))

    def test_uniform_in_unit_interval(self):
        gen = XorShift128.from_seed(3)
        draws = [gen.uniform() for _ in range(2000)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_uniform_mean_near_half(self):
        gen = XorShift128.from_seed(4)
        draws = np.array([gen.uniform() for _ in range(20_000)])
        assert abs(draws.mean() - 0.5) < 0.01
        assert abs(draws.var() - 1 / 12) < 0.005

    def test_u32_outputs_fit_32_bits(self):
        gen = XorShift128.from_seed(5)
        assert all(0 <= gen.next_u32() < 2**32 for _ in range(100))

    def test_equidistribution_of_bytes(self):
        gen = XorShift128.from_seed(6)
        counts = np.zeros(256)
        for _ in range(8000):
            counts[gen.next_u32() & 0xFF] += 1
        # chi-square against uniform: 255 dof, mean 255, sd ~22.6
        expected = 8000 / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 255 + 6 * 22.6
