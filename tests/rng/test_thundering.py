"""Unit tests for the ThundeRiNG-style multi-stream RNG."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.rng import ThunderRing, stream_correlation


class TestConstruction:
    def test_requires_positive_streams(self):
        with pytest.raises(SamplingError):
            ThunderRing(num_streams=0)

    def test_num_streams(self):
        assert ThunderRing(num_streams=16).num_streams == 16


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = ThunderRing(4, seed=11)
        b = ThunderRing(4, seed=11)
        assert [a.next_u64(0) for _ in range(8)] == [b.next_u64(0) for _ in range(8)]

    def test_different_seed_diverges(self):
        a = ThunderRing(4, seed=11)
        b = ThunderRing(4, seed=12)
        assert [a.next_u64(0) for _ in range(4)] != [b.next_u64(0) for _ in range(4)]

    def test_streams_differ(self):
        ring = ThunderRing(4, seed=3)
        s0 = [ring.uniform(0) for _ in range(16)]
        ring2 = ThunderRing(4, seed=3)
        s1 = [ring2.uniform(1) for _ in range(16)]
        assert s0 != s1


class TestStatistics:
    def test_uniform_range(self):
        ring = ThunderRing(2, seed=1)
        assert all(0.0 <= ring.uniform(0) < 1.0 for _ in range(1000))

    def test_uniform_moments(self):
        ring = ThunderRing(1, seed=2)
        draws = np.array([ring.uniform(0) for _ in range(20_000)])
        assert abs(draws.mean() - 0.5) < 0.01
        assert abs(draws.var() - 1 / 12) < 0.005

    def test_streams_decorrelated(self):
        ring = ThunderRing(8, seed=5)
        r = stream_correlation(ring, 0, 7, samples=4096)
        # |r| should be within ~5 sigma of zero (sigma ~ 1/sqrt(n))
        assert abs(r) < 5 / np.sqrt(4096)

    def test_adjacent_streams_decorrelated(self):
        ring = ThunderRing(8, seed=6)
        r = stream_correlation(ring, 3, 4, samples=4096)
        assert abs(r) < 5 / np.sqrt(4096)


class TestRandint:
    def test_bounds(self):
        ring = ThunderRing(1, seed=7)
        draws = [ring.randint(0, 10) for _ in range(2000)]
        assert min(draws) >= 0 and max(draws) < 10

    def test_uniformity_chi_square(self):
        ring = ThunderRing(1, seed=8)
        counts = np.zeros(7)
        n = 14_000
        for _ in range(n):
            counts[ring.randint(0, 7)] += 1
        expected = n / 7
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 6 + 6 * np.sqrt(12)  # 6 dof, generous bound

    def test_bound_one_always_zero(self):
        ring = ThunderRing(1, seed=9)
        assert all(ring.randint(0, 1) == 0 for _ in range(20))

    def test_rejects_nonpositive_bound(self):
        ring = ThunderRing(1, seed=10)
        with pytest.raises(SamplingError):
            ring.randint(0, 0)

    def test_rejects_bad_stream(self):
        ring = ThunderRing(2, seed=11)
        with pytest.raises(SamplingError, match="stream"):
            ring.next_u64(2)
