"""Property-based tests (hypothesis) for simulator invariants.

The load-bearing properties: FIFOs and interconnects conserve items
under arbitrary push/pop interleavings, the memory channel conserves
requests, and the RNG streams stay within contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dispatcher, Merger
from repro.memory import MemoryChannel, MemoryRequest, MemorySpec
from repro.rng import ThunderRing
from repro.sim import SimulationKernel, StreamFifo

actions = st.lists(st.sampled_from(["push", "pop", "commit"]), min_size=1, max_size=200)


class TestFifoConservation:
    @given(plan=actions)
    @settings(max_examples=80, deadline=None)
    def test_no_item_lost_or_duplicated(self, plan):
        fifo = StreamFifo(8)
        pushed, popped = [], []
        counter = 0
        for action in plan:
            if action == "push" and not fifo.is_full():
                fifo.push(counter)
                pushed.append(counter)
                counter += 1
            elif action == "pop" and not fifo.is_empty():
                popped.append(fifo.pop())
            elif action == "commit":
                fifo.commit()
        fifo.commit()
        remaining = []
        while not fifo.is_empty():
            remaining.append(fifo.pop())
        fifo.commit()
        assert popped + remaining == pushed  # order preserved, nothing lost

    @given(plan=actions)
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, plan):
        fifo = StreamFifo(5)
        counter = 0
        for action in plan:
            if action == "push" and not fifo.is_full():
                fifo.push(counter)
                counter += 1
            elif action == "pop" and not fifo.is_empty():
                fifo.pop()
            else:
                fifo.commit()
            assert fifo.in_flight() <= 5


class TestInterconnectConservation:
    @given(
        items=st.integers(1, 40),
        drain_pattern=st.integers(0, 7),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_dispatcher_merger_chain_conserves_items(self, items, drain_pattern, seed):
        kernel = SimulationKernel()
        src = kernel.make_fifo(64, "src")
        mid0 = kernel.make_fifo(4, "mid0")
        mid1 = kernel.make_fifo(4, "mid1")
        out = kernel.make_fifo(64, "out")
        kernel.add_module(Dispatcher("d", src, mid0, mid1))
        kernel.add_module(Merger("m", mid0, mid1, out))
        for i in range(items):
            if not src.is_full():
                src.push(i)
        received = []
        pending = items - min(items, 64)
        counter = min(items, 64)
        for cycle in range(600):
            # irregular draining of the output
            if (cycle % 8) > drain_pattern and not out.is_empty():
                received.append(out.pop())
            if counter < items and not src.is_full():
                src.push(counter)
                counter += 1
            kernel.step()
        while not out.is_empty():
            received.append(out.pop())
        assert sorted(received) == list(range(items))


class TestChannelConservation:
    @given(
        num_requests=st.integers(1, 60),
        rate=st.floats(0.1, 1.0),
        latency=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_request_completes_exactly_once(self, num_requests, rate, latency):
        spec = MemorySpec(
            "prop",
            num_channels=1,
            random_tx_rate_mhz=rate * 320.0,
            sequential_gbs=10.0,
            round_trip_cycles=latency,
            max_outstanding=8,
        )
        channel = MemoryChannel(spec, core_mhz=320.0, queue_capacity=num_requests)
        for i in range(num_requests):
            channel.submit(MemoryRequest(tag=i))
        received = []
        for _ in range(int(num_requests / min(rate, 1.0)) + latency + 200):
            channel.tick()
            while channel.has_response():
                received.append(channel.pop_response().tag)
        assert sorted(received) == list(range(num_requests))
        assert channel.drain_complete()


class TestRngContracts:
    @given(seed=st.integers(0, 2**32), streams=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_uniforms_in_unit_interval(self, seed, streams):
        ring = ThunderRing(streams, seed=seed)
        for s in range(streams):
            for _ in range(20):
                assert 0.0 <= ring.uniform(s) < 1.0

    @given(seed=st.integers(0, 2**32), bound=st.integers(1, 1000))
    @settings(max_examples=40, deadline=None)
    def test_randint_in_bounds(self, seed, bound):
        ring = ThunderRing(1, seed=seed)
        for _ in range(30):
            assert 0 <= ring.randint(0, bound) < bound
