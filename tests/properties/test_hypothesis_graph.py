"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    build_alias_slots,
    from_edges,
    powerlaw,
    rmat,
)
from repro.graph.alias import build_alias_table

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=0,
    max_size=120,
)


class TestCSRInvariants:
    @given(edges=edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_edges_round_trip(self, edges):
        g = from_edges(edges, num_vertices=31)
        assert sorted(g.edges()) == sorted((int(a), int(b)) for a, b in edges)

    @given(edges=edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_degrees_sum_to_edge_count(self, edges):
        g = from_edges(edges, num_vertices=31)
        assert int(g.degrees().sum()) == g.num_edges

    @given(edges=edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_neighbor_lists_sorted(self, edges):
        g = from_edges(edges, num_vertices=31)
        for v in range(g.num_vertices):
            neighbors = g.neighbors(v)
            assert np.all(neighbors[:-1] <= neighbors[1:])

    @given(edges=edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_reverse_preserves_edge_multiset(self, edges):
        g = from_edges(edges, num_vertices=31)
        reversed_edges = sorted((b, a) for a, b in g.edges())
        assert sorted(g.reverse().edges()) == reversed_edges

    @given(edges=edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_undirected_build_is_symmetric(self, edges):
        g = from_edges(edges, num_vertices=31, directed=False, dedupe=True)
        edge_set = set(g.edges())
        assert all((b, a) in edge_set for a, b in edge_set)


class TestAliasInvariants:
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_alias_table_realizes_exact_distribution(self, weights):
        weights = np.asarray(weights)
        prob, alias = build_alias_slots(weights)
        n = weights.size
        realized = np.zeros(n)
        for i in range(n):
            realized[i] += prob[i] / n
            realized[alias[i]] += (1.0 - prob[i]) / n
        assert np.allclose(realized, weights / weights.sum(), atol=1e-9)

    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_probs_in_unit_interval_and_aliases_in_range(self, weights):
        prob, alias = build_alias_slots(np.asarray(weights))
        assert np.all((prob >= 0.0) & (prob <= 1.0 + 1e-12))
        assert np.all((alias >= 0) & (alias < len(weights)))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_flat_table_covers_every_edge(self, seed):
        g = powerlaw(num_vertices=60, num_edges=240, seed=seed)
        g = g.with_weights(np.random.default_rng(seed).uniform(0.5, 2.0, g.num_edges))
        table = build_alias_table(g)
        assert table.num_slots == g.num_edges


class TestGeneratorInvariants:
    @given(seed=st.integers(0, 10_000), scale=st.integers(3, 8))
    @settings(max_examples=25, deadline=None)
    def test_rmat_vertex_ids_in_range(self, seed, scale):
        g = rmat(scale=scale, edge_factor=4, seed=seed)
        assert g.num_vertices == 2**scale
        if g.num_edges:
            assert int(g.col.max()) < g.num_vertices

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_powerlaw_no_self_loops_and_target_edges(self, seed):
        g = powerlaw(num_vertices=100, num_edges=400, seed=seed)
        assert g.num_edges == 400
        assert all(a != b for a, b in g.edges())

    @given(seed=st.integers(0, 10_000), fraction=st.floats(0.05, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_powerlaw_dangling_fraction(self, seed, fraction):
        g = powerlaw(
            num_vertices=200, num_edges=800, dangling_fraction=fraction, seed=seed
        )
        assert g.dangling_fraction() >= fraction - 0.02
