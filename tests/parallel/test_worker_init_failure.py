"""Regression: a worker whose initializer crashes must report, not hang.

``multiprocessing.Pool`` respawns any worker whose initializer raises —
before the fix, a corrupt handle or unloadable kernel state put the pool
in a crash-and-respawn loop with the parent blocked on its first result
forever, each dead worker leaking its half-attached segment.  The
initializer now stashes the error and the first task dispatched to the
worker re-raises it into the parent's result path; a failed worker still
holds its swap-barrier party so graph-swap broadcasts surface the error
instead of deadlocking the healthy workers.
"""

import os
import signal

import pytest

from repro.graph import load_dataset
from repro.parallel import ParallelWalkEngine
from repro.walks import URWSpec, make_queries


def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs hosts
        return set()


@pytest.fixture
def hang_guard():
    """Fail loudly if a regression turns these tests back into hangs."""
    signal.alarm(120)
    yield
    signal.alarm(0)


@pytest.fixture
def broken_worker_init(monkeypatch):
    """Make every forked worker's initializer fail (inherited via fork)."""
    import repro.parallel.worker as worker_mod

    def explode(store):
        raise RuntimeError("injected init failure")

    monkeypatch.setattr(worker_mod, "graph_from_store", explode)


class TestCrashedWorkerInit:
    def test_run_raises_promptly(self, hang_guard, broken_worker_init):
        graph = load_dataset("WG", scale=0.05, seed=1)
        before = _shm_segments()
        with ParallelWalkEngine(graph, URWSpec(max_length=5), workers=2) as engine:
            with pytest.raises(RuntimeError, match="injected init failure"):
                engine.run(make_queries(graph, 16, seed=2), seed=3)
        # The parent's own segment is unlinked by close(); the failed
        # workers' attaches were closed in the initializer's error path.
        assert _shm_segments() <= before

    def test_swap_broadcast_surfaces_error_not_deadlock(
        self, hang_guard, broken_worker_init
    ):
        # Every worker shows up for the swap barrier even when its init
        # failed — a missing party would hang this call forever.
        graph = load_dataset("WG", scale=0.05, seed=1)
        before = _shm_segments()
        with ParallelWalkEngine(graph, URWSpec(max_length=5), workers=2) as engine:
            with pytest.raises(RuntimeError, match="injected init failure"):
                engine.swap_graph(graph)
        assert _shm_segments() <= before
