"""Shared-memory graph store: round trips, read-only views, cleanup."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import cycle_graph, from_edges, load_dataset
from repro.graph.datasets import assign_metapath_schema
from repro.parallel.shared_graph import (
    KERNEL_PREFIX,
    SharedArrayStore,
    graph_arrays,
    graph_from_store,
    kernel_state_from_store,
)
from repro.sampling.vectorized import make_kernel
from repro.walks import DeepWalkSpec, Node2VecSpec


class TestSharedArrayStore:
    def test_round_trip(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 7),
            "c": np.array([[1, 2], [3, 4]], dtype=np.int16),
        }
        with SharedArrayStore.create(arrays) as store:
            out = store.arrays()
            for name, array in arrays.items():
                assert np.array_equal(out[name], array)
                assert out[name].dtype == array.dtype

    def test_attach_sees_same_data_zero_copy(self):
        arrays = {"x": np.arange(64, dtype=np.int64)}
        with SharedArrayStore.create(arrays) as store:
            attached = SharedArrayStore.attach(store.handle)
            view = attached.arrays()["x"]
            assert np.array_equal(view, arrays["x"])
            # a view of the segment, not a pickled copy
            assert view.base is not None
            del view
            attached.close()

    def test_views_are_read_only(self):
        with SharedArrayStore.create({"x": np.arange(4)}) as store:
            view = store.arrays()["x"]
            with pytest.raises(ValueError):
                view[0] = 99

    def test_closed_store_refuses_access(self):
        store = SharedArrayStore.create({"x": np.arange(4)})
        store.close()
        with pytest.raises(GraphError, match="closed"):
            store.arrays()

    def test_owner_unlinks_segment(self):
        store = SharedArrayStore.create({"x": np.arange(4)})
        handle = store.handle
        store.close()
        with pytest.raises(FileNotFoundError):
            SharedArrayStore.attach(handle)


class TestSharedGraph:
    def test_plain_graph_round_trip(self):
        graph = cycle_graph(12)
        with SharedArrayStore.create(graph_arrays(graph), graph_name=graph.name) as store:
            rebuilt = graph_from_store(store)
            assert rebuilt.name == graph.name
            assert np.array_equal(rebuilt.row_ptr, graph.row_ptr)
            assert np.array_equal(rebuilt.col, graph.col)
            assert rebuilt.weights is None and rebuilt.edge_types is None

    def test_weighted_typed_graph_round_trip(self):
        graph = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        graph = assign_metapath_schema(graph, num_types=3, seed=2)
        with SharedArrayStore.create(graph_arrays(graph), graph_name=graph.name) as store:
            rebuilt = graph_from_store(store)
            assert np.array_equal(rebuilt.weights, graph.weights)
            assert np.array_equal(rebuilt.edge_types, graph.edge_types)
            assert np.array_equal(rebuilt.vertex_types, graph.vertex_types)

    def test_rebuilt_graph_shares_segment_memory(self):
        graph = cycle_graph(50)
        with SharedArrayStore.create(graph_arrays(graph)) as store:
            rebuilt = graph_from_store(store)
            # CSRGraph must keep the zero-copy views, not copy them.
            assert rebuilt.col.base is not None


class TestKernelStateBroadcast:
    def test_alias_state_round_trip(self):
        graph = cycle_graph(8).with_weights(np.arange(1.0, 9.0))
        kernel = make_kernel(DeepWalkSpec(max_length=4).make_sampler())
        kernel.prepare(graph)
        arrays = {KERNEL_PREFIX + k: v for k, v in kernel.state_arrays().items()}
        with SharedArrayStore.create(arrays) as store:
            state = kernel_state_from_store(store)
            fresh = make_kernel(DeepWalkSpec(max_length=4).make_sampler())
            fresh.load_state(state)
            assert np.array_equal(state["alias_prob"], kernel.state_arrays()["alias_prob"])
            assert np.array_equal(state["alias_index"], kernel.state_arrays()["alias_index"])

    def test_rejection_state_round_trip(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (1, 0)], num_vertices=3)
        kernel = make_kernel(Node2VecSpec(max_length=4).make_sampler())
        kernel.prepare(graph)
        arrays = {KERNEL_PREFIX + k: v for k, v in kernel.state_arrays().items()}
        with SharedArrayStore.create(arrays) as store:
            state = kernel_state_from_store(store)
            assert np.array_equal(state["edge_keys"], kernel.state_arrays()["edge_keys"])

    def test_uniform_kernel_has_no_state(self):
        from repro.walks import URWSpec
        kernel = make_kernel(URWSpec(max_length=4).make_sampler())
        kernel.prepare(cycle_graph(4))
        assert kernel.state_arrays() == {}
