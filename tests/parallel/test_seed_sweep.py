"""Seed-sweep property tests: planner/merge invariants under adversity.

The parallel engine's contract is that sharding is *invisible*: for any
shard plan — including degenerate ones — results are bit-identical to
the single-core batch engine.  These sweeps hammer that with >= 20 seeds
of randomized workloads shaped to stress the planner and the streaming
merge: more shards than queries (empty shards), workers > queries, a
single heavy query drowning a sea of dangling starts, and shuffled query
order.  Each graph's engine is built once (module scope) so the sweep
exercises many plans, not many pool start-ups.
"""

import numpy as np
import pytest

from repro.graph.builders import from_edges
from repro.graph.generators import powerlaw
from repro.parallel import ParallelWalkEngine
from repro.parallel.planner import QueryCostModel, plan_shards
from repro.walks import DeepWalkSpec, Query, URWSpec, run_walks_batch

#: >= 20-seed property sweeps over live worker pools: full CI lane only.
pytestmark = pytest.mark.slow

SWEEP_SEEDS = list(range(20))


def _adversarial_graph():
    """Heavy-tailed graph with a guaranteed hub and many dangling sinks.

    ``powerlaw`` alone gives every vertex out-edges, so the sink tail is
    added explicitly: vertices 80..91 exist only as targets — queries
    starting there make zero hops, the shape that starves naive
    count-balanced shard plans.
    """
    base = powerlaw(num_vertices=80, num_edges=260, seed=7, name="sweep")
    edges = [(int(a), int(b)) for a, b in base.edges()]
    edges += [(v % 80, 80 + (v % 12)) for v in range(12)]
    return from_edges(np.asarray(edges, dtype=np.int64), num_vertices=92,
                      directed=True, name="sweep")


@pytest.fixture(scope="module")
def urw_engine():
    # 4 workers x 4 shards/worker = 16 shards against tiny query counts:
    # most plans in the sweep contain empty shards by construction.
    with ParallelWalkEngine(_adversarial_graph(), URWSpec(max_length=15),
                           workers=4) as engine:
        yield engine


@pytest.fixture(scope="module")
def weighted_engine():
    graph = powerlaw(num_vertices=60, num_edges=240, seed=8, name="sweep-w")
    graph = graph.with_weights(
        np.random.default_rng(9).uniform(0.5, 2.0, graph.num_edges)
    )
    with ParallelWalkEngine(graph, DeepWalkSpec(max_length=15),
                           workers=4) as engine:
        yield engine


def _random_queries(graph, seed):
    """1..24 queries over *all* vertices — dangling starts included —
    with ids shuffled so batch position != query id."""
    rng = np.random.default_rng(seed)
    count = int(rng.integers(1, 25))
    starts = rng.choice(graph.num_vertices, size=count, replace=True)
    ids = rng.permutation(count * 3)[:count]  # sparse, shuffled ids
    return [Query(int(i), int(v)) for i, v in zip(ids, starts)]


def _assert_matches_batch(engine, graph, spec, queries, seed):
    expected = run_walks_batch(graph, spec, queries, seed=seed)
    actual = engine.run(queries, seed=seed)
    assert actual.num_queries == expected.num_queries
    for position in range(expected.num_queries):
        assert np.array_equal(actual.path_of(position),
                              expected.path_of(position)), (
            f"seed={seed}: path at position {position} diverged"
        )
    assert actual.total_steps == expected.total_steps


class TestShardMergeBitIdentity:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_random_workloads_unweighted(self, urw_engine, seed):
        graph = _adversarial_graph()
        queries = _random_queries(graph, seed)
        _assert_matches_batch(urw_engine, graph, URWSpec(max_length=15),
                              queries, seed)

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_random_workloads_weighted(self, weighted_engine, seed):
        graph = weighted_engine._graph
        queries = _random_queries(graph, seed + 1000)
        _assert_matches_batch(weighted_engine, graph,
                              DeepWalkSpec(max_length=15), queries, seed)

    def test_workers_exceed_queries(self, urw_engine):
        """4 workers x 4 shards against a single query: 15 empty shards."""
        graph = _adversarial_graph()
        hub = int(np.argmax(graph.degrees()))
        queries = [Query(0, hub)]
        _assert_matches_batch(urw_engine, graph, URWSpec(max_length=15),
                              queries, seed=42)

    def test_single_heavy_query_among_dangling(self, urw_engine):
        """One full-length walk plus dangling starts: maximal cost skew,
        so the planner isolates the heavy query — and must not matter."""
        graph = _adversarial_graph()
        degrees = graph.degrees()
        hub = int(np.argmax(degrees))
        dangling = np.nonzero(degrees == 0)[0]
        assert dangling.size > 0, "sweep graph must contain dangling vertices"
        starts = [hub] + [int(v) for v in dangling[:12]]
        queries = [Query(i, v) for i, v in enumerate(starts)]
        _assert_matches_batch(urw_engine, graph, URWSpec(max_length=15),
                              queries, seed=43)


class TestPlannerInvariants:
    """plan_shards must always emit a permutation partition, whatever the
    cost vector looks like."""

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_partition_property(self, seed):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(0, 40))
        costs = rng.exponential(2.0, size=count)
        num_shards = int(rng.integers(1, 18))
        shards = plan_shards(costs, num_shards)
        assert len(shards) == num_shards
        everything = np.concatenate([s for s in shards]) if shards else np.empty(0)
        assert sorted(everything.tolist()) == list(range(count))
        for shard in shards:
            assert np.array_equal(shard, np.sort(shard))

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_deterministic_plans(self, seed):
        rng = np.random.default_rng(seed)
        costs = rng.exponential(2.0, size=30)
        first = plan_shards(costs, 7)
        second = plan_shards(costs.copy(), 7)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_cost_model_ranks_heavy_before_dangling(self):
        graph = _adversarial_graph()
        model = QueryCostModel(graph, URWSpec(max_length=15))
        degrees = graph.degrees()
        hub = int(np.argmax(degrees))
        dangling = int(np.nonzero(degrees == 0)[0][0])
        costs = model.costs(np.array([hub, dangling]))
        assert costs[0] > costs[1]

    def test_empty_shards_for_sparse_workloads(self):
        shards = plan_shards(np.array([1.0, 2.0]), 8)
        sizes = [s.size for s in shards]
        assert sum(sizes) == 2
        assert sizes.count(0) == 6


def test_extreme_imbalance_stays_identical_without_pool():
    """Belt-and-braces in-process check: a pathological 2-vertex chain
    graph (hub -> sink) with duplicated heavy queries, run through a
    dedicated small engine."""
    edges = [(0, 1)] * 1  # single edge; vertex 1 dangles
    graph = from_edges(np.asarray(edges, dtype=np.int64), num_vertices=3)
    spec = URWSpec(max_length=5)
    queries = [Query(i, 0) for i in range(5)] + [Query(9, 2)]
    expected = run_walks_batch(graph, spec, queries, seed=3)
    with ParallelWalkEngine(graph, spec, workers=2) as engine:
        actual = engine.run(queries, seed=3)
    for position in range(expected.num_queries):
        assert np.array_equal(actual.path_of(position), expected.path_of(position))
