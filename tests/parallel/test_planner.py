"""Degree-aware shard planner: partition correctness, balance, cost model."""

import numpy as np
import pytest

from repro.errors import WalkConfigError
from repro.graph import cycle_graph, from_edges, load_dataset, path_graph
from repro.parallel.planner import expected_query_costs, plan_shards
from repro.walks import PPRSpec, URWSpec


class TestPlanShards:
    def test_every_position_assigned_exactly_once(self):
        costs = np.random.default_rng(1).uniform(0.5, 10.0, size=101)
        shards = plan_shards(costs, 4)
        merged = np.sort(np.concatenate(shards))
        assert np.array_equal(merged, np.arange(costs.size))

    def test_single_shard_is_identity(self):
        shards = plan_shards(np.ones(5), 1)
        assert len(shards) == 1
        assert np.array_equal(shards[0], np.arange(5))

    def test_more_shards_than_queries_leaves_empties(self):
        shards = plan_shards(np.ones(2), 5)
        sizes = sorted(shard.size for shard in shards)
        assert sizes == [0, 0, 0, 1, 1]

    def test_deterministic(self):
        costs = np.random.default_rng(2).uniform(0.5, 10.0, size=64)
        a = plan_shards(costs, 3)
        b = plan_shards(costs, 3)
        for sa, sb in zip(a, b):
            assert np.array_equal(sa, sb)

    def test_balances_heavy_tailed_costs(self):
        # A few huge walks among many tiny ones: heaviest-first folded
        # round-robin keeps the spread within one max-cost of perfect,
        # where equal-count chunking (arrival order) would put all heavy
        # items in one shard.
        costs = np.array([100.0] * 4 + [1.0] * 96)
        shards = plan_shards(costs, 4)
        loads = [float(costs[s].sum()) for s in shards]
        assert max(loads) - min(loads) <= 100.0
        assert max(loads) <= np.ceil(costs.sum() / 4) + 100.0
        heavy_per_shard = [int((costs[s] >= 100.0).sum()) for s in shards]
        assert heavy_per_shard == [1, 1, 1, 1]

    def test_rejects_no_shards(self):
        with pytest.raises(WalkConfigError, match="num_shards"):
            plan_shards(np.ones(3), 0)


class TestExpectedQueryCosts:
    def test_dangling_start_costs_base_only(self):
        g = path_graph(3)  # vertex 2 dangles
        costs = expected_query_costs(g, URWSpec(max_length=10), np.array([0, 2]))
        assert costs[1] < costs[0]
        assert costs[1] == pytest.approx(1.0)  # base cost, zero expected hops

    def test_cycle_walks_run_full_length(self):
        g = cycle_graph(6)  # no dangling vertices anywhere
        spec = URWSpec(max_length=20)
        costs = expected_query_costs(g, spec, np.arange(6))
        assert np.allclose(costs, 1.0 + spec.max_length)

    def test_termination_probability_shortens_expectation(self):
        g = cycle_graph(6)
        urw = expected_query_costs(g, URWSpec(max_length=100), np.array([0]))
        ppr = expected_query_costs(g, PPRSpec(alpha=0.5, max_length=100), np.array([0]))
        assert ppr[0] < urw[0]
        # geometric with alpha=0.5 -> about 2 expected hops
        assert ppr[0] == pytest.approx(1.0 + 2.0, rel=0.1)

    def test_trailing_dangling_vertices_counted(self):
        # Regression: vertex 0's neighbors (1 and 2) both dangle and sit
        # at the end of the CSR arrays; the dangling fraction must still
        # be 1.0, giving expected hops of exactly 1.
        g = from_edges([(0, 1), (0, 2)], num_vertices=3)
        costs = expected_query_costs(g, URWSpec(max_length=30), np.array([0]))
        assert costs[0] == pytest.approx(2.0)  # base 1.0 + one certain hop

    def test_degree_aware_first_hop(self):
        # Start 0 has one neighbor that dangles; start 3 has one neighbor
        # that continues. Expected hops from 0 must be lower.
        g = from_edges([(0, 1), (3, 4), (4, 3)], num_vertices=5)
        costs = expected_query_costs(g, URWSpec(max_length=30), np.array([0, 3]))
        assert costs[0] < costs[1]

    def test_costs_positive_for_all_starts(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        costs = expected_query_costs(g, URWSpec(max_length=15), np.arange(g.num_vertices))
        assert (costs >= 1.0).all()
        assert np.isfinite(costs).all()
