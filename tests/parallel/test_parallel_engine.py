"""Sharded parallel engine: bit-exact determinism and statistical equivalence.

Two oracles apply.  Against the batch engine the bar is *bit-identical*
results — same kernels, same per-query ``SeedSequence((seed, query_id))``
substreams, so sharding must not change a single vertex.  Against the
reference engine the bar is the usual chi-square equivalence of visit
distributions, on one spec per vectorized sampler kernel (uniform,
alias, rejection, reservoir).
"""

import numpy as np
import pytest
from stat_helpers import CHI_SQUARE_ALPHA, chi_square_compare

from repro.errors import WalkConfigError
from repro.graph import load_dataset, path_graph
from repro.parallel import ParallelWalkEngine, run_walks_parallel
from repro.walks import (
    DeepWalkSpec,
    EngineStats,
    Node2VecSpec,
    Query,
    URWSpec,
    make_queries,
    run_walks,
    run_walks_batch,
)

#: One spec per vectorized sampling kernel (Table I coverage).
SAMPLER_SPECS = {
    "uniform": lambda: URWSpec(max_length=15),
    "alias": lambda: DeepWalkSpec(max_length=15),
    "rejection": lambda: Node2VecSpec(max_length=12),
    "reservoir": lambda: Node2VecSpec(max_length=12, strategy="reservoir"),
}


def _weighted_graph():
    return load_dataset("WG", scale=0.08, seed=1, weighted=True)


class TestBitIdenticalDeterminism:
    def test_identical_across_worker_counts(self):
        graph = _weighted_graph()
        spec = DeepWalkSpec(max_length=15)
        queries = make_queries(graph, 120, seed=2)
        baseline = run_walks_batch(graph, spec, queries, seed=3)
        for workers in (1, 2, 4):
            result = run_walks_parallel(graph, spec, queries, seed=3, workers=workers)
            assert result.num_queries == baseline.num_queries
            for a, b in zip(baseline.paths, result.paths):
                assert np.array_equal(a, b), f"diverged at workers={workers}"

    def test_identical_under_query_shuffle(self):
        graph = _weighted_graph()
        spec = URWSpec(max_length=15)
        queries = make_queries(graph, 80, seed=4)
        shuffled = list(queries)
        np.random.default_rng(5).shuffle(shuffled)
        forward = run_walks_parallel(graph, spec, queries, seed=6, workers=3)
        permuted = run_walks_parallel(graph, spec, shuffled, seed=6, workers=2)
        by_id = {q.query_id: i for i, q in enumerate(shuffled)}
        for position, query in enumerate(queries):
            assert np.array_equal(
                forward.path_of(position), permuted.path_of(by_id[query.query_id])
            )

    @pytest.mark.parametrize("kernel", sorted(SAMPLER_SPECS))
    def test_bit_identical_to_batch_engine_per_kernel(self, kernel):
        graph = _weighted_graph()
        spec = SAMPLER_SPECS[kernel]()
        queries = make_queries(graph, 60, seed=7)
        batch = run_walks_batch(graph, spec, queries, seed=8)
        parallel = run_walks_parallel(graph, spec, queries, seed=8, workers=2)
        for a, b in zip(batch.paths, parallel.paths):
            assert np.array_equal(a, b)

    def test_stats_identical_to_batch_engine(self):
        graph = _weighted_graph()
        spec = Node2VecSpec(max_length=10)
        queries = make_queries(graph, 60, seed=9)
        batch_stats, parallel_stats = EngineStats(), EngineStats()
        run_walks_batch(graph, spec, queries, seed=10, stats=batch_stats)
        run_walks_parallel(graph, spec, queries, seed=10, stats=parallel_stats, workers=3)
        assert parallel_stats == batch_stats


class TestStatisticalEquivalence:
    """Chi-square: parallel visit histograms vs the reference engine's."""

    @pytest.mark.parametrize("kernel", sorted(SAMPLER_SPECS))
    def test_matches_reference_engine(self, kernel):
        graph = _weighted_graph()
        spec = SAMPLER_SPECS[kernel]()
        queries = make_queries(graph, 400, seed=11)
        reference = run_walks(graph, spec, queries, seed=12)
        parallel = run_walks_parallel(graph, spec, queries, seed=13, workers=2)
        p = chi_square_compare(
            reference.visit_counts(graph.num_vertices),
            parallel.visit_counts(graph.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA, f"visit distributions diverge for {kernel} (p={p:.5f})"


class TestEngineLifecycle:
    def test_persistent_engine_serves_many_batches(self):
        graph = _weighted_graph()
        spec = URWSpec(max_length=10)
        with ParallelWalkEngine(graph, spec, workers=2) as engine:
            first = engine.run(make_queries(graph, 40, seed=14), seed=15)
            second = engine.run(make_queries(graph, 40, seed=14), seed=15)
            assert engine.workers == 2
        for a, b in zip(first.paths, second.paths):
            assert np.array_equal(a, b)

    def test_closed_engine_rejects_runs(self):
        graph = path_graph(4)
        engine = ParallelWalkEngine(graph, URWSpec(max_length=5), workers=1)
        engine.close()
        with pytest.raises(WalkConfigError, match="closed"):
            engine.run([Query(0, 0)])
        engine.close()  # idempotent

    def test_zero_queries(self):
        graph = path_graph(4)
        results = run_walks_parallel(graph, URWSpec(max_length=5), [], workers=2)
        assert results.num_queries == 0 and results.total_steps == 0

    def test_invalid_worker_count_rejected(self):
        graph = path_graph(4)
        with pytest.raises(WalkConfigError, match="workers"):
            ParallelWalkEngine(graph, URWSpec(max_length=5), workers=0)

    def test_out_of_range_start_fails_in_parent(self):
        from repro.errors import GraphError
        graph = path_graph(4)
        with ParallelWalkEngine(graph, URWSpec(max_length=5), workers=1) as engine:
            with pytest.raises(GraphError, match="out of range"):
                engine.run([Query(0, 99)])

    def test_scalar_only_termination_hook_rejected(self):
        from repro.sampling.uniform import UniformSampler
        from repro.walks.base import WalkSpec

        class LegacyPPR(WalkSpec):
            def make_sampler(self):
                return UniformSampler()

            def terminates_probabilistically(self, step, random_source):
                return random_source.uniform() < 0.2

        with pytest.raises(WalkConfigError, match="termination_probability"):
            ParallelWalkEngine(path_graph(4), LegacyPPR(max_length=5), workers=1)


class TestRegistryDispatch:
    def test_run_software_walks_parallel(self):
        from repro.engines import run_software_walks
        graph = _weighted_graph()
        queries = make_queries(graph, 30, seed=16)
        results, elapsed = run_software_walks(
            "parallel", graph, URWSpec(max_length=8), queries, seed=17, workers=2
        )
        assert results.num_queries == 30
        assert elapsed > 0

    def test_workers_option_rejected_for_batch_engine(self):
        from repro.engines import run_software_walks
        graph = path_graph(4)
        with pytest.raises(WalkConfigError, match="does not accept"):
            run_software_walks(
                "batch", graph, URWSpec(max_length=5), [Query(0, 0)], workers=2
            )

    def test_none_options_mean_engine_default(self):
        from repro.engines import run_software_walks
        graph = path_graph(4)
        results, _ = run_software_walks(
            "batch", graph, URWSpec(max_length=5), [Query(0, 0)], workers=None
        )
        assert results.num_queries == 1
