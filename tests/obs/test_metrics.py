"""Metrics registry semantics and the subsystem bridge functions.

Counters refuse to decrease, histograms keep exact ``_bucket``/``_sum``/
``_count`` triples, the registry enforces one type per name — and the
``*_into`` bridges copy each subsystem ledger verbatim, which is what
makes the exported accounting identity tests in
``test_service_metrics.py`` meaningful.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    cache_into,
    dynamic_graph_into,
    engine_stats_into,
    format_labels,
    global_registry,
    reset_global_registry,
    serve_stats_into,
    tracer_into,
)
from repro.obs.trace import Tracer
from repro.serve.cache import HotWalkCache
from repro.serve.stats import ServeStats
from repro.walks import EngineStats


class TestCounter:
    def test_accumulates_per_labelset(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(2, engine="batch")
        counter.inc(3, engine="batch")
        counter.inc(5, engine="jit")
        assert counter.value(engine="batch") == 5
        assert counter.value(engine="jit") == 5
        assert counter.value(engine="missing") == 0.0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_label_order_does_not_split_series(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(1, a="x", b="y")
        counter.inc(1, b="y", a="x")
        assert counter.value(a="x", b="y") == 2
        assert len(counter.labelsets()) == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12


class TestHistogram:
    def test_bucket_placement_sum_count(self):
        histogram = Histogram("h", "", buckets=(1.0, 10.0))
        histogram.observe_many([0.5, 1.0, 5.0, 100.0])
        counts, total_sum, total_count = histogram.series(())
        assert counts == [2, 1, 1]  # <=1, <=10, +Inf overflow
        assert total_sum == pytest.approx(106.5)
        assert total_count == 4
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(106.5)

    def test_validates_bucket_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", "", buckets=())
        with pytest.raises(ObservabilityError):
            Histogram("h", "", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", "", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_type_conflicts_are_loud(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ObservabilityError):
            registry.gauge("name")

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("0bad")
        with pytest.raises(ObservabilityError):
            registry.counter("ok").inc(1, **{"label": "v", "also-bad": "v"})

    def test_collect_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        assert [m.name for m in registry.collect()] == ["a_total", "z_total"]

    def test_totals_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3, k="v")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        flat = registry.totals()
        assert flat["c_total"] == {'k="v"': 3.0}
        assert flat["h_sum"] == {"": 0.5}
        assert flat["h_count"] == {"": 1.0}

    def test_format_labels_round_trips_escapes(self):
        assert format_labels((("k", 'a"b\\c'),)) == 'k="a\\"b\\\\c"'

    def test_global_registry_reset_swaps_instances(self):
        first = global_registry()
        second = reset_global_registry()
        assert second is not first
        assert global_registry() is second


class TestBridges:
    def test_engine_stats_bridge_copies_every_counter(self):
        stats = EngineStats()
        stats.total_hops = 100
        stats.sampling_proposals = 120
        stats.neighbor_reads = 300
        stats.early_terminations = 1
        stats.dangling_terminations = 2
        stats.probabilistic_terminations = 3
        stats.length_terminations = 4
        registry = MetricsRegistry()
        engine_stats_into(registry, stats, engine="batch")
        assert registry.get("repro_engine_hops_total").value(engine="batch") == 100
        terminations = registry.get("repro_engine_terminations_total")
        by_cause = {
            cause: terminations.value(cause=cause, engine="batch")
            for cause in ("early", "dangling", "stop_prob", "max_length")
        }
        assert by_cause == {
            "early": 1, "dangling": 2, "stop_prob": 3, "max_length": 4,
        }

    def test_serve_stats_bridge_preserves_the_accounting_identity(self):
        stats = ServeStats()
        for i in range(6):
            stats.record_submit(float(i))
        stats.record_drop()
        stats.record_drop()
        stats.record_batch(4, hops=40, service_seconds=0.01)
        for i in range(5):
            stats.record_completion(0.002 * (i + 1), float(10 + i),
                                    cache_hit=(i == 0))
        stats.record_failure(20.0)
        registry = MetricsRegistry()
        serve_stats_into(registry, stats, tenant="t0")
        requests = registry.get("repro_serve_requests_total")
        completed = requests.value(outcome="completed", tenant="t0")
        dropped = requests.value(outcome="dropped", tenant="t0")
        failed = requests.value(outcome="failed", tenant="t0")
        assert (completed, dropped, failed) == (5, 2, 1)
        assert completed + dropped + failed == stats.offered
        latency = registry.get("repro_serve_latency_seconds")
        assert latency.count(tenant="t0") == len(stats.latencies)
        assert latency.sum(tenant="t0") == pytest.approx(sum(stats.latencies))
        batch = registry.get("repro_serve_batch_size")
        assert batch.buckets == BATCH_SIZE_BUCKETS
        assert batch.count(tenant="t0") == 1

    def test_cache_bridge(self):
        cache = HotWalkCache(pool_size=2, hot_threshold=1)
        cache.hits = 7
        cache.misses = 13
        cache.pools_built = 2
        cache.pools_invalidated = 1
        registry = MetricsRegistry()
        cache_into(registry, cache)
        lookups = registry.get("repro_cache_lookups_total")
        assert lookups.value(result="hit") == 7
        assert lookups.value(result="miss") == 13
        assert registry.get("repro_cache_live_pools").value() == 0

    def test_cache_metrics_into_method_matches_bridge(self):
        cache = HotWalkCache()
        cache.hits = 3
        direct, via_method = MetricsRegistry(), MetricsRegistry()
        cache_into(direct, cache)
        cache.metrics_into(via_method)
        assert direct.totals() == via_method.totals()

    def test_dynamic_graph_bridge_uses_duck_typed_counters(self):
        class FakeDynamic:
            updates_applied = 1200
            compactions = 2
            compaction_seconds = 0.75
            delta_edges = 40
            epoch = 9

        registry = MetricsRegistry()
        dynamic_graph_into(registry, FakeDynamic())
        assert registry.get("repro_dynamic_updates_total").value() == 1200
        assert registry.get(
            "repro_dynamic_compaction_seconds_total"
        ).value() == pytest.approx(0.75)
        assert registry.get("repro_dynamic_epoch").value() == 9

    def test_tracer_bridge_exports_ring_accounting(self):
        tracer = Tracer(capacity=2)
        tracer.enable()
        for i in range(5):
            tracer.instant("e", i=i)
        registry = MetricsRegistry()
        tracer_into(registry, tracer)
        events = registry.get("repro_trace_events_total")
        assert events.value(state="recorded") == 5
        assert events.value(state="dropped") == 3
        assert registry.get("repro_trace_buffered_events").value() == 2
