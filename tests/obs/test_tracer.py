"""Tracer contracts: pay-for-what-you-use, bounded ring, no effect on walks.

The three promises ``src/repro/obs/trace.py`` makes:

* disabled is the default and the disabled path records nothing —
  ``active()`` is ``None``, ``span()`` is a shared no-op singleton;
* the ring is bounded with honest drop accounting — ``dropped`` is
  derived from the same lock-protected state as the buffer, so the two
  can never disagree;
* tracing never touches walk results — a traced batch run is
  bit-identical to an untraced one (the overhead benchmark gates the
  throughput side of the same contract).
"""

import pytest

import numpy as np

from repro.errors import ObservabilityError
from repro.graph import powerlaw
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    Tracer,
    active,
    configure_tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    tracing,
)
from repro.walks import DeepWalkSpec, EngineStats, make_queries
from repro.walks.batch import run_walks_batch


@pytest.fixture(autouse=True)
def fresh_global_tracer():
    """Every test gets a pristine disabled global tracer and cannot leak
    an enabled one into the rest of the suite."""
    configure_tracer(DEFAULT_CAPACITY)
    yield
    configure_tracer(DEFAULT_CAPACITY)


class TestDisabledPath:
    def test_disabled_is_the_default(self):
        assert get_tracer().enabled is False
        assert active() is None

    def test_active_returns_the_tracer_only_when_enabled(self):
        tracer = enable_tracing()
        assert active() is tracer
        disable_tracing()
        assert active() is None

    def test_disabled_recording_is_a_no_op(self):
        tracer = get_tracer()
        tracer.instant("ignored")
        tracer.end(tracer.begin(), "ignored")
        with tracer.span("ignored"):
            pass
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_disabled_span_is_a_shared_singleton(self):
        tracer = get_tracer()
        assert tracer.span("a") is tracer.span("b")


class TestRecording:
    def test_end_records_a_complete_span_with_payload(self):
        tracer = enable_tracing()
        token = tracer.begin()
        tracer.end(token, "work.step", step=3, width=64)
        (event,) = tracer.events()
        assert event.name == "work.step"
        assert event.phase == PHASE_COMPLETE
        assert event.dur >= 0.0
        assert event.args == {"step": 3, "width": 64}
        assert event.tid > 0

    def test_instant_records_zero_duration_marker(self):
        tracer = enable_tracing()
        tracer.instant("serve.shed", tenant="premium")
        (event,) = tracer.events()
        assert event.phase == PHASE_INSTANT
        assert event.dur == 0.0
        assert event.args == {"tenant": "premium"}

    def test_span_context_manager_records_on_success(self):
        tracer = enable_tracing()
        with tracer.span("outer", epoch=2):
            pass
        (event,) = tracer.events()
        assert event.name == "outer"
        assert event.args == {"epoch": 2}

    def test_span_marks_and_propagates_exceptions(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event.args["error"] is True

    def test_timestamps_are_monotone_within_a_thread(self):
        tracer = enable_tracing()
        for i in range(5):
            tracer.instant("tick", i=i)
        stamps = [event.ts for event in tracer.events()]
        assert stamps == sorted(stamps)


class TestRingBounds:
    def test_capacity_bounds_the_ring_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        tracer.enable()
        for i in range(12):
            tracer.instant("event", i=i)
        assert len(tracer) == 4
        assert tracer.dropped == 8
        # Oldest evicted: only the suffix survives.
        assert [event.args["i"] for event in tracer.events()] == [8, 9, 10, 11]

    def test_snapshot_is_consistent_accounting(self):
        tracer = Tracer(capacity=3)
        tracer.enable()
        for i in range(5):
            tracer.instant("event", i=i)
        snap = tracer.snapshot()
        assert snap == {
            "enabled": True, "capacity": 3,
            "buffered": 3, "recorded": 5, "dropped": 2,
        }

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = Tracer(capacity=2)
        tracer.enable()
        for i in range(5):
            tracer.instant("event", i=i)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            Tracer(capacity=0)


class TestGlobalLifecycle:
    def test_enable_tracing_resizes_by_replacing_the_tracer(self):
        before = get_tracer()
        after = enable_tracing(capacity=16)
        assert after is not before
        assert after.capacity == 16
        assert get_tracer() is after

    def test_enable_tracing_without_capacity_keeps_the_tracer(self):
        before = get_tracer()
        assert enable_tracing() is before

    def test_tracing_guard_restores_prior_state(self):
        with tracing() as tracer:
            assert tracer.enabled
            tracer.instant("inside")
        assert get_tracer().enabled is False
        # Buffered events survive the guard for post-hoc export.
        assert len(get_tracer()) == 1

    def test_tracing_guard_nests_without_disabling_the_outer(self):
        with tracing():
            with tracing():
                pass
            assert get_tracer().enabled is True


class TestNoEffectOnWalks:
    def test_traced_batch_run_is_bit_identical_to_untraced(self):
        graph = powerlaw(num_vertices=80, num_edges=400, seed=3, name="obs")
        spec = DeepWalkSpec(max_length=12)
        queries = make_queries(graph, 32, seed=5)

        def run():
            stats = EngineStats()
            results = run_walks_batch(graph, spec, queries, seed=7, stats=stats)
            return results, stats

        untraced, untraced_stats = run()
        with tracing():
            traced, traced_stats = run()
        assert len(get_tracer()) > 0, "the superstep loop should have spans"
        assert traced_stats.total_hops == untraced_stats.total_hops
        assert traced_stats.per_query_hops == untraced_stats.per_query_hops
        for a, b in zip(traced.paths, untraced.paths):
            assert np.array_equal(a, b)
