"""Exporter round-trips: Chrome trace_event schema, JSONL replay,
Prometheus render/parse.

Each exporter is tested against its own reader where one exists
(``replay_jsonl``, ``parse_prometheus``) and against the documented
schema where the reader is external (Perfetto's trace_event format).
"""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.exporters import (
    TRACE_PID,
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    replay_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_tracer() -> Tracer:
    tracer = Tracer(capacity=64)
    tracer.enable()
    with tracer.span("engine.run", engine="batch"):
        token = tracer.begin()
        tracer.end(token, "batch.superstep", step=0, frontier=32)
        tracer.instant("serve.shed", tenant="premium")
    return tracer


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_serve_requests_total", "by outcome").inc(
        5, outcome="completed", tenant="t0"
    )
    registry.counter("repro_serve_requests_total").inc(
        2, outcome="dropped", tenant="t0"
    )
    registry.gauge("repro_serve_epoch", "serving epoch").set(3)
    registry.histogram(
        "repro_serve_latency_seconds", "latency", buckets=(0.001, 0.01, 0.1)
    ).observe_many([0.0005, 0.002, 0.05, 2.0], tenant="t0")
    return registry


class TestChromeTrace:
    def test_schema_fields(self):
        tracer = make_tracer()
        payload = chrome_trace(tracer.events())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 3
        by_name = {event["name"]: event for event in events}
        superstep = by_name["batch.superstep"]
        assert superstep["ph"] == "X"
        assert superstep["pid"] == TRACE_PID
        assert superstep["tid"] > 0
        assert superstep["dur"] >= 0.0
        assert superstep["args"] == {"step": 0, "frontier": 32}
        shed = by_name["serve.shed"]
        assert shed["ph"] == "i"
        assert shed["s"] == "t"
        assert "dur" not in shed
        # ts is microseconds: spans recorded microseconds apart must not
        # collapse to equal stamps the way second-resolution would.
        assert all(isinstance(event["ts"], float) for event in events)

    def test_write_is_valid_json_and_counts_events(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(path, tracer) == 3
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert len(loaded["traceEvents"]) == 3
        # Nesting is reconstructable: the enclosing engine.run span
        # covers the superstep span on the same tid.
        by_name = {event["name"]: event for event in loaded["traceEvents"]}
        run, step = by_name["engine.run"], by_name["batch.superstep"]
        assert run["ts"] <= step["ts"]
        assert run["ts"] + run["dur"] >= step["ts"] + step["dur"]


class TestJsonlRoundTrip:
    def test_replay_reconstructs_metric_totals_exactly(self, tmp_path):
        tracer = make_tracer()
        registry = make_registry()
        path = tmp_path / "out.jsonl"
        lines = write_jsonl(path, tracer.events(), registry,
                            meta={"command": ["serve-bench"]})
        assert lines == 3 + len(
            [v for series in registry.totals().values() for v in series]
        ) + 1
        replayed = replay_jsonl(path)
        assert replayed["metrics"] == registry.totals()
        assert replayed["meta"] == {"command": ["serve-bench"]}
        assert replayed["spans"]["batch.superstep"]["count"] == 1
        assert replayed["spans"]["serve.shed"]["count"] == 1

    def test_replay_rejects_unknown_record_types(self):
        with pytest.raises(ObservabilityError):
            replay_jsonl(['{"type": "mystery"}'])

    def test_empty_export_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl(path) == 0
        assert replay_jsonl(path) == {"spans": {}, "metrics": {}, "meta": None}


class TestPrometheusRoundTrip:
    def test_parse_recovers_every_rendered_sample(self, tmp_path):
        registry = make_registry()
        text = render_prometheus(registry)
        samples = parse_prometheus(text)
        assert samples[("repro_serve_requests_total",
                        'outcome="completed",tenant="t0"')] == 5
        assert samples[("repro_serve_epoch", "")] == 3
        # Histogram: cumulative buckets plus the exact _sum/_count pair.
        assert samples[("repro_serve_latency_seconds_bucket",
                        'tenant="t0",le="0.001"')] == 1
        assert samples[("repro_serve_latency_seconds_bucket",
                        'tenant="t0",le="0.1"')] == 3
        assert samples[("repro_serve_latency_seconds_bucket",
                        'tenant="t0",le="+Inf"')] == 4
        assert samples[("repro_serve_latency_seconds_count",
                        'tenant="t0"')] == 4
        assert samples[("repro_serve_latency_seconds_sum",
                        'tenant="t0"')] == pytest.approx(2.0525)
        path = tmp_path / "metrics.prom"
        assert write_prometheus(path, registry) == len(samples)
        assert parse_prometheus(path.read_text(encoding="utf-8")) == samples

    def test_type_and_help_headers_are_rendered(self):
        text = render_prometheus(make_registry())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_epoch gauge" in text
        assert "# TYPE repro_serve_latency_seconds histogram" in text
        assert "# HELP repro_serve_requests_total by outcome" in text

    def test_parser_is_strict(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus("not a sample line at all with no value trail x")
        with pytest.raises(ObservabilityError):
            parse_prometheus("metric_name notanumber")
        with pytest.raises(ObservabilityError):
            parse_prometheus("dup 1\ndup 2")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}
