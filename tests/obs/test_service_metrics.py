"""``WalkService.snapshot_metrics``: exported counters == the ledgers.

The acceptance criterion for the telemetry layer's serve integration:
drive a real multi-tenant service (flash-crowd stressor, hot-walk
cache, small gates so shedding actually happens), export with
``snapshot_metrics``, and require

* per-tenant exported counters to equal the per-tenant ``ServeStats``
  ledgers exactly,
* the accounting identity ``offered == completed + dropped + failed``
  to hold per tenant on the *exported* values,
* the Prometheus text round-trip to carry the same numbers.
"""

import asyncio

import numpy as np
import pytest

from repro.graph import powerlaw
from repro.obs.exporters import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    HotWalkCache,
    ServeConfig,
    TenantSpec,
    TenantTrace,
    WalkService,
    flash_crowd_gaps,
    run_tenant_traces,
)
from repro.walks import DeepWalkSpec


REQUESTS_PER_TENANT = 60


@pytest.fixture(scope="module")
def driven_service():
    """One flash-crowd run: (service, reports), service drained."""
    graph = powerlaw(num_vertices=100, num_edges=500, seed=2, name="obs-serve")
    spec = DeepWalkSpec(max_length=10)
    rng = np.random.default_rng(4)
    candidates = np.nonzero(graph.degrees() > 0)[0]
    # Few distinct hot vertices so the cache crosses its fill threshold.
    hot = rng.choice(candidates, size=6, replace=False)
    tenants = [
        TenantSpec("premium", weight=8, queue_depth=4 * REQUESTS_PER_TENANT),
        # A shallow gate for the stressor: the flash crowd must shed.
        TenantSpec("besteffort", weight=1, queue_depth=8),
    ]
    config = ServeConfig(max_batch=16, max_wait_ms=2.0,
                         queue_depth=4 * REQUESTS_PER_TENANT)
    traces = [
        TenantTrace(
            "premium",
            rng.choice(hot, size=REQUESTS_PER_TENANT, replace=True),
            np.full(REQUESTS_PER_TENANT, 1e-4),
            use_cache=True,
        ),
        TenantTrace(
            "besteffort",
            rng.choice(hot, size=REQUESTS_PER_TENANT, replace=True),
            # The burst must be dense enough to outrun the dispatcher:
            # at 50k req/s the 60-request crowd lands in ~0.7 ms, far
            # inside one max_wait window, so the 8-deep gate must shed.
            flash_crowd_gaps(REQUESTS_PER_TENANT, 50000.0, seed=6),
            use_cache=True,
        ),
    ]

    async def _drive():
        service = WalkService(
            graph, spec, engine="batch", seed=11, config=config,
            tenants=tenants, cache=HotWalkCache(pool_size=4, hot_threshold=3),
        )
        async with service:
            reports = await run_tenant_traces(service, traces)
        return service, reports

    return asyncio.run(_drive())


def test_per_tenant_counters_match_the_ledgers_exactly(driven_service):
    service, _ = driven_service
    registry = service.snapshot_metrics()
    requests = registry.get("repro_serve_requests_total")
    for tenant, ledger in service.tenant_stats.items():
        assert requests.value(outcome="completed", tenant=tenant) == ledger.completed
        assert requests.value(outcome="dropped", tenant=tenant) == ledger.dropped
        assert requests.value(outcome="failed", tenant=tenant) == ledger.failed
        assert registry.get("repro_serve_cache_hits_total").value(
            tenant=tenant
        ) == ledger.cache_hits
        latency = registry.get("repro_serve_latency_seconds")
        assert latency.count(tenant=tenant) == len(ledger.latencies)
        assert latency.sum(tenant=tenant) == pytest.approx(sum(ledger.latencies))


def test_accounting_identity_holds_on_exported_values(driven_service):
    service, reports = driven_service
    registry = service.snapshot_metrics()
    requests = registry.get("repro_serve_requests_total")
    for tenant, ledger in service.tenant_stats.items():
        exported_offered = sum(
            requests.value(outcome=outcome, tenant=tenant)
            for outcome in ("completed", "dropped", "failed")
        )
        assert exported_offered == ledger.offered, tenant
        # ...and the ledger agrees with what the driver observed.
        report = reports[tenant]
        assert ledger.completed == report.completed
        assert ledger.dropped == len(report.dropped)
    # The workload actually exercised both outcomes somewhere.
    assert requests.value(outcome="completed", tenant="premium") > 0
    assert sum(
        requests.value(outcome="dropped", tenant=t)
        for t in service.tenant_stats
    ) > 0, "flash crowd against an 8-deep gate should shed"


def test_global_counters_are_the_tenant_sums(driven_service):
    service, _ = driven_service
    registry = service.snapshot_metrics()
    requests = registry.get("repro_serve_requests_total")
    for outcome in ("completed", "dropped", "failed"):
        assert requests.value(outcome=outcome) == sum(
            requests.value(outcome=outcome, tenant=t)
            for t in service.tenant_stats
        )


def test_cache_counters_are_exported(driven_service):
    service, _ = driven_service
    registry = service.snapshot_metrics()
    lookups = registry.get("repro_cache_lookups_total")
    assert lookups.value(result="hit") == service.cache.hits
    assert lookups.value(result="miss") == service.cache.misses
    assert service.cache.hits > 0, "hot traffic should have earned pool hits"
    assert registry.get("repro_cache_pools_total").value(
        event="built"
    ) == service.cache.pools_built


def test_gauges_report_drained_state(driven_service):
    service, _ = driven_service
    registry = service.snapshot_metrics()
    assert registry.get("repro_serve_occupancy").value() == 0
    for tenant in service.tenant_stats:
        assert registry.get("repro_serve_backlog").value(tenant=tenant) == 0


def test_prometheus_round_trip_carries_the_ledgers(driven_service):
    service, _ = driven_service
    samples = parse_prometheus(render_prometheus(service.snapshot_metrics()))
    for tenant, ledger in service.tenant_stats.items():
        assert samples[(
            "repro_serve_requests_total",
            f'outcome="completed",tenant="{tenant}"',
        )] == ledger.completed
        assert samples[(
            "repro_serve_requests_total",
            f'outcome="dropped",tenant="{tenant}"',
        )] == ledger.dropped
        assert samples[(
            "repro_serve_latency_seconds_count", f'tenant="{tenant}"'
        )] == len(ledger.latencies)


def test_snapshot_extends_a_caller_registry(driven_service):
    service, _ = driven_service
    registry = MetricsRegistry()
    registry.counter("preexisting_total").inc(1)
    assert service.snapshot_metrics(registry) is registry
    assert registry.get("preexisting_total").value() == 1
    assert registry.get("repro_serve_requests_total") is not None


def test_snapshot_is_repeatable_and_read_only(driven_service):
    service, _ = driven_service
    first = service.snapshot_metrics().totals()
    second = service.snapshot_metrics().totals()
    assert first == second
