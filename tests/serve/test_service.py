"""Service mechanics: flush policy, lifecycle, stats, failure isolation."""

import asyncio

import numpy as np
import pytest

from repro.engines import PreparedEngine
from repro.errors import GraphError, ReproError, ServeError
from repro.graph import path_graph, powerlaw
from repro.serve import ServeConfig, WalkService, run_open_loop
from repro.serve.stats import ServeStats
from repro.walks import URWSpec, WalkResults


def make_graph():
    return powerlaw(num_vertices=60, num_edges=240, seed=1, name="serve-test")


def drive(coro):
    return asyncio.run(coro)


class SlowEngine(PreparedEngine):
    """Deterministic stub: echoes start vertices, sleeps per batch."""

    name = "slow-stub"

    def __init__(self, delay_seconds: float = 0.0, fail: bool = False) -> None:
        self.delay_seconds = delay_seconds
        self.fail = fail
        self.batches: list[int] = []
        self.closed = False

    def run(self, queries, seed=0, stats=None):
        import time

        self.batches.append(len(queries))
        if self.delay_seconds:
            time.sleep(self.delay_seconds)
        if self.fail:
            raise ReproError("injected engine failure")
        results = WalkResults()
        for query in queries:
            results.add_path([query.start_vertex, query.query_id])
        return results

    def close(self):
        self.closed = True


class TestFlushPolicy:
    def test_flushes_at_max_batch(self):
        engine = SlowEngine()
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=10_000.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                futures = [service.try_submit(0) for _ in range(8)]
                await asyncio.gather(*futures)

        drive(scenario())
        # A huge max_wait means only the size trigger can flush: two full
        # batches, no partials.
        assert engine.batches == [4, 4]

    def test_flushes_on_max_wait(self):
        engine = SlowEngine()
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=1000, max_wait_ms=5.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                future = service.try_submit(0)
                await asyncio.wait_for(future, timeout=5.0)

        drive(scenario())
        # The size trigger is unreachable; only the deadline can have
        # flushed this singleton.
        assert engine.batches == [1]

    def test_coalesces_while_engine_busy(self):
        """Requests arriving during an execution form the next batch —
        the pipelining that keeps the engine from idling."""
        engine = SlowEngine(delay_seconds=0.05)
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                first = service.try_submit(0)
                await asyncio.sleep(0.02)  # batch 1 is now executing
                rest = [service.try_submit(v) for v in range(1, 9)]
                await asyncio.gather(first, *rest)

        drive(scenario())
        assert engine.batches[0] == 1
        assert sum(engine.batches) == 9
        # Everything submitted during the sleep coalesced behind it.
        assert len(engine.batches) == 2


class TestLifecycle:
    def test_submit_before_start_rejected(self):
        service = WalkService(make_graph(), URWSpec(max_length=5))

        async def scenario():
            with pytest.raises(ServeError, match="not running"):
                service.try_submit(0)

        drive(scenario())

    def test_stop_drains_admitted_requests(self):
        engine = SlowEngine(delay_seconds=0.01)
        graph = make_graph()

        async def scenario():
            service = WalkService(graph, URWSpec(max_length=5), engine=engine,
                                  config=ServeConfig(max_batch=4, max_wait_ms=1.0,
                                                     queue_depth=64))
            await service.start()
            futures = [service.try_submit(v) for v in range(10)]
            await service.stop()  # drain=True
            assert all(f.done() for f in futures)
            assert service.occupancy == 0

        drive(scenario())
        assert sum(engine.batches) == 10
        assert engine.closed

    def test_stop_without_drain_fails_pending_futures(self):
        engine = SlowEngine(delay_seconds=0.05)
        graph = make_graph()

        async def scenario():
            service = WalkService(graph, URWSpec(max_length=5), engine=engine,
                                  config=ServeConfig(max_batch=2, max_wait_ms=50.0,
                                                     queue_depth=64))
            await service.start()
            futures = [service.try_submit(v) for v in range(8)]
            await asyncio.sleep(0.01)  # let the first batch start executing
            await service.stop(drain=False)
            assert service.occupancy == 0
            resolved, failed = 0, 0
            for future in futures:
                try:
                    await future
                    resolved += 1
                except ServeError:
                    failed += 1
            # The executing batch completes; everything still queued or
            # coalescing is failed loudly rather than left hanging.
            assert resolved + failed == 8
            assert failed > 0

        drive(scenario())
        assert engine.closed

    def test_stop_without_start_still_closes_engine(self):
        """__init__ builds the engine eagerly (a parallel engine holds a
        worker pool + shared memory), so an abandoned, never-started
        service must still release it on stop."""
        engine = SlowEngine()
        service = WalkService(make_graph(), URWSpec(max_length=5), engine=engine)
        drive(service.stop())
        assert engine.closed

    def test_resolved_slice_does_not_pin_batch_buffer(self):
        """Each request's WalkResults must own its path: batch paths are
        views into one buffer per micro-batch, and handing those out
        would pin the whole batch for as long as any response lives."""
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=8, max_wait_ms=5.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=6),
                                   config=config) as service:
                futures = [service.try_submit(0) for _ in range(8)]
                return await asyncio.gather(*futures)

        for results in drive(scenario()):
            assert results.path_of(0).base is None

    def test_context_manager_round_trip(self):
        graph = make_graph()

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=5)) as service:
                results = await service.submit(0)
                assert results.num_queries == 1
            with pytest.raises(ServeError):
                service.try_submit(0)

        drive(scenario())

    def test_engine_options_rejected_with_prepared_engine(self):
        with pytest.raises(ServeError, match="prepare_engine"):
            WalkService(make_graph(), URWSpec(max_length=5),
                        engine=SlowEngine(), workers=2)


class TestFailureIsolation:
    def test_engine_failure_propagates_to_futures(self):
        engine = SlowEngine(fail=True)
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                futures = [service.try_submit(v) for v in range(4)]
                for future in futures:
                    with pytest.raises(ReproError, match="injected"):
                        await future
                assert service.occupancy == 0
                # The service survives a failed batch and keeps serving.
                engine.fail = False
                results = await service.submit(1)
                assert results.num_queries == 1

        drive(scenario())

    def test_out_of_range_vertex_rejected_at_admission(self):
        """A doomed request fails at its own call site instead of
        poisoning the micro-batch it would have joined."""
        graph = path_graph(4)

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=5)) as service:
                with pytest.raises(GraphError, match="out of range"):
                    service.try_submit(99)
                results = await service.submit(1)
                assert results.path_of(0)[0] == 1

        drive(scenario())


class TestStats:
    def test_percentiles_and_histogram(self):
        stats = ServeStats()
        for latency in (0.010, 0.020, 0.030, 0.040):
            stats.record_completion(latency, now=1.0 + latency)
        stats.record_batch(2, hops=10, service_seconds=0.01)
        stats.record_batch(2, hops=14, service_seconds=0.01)
        percentiles = stats.latency_percentiles()
        assert percentiles["p50"] == pytest.approx(0.025)
        assert percentiles["p99"] <= 0.040
        assert stats.batch_size_histogram() == {2: 2}
        assert stats.mean_batch_size() == 2.0
        assert stats.total_hops == 24

    def test_empty_stats_are_presentable(self):
        stats = ServeStats()
        assert np.isnan(stats.latency_percentiles()["p50"])
        assert stats.sustained_hops_per_second() == 0.0
        snapshot = stats.snapshot()
        assert snapshot["latency_ms"]["p50"] is None
        assert "n/a" in stats.summary()

    def test_sustained_throughput_spans_submit_to_completion(self):
        stats = ServeStats()
        stats.record_submit(10.0)
        stats.record_batch(3, hops=300, service_seconds=0.5)
        stats.record_completion(1.0, now=12.0)
        assert stats.sustained_hops_per_second() == pytest.approx(150.0)

    def test_service_records_end_to_end(self):
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=8, max_wait_ms=2.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=6),
                                   config=config) as service:
                await run_open_loop(service, np.zeros(12, dtype=np.int64))
                return service

        service = drive(scenario())
        assert service.stats.completed == 12
        assert service.stats.dropped == 0
        assert sum(size * count for size, count
                   in service.stats.batch_size_histogram().items()) == 12
        assert len(service.stats.latencies) == 12
        assert service.stats.snapshot()["sustained_hops_per_sec"] > 0


class TestStatsRegressions:
    def test_zero_elapsed_snapshot_does_not_overflow(self):
        """Regression: a degenerate window (submit and completion at the
        same clock reading) makes sustained hops/s infinite, and
        round(inf) used to raise OverflowError out of snapshot()."""
        stats = ServeStats()
        stats.record_submit(5.0)
        stats.record_batch(1, hops=10, service_seconds=0.0)
        stats.record_completion(0.0, now=5.0)
        assert stats.sustained_hops_per_second() == float("inf")
        snapshot = stats.snapshot()  # must not raise
        assert snapshot["sustained_hops_per_sec"] is None
        assert "n/a" in stats.summary()

    def test_failure_bucket_and_accounting_identity(self):
        stats = ServeStats()
        for _ in range(5):
            stats.record_submit(1.0)
        stats.record_drop()
        for _ in range(3):
            stats.record_completion(0.01, now=2.0)
        for _ in range(2):
            stats.record_failure(now=2.0)
        assert stats.offered == 6
        assert stats.offered == stats.completed + stats.dropped + stats.failed
        # Failures contribute no latency sample: percentiles describe
        # successful service only.
        assert len(stats.latencies) == 3
        assert stats.snapshot()["failed"] == 2
        assert "2 failed" in stats.summary()


class TestFailureAccounting:
    def test_engine_failure_lands_in_failed_not_limbo(self):
        """Satellite regression: _execute's exception path used to
        resolve the futures but never record the requests anywhere, so
        offered != completed + dropped + failed on any failed batch."""
        engine = SlowEngine(fail=True)
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                futures = [service.try_submit(v) for v in range(4)]
                for future in futures:
                    with pytest.raises(ReproError):
                        await future
                engine.fail = False
                await service.submit(1)
                stats = service.stats
                assert stats.failed == 4
                assert stats.completed == 1
                assert stats.offered == (stats.completed + stats.dropped
                                         + stats.failed)
                # Failed requests left the gate: the service drained.
                assert service.occupancy == 0

        drive(scenario())


class TestStopMidCoalesce:
    def test_abandoned_futures_fail_and_service_restarts(self):
        """stop(drain=False) while requests sit mid-coalesce: every
        abandoned future gets ServeError, occupancy returns to 0, and a
        subsequent start() serves cleanly on the same service object."""
        engine = SlowEngine()
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=1000, max_wait_ms=10_000.0,
                                 queue_depth=64)
            service = WalkService(graph, URWSpec(max_length=5), engine=engine,
                                  config=config)
            await service.start()
            # max_batch and max_wait are both unreachable: these requests
            # are parked in the coalescing window when stop() lands.
            futures = [service.try_submit(v) for v in range(6)]
            await asyncio.sleep(0.01)
            assert engine.batches == []  # nothing flushed yet
            await service.stop(drain=False)
            for future in futures:
                assert future.done()
                with pytest.raises(ServeError, match="stopped before"):
                    await future
            assert service.occupancy == 0

            # The same object restarts and serves.
            await service.start()
            results = await asyncio.wait_for(service.submit(2, query_id=0),
                                             timeout=30.0)
            assert results.path_of(0)[0] == 2
            await service.stop()
            assert service.occupancy == 0

        drive(scenario())

    def test_stop_discards_pending_pool_fills_quietly(self):
        """A queued cache pool fill has no future and no gate slot: a
        no-drain stop must discard it without hanging or miscounting."""
        from repro.serve import HotWalkCache

        engine = SlowEngine(delay_seconds=0.05)
        graph = make_graph()
        cache = HotWalkCache(pool_size=4, hot_threshold=1)

        async def scenario():
            config = ServeConfig(max_batch=2, max_wait_ms=50.0, queue_depth=64)
            service = WalkService(graph, URWSpec(max_length=5), engine=engine,
                                  config=config, cache=cache)
            await service.start()
            # The miss triggers a fill; the slow first batch keeps the
            # fill queued when stop() lands.
            first = service.try_submit_cached(0)
            await asyncio.sleep(0.01)
            extra = [service.try_submit_cached(0) for _ in range(3)]
            await service.stop(drain=False)
            outcomes = 0
            for future in (first, *extra):
                try:
                    await future
                except ServeError:
                    pass
                outcomes += 1
            assert outcomes == 4
            assert service.occupancy == 0

        drive(scenario())
