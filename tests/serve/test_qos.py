"""Multi-tenant QoS: admission classes, weighted dispatch, isolation.

The contracts under test: each tenant sheds at its *own* gate (a
flooding tenant cannot spend another tenant's depth), micro-batches are
composed by smooth weighted round-robin (deterministic, proportional to
weights while backlogged), depth sizing follows the M/M/1[N] model
against weight shares, and tenancy never touches walk semantics —
per-request paths stay bit-identical to the offline replay oracle under
any tenant interleaving.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import SchedulerError, ServeError, ServeOverloadError
from repro.graph import powerlaw
from repro.queueing import weighted_capacity_split
from repro.serve import (
    DEFAULT_TENANT,
    ServeConfig,
    TenantScheduler,
    TenantSpec,
    WalkService,
    replay_paths,
    size_tenant_depths,
)
from repro.serve.admission import MIN_DEPTH_BATCHES
from repro.walks import URWSpec


def make_graph():
    return powerlaw(num_vertices=60, num_edges=240, seed=1, name="qos-test")


def drive(coro):
    return asyncio.run(coro)


class FakeItem:
    """Scheduler item stub: a tenant tag (or None for a pool fill)."""

    def __init__(self, tenant=None, label=None):
        if tenant is not None:
            self.tenant = tenant
        self.label = label


class TestWeightedCapacitySplit:
    def test_splits_proportionally(self):
        assert weighted_capacity_split(90.0, [8, 1]) == [80.0, 10.0]

    def test_single_class_gets_everything(self):
        assert weighted_capacity_split(42.0, [3]) == [42.0]

    def test_rejects_bad_inputs(self):
        with pytest.raises(SchedulerError):
            weighted_capacity_split(0.0, [1])
        with pytest.raises(SchedulerError):
            weighted_capacity_split(10.0, [])
        with pytest.raises(SchedulerError):
            weighted_capacity_split(10.0, [2, 0])
        with pytest.raises(SchedulerError):
            weighted_capacity_split(10.0, [2, 1], keys=["only-one"])

    def test_shares_sum_exactly(self):
        # The per-class divisions round; the split must still conserve
        # the total bit-for-bit (math.fsum detects any ulp lost).
        import math

        for rate, weights in [
            (100.0, [1, 1, 1]),          # 1/3 shares: classic rounding loss
            (90.0, [8, 1]),
            (0.3, [7, 11, 13]),
            (1e9, [1, 2, 3, 4, 5, 6, 7]),
            # Regression: anchor share in the total's binade — a single
            # largest-share correction is sub-ulp and cannot converge;
            # the residue must walk down to a smaller share.
            (903010.7076379164, [45, 2]),
        ]:
            shares = weighted_capacity_split(rate, weights)
            assert math.fsum(shares) == rate, (rate, weights, shares)
            assert all(s > 0 for s in shares)

    def test_shares_sum_exactly_fuzz(self):
        import math
        import random

        rng = random.Random(20260808)
        for _ in range(2000):
            n = rng.randint(1, 8)
            weights = [rng.randint(1, 100) for _ in range(n)]
            rate = rng.uniform(1e-3, 1e6)
            assert math.fsum(weighted_capacity_split(rate, weights)) == rate

    def test_residue_assignment_is_deterministic_under_ties(self):
        # Equal weights tie on share; keys (tenant names) break the tie,
        # so the same config always corrects the same class regardless of
        # declaration order.
        by_pos = weighted_capacity_split(100.0, [1, 1, 1])
        assert weighted_capacity_split(100.0, [1, 1, 1]) == by_pos
        keyed_abc = weighted_capacity_split(100.0, [1, 1, 1], keys=["a", "b", "c"])
        keyed_cba = weighted_capacity_split(100.0, [1, 1, 1], keys=["c", "b", "a"])
        assert keyed_abc == list(reversed(keyed_cba))


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ServeError):
            TenantSpec("")
        with pytest.raises(ServeError):
            TenantSpec("a", weight=0)
        with pytest.raises(ServeError):
            TenantSpec("a", rate_per_second=-1.0)
        with pytest.raises(ServeError):
            TenantSpec("a", queue_depth=0)


class TestSizeTenantDepths:
    def test_explicit_depth_wins(self):
        specs = (TenantSpec("a", queue_depth=7), TenantSpec("b"))
        depths = size_tenant_depths(specs, service_rate=100.0, max_batch=4)
        assert depths["a"] == 7
        assert depths["b"] == MIN_DEPTH_BATCHES * 4

    def test_declared_rate_uses_model(self):
        # One tenant at half its share: the model returns a finite depth
        # at least the minimum, and deeper for a hotter tenant.
        cool = size_tenant_depths(
            (TenantSpec("a", weight=1, rate_per_second=10.0),),
            service_rate=100.0, max_batch=4)["a"]
        hot = size_tenant_depths(
            (TenantSpec("a", weight=1, rate_per_second=90.0),),
            service_rate=100.0, max_batch=4)["a"]
        assert cool >= MIN_DEPTH_BATCHES * 4
        assert hot > cool

    def test_shares_conserve_service_rate(self):
        # The exact-sum invariant asserted inside size_tenant_depths must
        # hold for awkward rates and many equal-weight tenants — the
        # configurations where naive division loses capacity.
        specs = tuple(TenantSpec(f"t{i}") for i in range(7))
        depths = size_tenant_depths(specs, service_rate=0.1 + 0.2, max_batch=4)
        assert set(depths) == {f"t{i}" for i in range(7)}

    def test_rate_beyond_share_rejected(self):
        # 10% weight share of 100/s = 10/s capacity; declaring 50/s is
        # unstable by declaration.
        specs = (TenantSpec("hog", weight=1, rate_per_second=50.0),
                 TenantSpec("big", weight=9))
        with pytest.raises(ServeError):
            size_tenant_depths(specs, service_rate=100.0, max_batch=4)


class TestTenantScheduler:
    def test_rejects_empty_and_duplicate(self):
        with pytest.raises(ServeError):
            TenantScheduler((), default_depth=4)
        with pytest.raises(ServeError):
            TenantScheduler((TenantSpec("a"), TenantSpec("a")), default_depth=4)

    def test_unknown_tenant_named_in_error(self):
        scheduler = TenantScheduler((TenantSpec("a"),), default_depth=4)
        with pytest.raises(ServeError, match="unknown tenant 'z'"):
            scheduler.admit("z")

    def test_per_tenant_gates_and_total_depth(self):
        scheduler = TenantScheduler(
            (TenantSpec("a", queue_depth=2), TenantSpec("b", queue_depth=3)),
            default_depth=99)
        assert scheduler.total_depth() == 5
        scheduler.admit("a")
        scheduler.admit("a")
        with pytest.raises(ServeOverloadError):
            scheduler.admit("a")
        # b's gate is untouched by a's overflow.
        scheduler.admit("b")
        scheduler.release("a", 2)
        scheduler.admit("a")

    def test_single_tenant_is_fifo(self):
        scheduler = TenantScheduler((TenantSpec(DEFAULT_TENANT),),
                                    default_depth=8)
        items = [FakeItem(DEFAULT_TENANT, label=i) for i in range(5)]
        for item in items:
            scheduler.push(item)
        batch = scheduler.next_batch(3)
        assert [i.label for i in batch] == [0, 1, 2]
        assert scheduler.pending_clients == 2

    def test_weighted_composition_is_proportional_and_smooth(self):
        scheduler = TenantScheduler(
            (TenantSpec("big", weight=3), TenantSpec("small", weight=1)),
            default_depth=64)
        for i in range(16):
            scheduler.push(FakeItem("big", label=f"b{i}"))
            scheduler.push(FakeItem("small", label=f"s{i}"))
        batch = scheduler.next_batch(8)
        tenants = [item.tenant for item in batch]
        assert tenants.count("big") == 6 and tenants.count("small") == 2
        # Smooth: the weight-3 tenant is interleaved, not served 6-in-a-row.
        assert tenants != ["big"] * 6 + ["small"] * 2

    def test_composition_is_deterministic(self):
        def compose():
            scheduler = TenantScheduler(
                (TenantSpec("x", weight=2), TenantSpec("y", weight=5)),
                default_depth=64)
            for i in range(20):
                scheduler.push(FakeItem("x", label=f"x{i}"))
                scheduler.push(FakeItem("y", label=f"y{i}"))
            return [item.label for item in scheduler.next_batch(14)]

        assert compose() == compose()

    def test_idle_tenant_donates_slots(self):
        scheduler = TenantScheduler(
            (TenantSpec("a", weight=1), TenantSpec("b", weight=1)),
            default_depth=64)
        for i in range(4):
            scheduler.push(FakeItem("a", label=i))
        assert [i.label for i in scheduler.next_batch(8)] == [0, 1, 2, 3]

    def test_fills_ride_along_one_per_batch(self):
        scheduler = TenantScheduler((TenantSpec("a"),), default_depth=8)
        scheduler.push(FakeItem("a", label="client"))
        scheduler.push(FakeItem(label="fill-1"))
        scheduler.push(FakeItem(label="fill-2"))
        batch = scheduler.next_batch(4)
        assert [getattr(i, "label") for i in batch] == ["client", "fill-1"]
        assert scheduler.has_work()
        assert [i.label for i in scheduler.next_batch(4)] == ["fill-2"]
        assert not scheduler.has_work()

    def test_drain_all_empties_everything(self):
        scheduler = TenantScheduler(
            (TenantSpec("a"), TenantSpec("b")), default_depth=8)
        scheduler.push(FakeItem("a"))
        scheduler.push(FakeItem("b"))
        scheduler.push(FakeItem())
        assert len(scheduler.drain_all()) == 3
        assert not scheduler.has_work()
        assert scheduler.pending_clients == 0


class TestServiceTenancy:
    def test_anonymous_service_keeps_old_behavior(self):
        graph = make_graph()

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=5),
                                   seed=3) as service:
                assert service.tenant_names == (DEFAULT_TENANT,)
                result = await service.submit(0, query_id=0)
                assert service.tenant_stats == {}
                return result.path_of(0)

        path = drive(scenario())
        oracle = replay_paths(make_graph(), URWSpec(max_length=5), {0: 0}, seed=3)
        assert np.array_equal(path, oracle[0])

    def test_multi_tenant_requires_tenant_argument(self):
        graph = make_graph()

        async def scenario():
            tenants = (TenantSpec("a"), TenantSpec("b"))
            async with WalkService(graph, URWSpec(max_length=5),
                                   tenants=tenants) as service:
                with pytest.raises(ServeError, match="pass tenant="):
                    service.try_submit(0)
                with pytest.raises(ServeError, match="unknown tenant"):
                    service.try_submit(0, tenant="nope")

        drive(scenario())

    def test_flooding_tenant_sheds_alone(self):
        """A tenant that fills its gate sheds its own traffic; the other
        tenant keeps admitting — the admission half of isolation."""
        graph = make_graph()

        async def scenario():
            tenants = (TenantSpec("premium", weight=8, queue_depth=64),
                       TenantSpec("besteffort", weight=1, queue_depth=4))
            config = ServeConfig(max_batch=8, max_wait_ms=50.0, queue_depth=16)
            async with WalkService(graph, URWSpec(max_length=5), seed=5,
                                   tenants=tenants, config=config) as service:
                flood, shed = [], 0
                for _ in range(32):
                    try:
                        flood.append(service.try_submit(1, tenant="besteffort"))
                    except ServeOverloadError:
                        shed += 1
                assert shed > 0
                # Premium admits fine while best-effort is saturated.
                premium = [service.try_submit(2, tenant="premium")
                           for _ in range(32)]
                await asyncio.gather(*flood, *premium)
                stats = service.tenant_stats
                assert stats["besteffort"].dropped == shed
                assert stats["premium"].dropped == 0
                assert stats["premium"].offered == 32
                for ledger in stats.values():
                    assert ledger.offered == (ledger.completed + ledger.dropped
                                              + ledger.failed)

        drive(scenario())

    def test_tenant_interleaving_preserves_determinism(self):
        """Paths are keyed by (seed, query_id) only: two tenants
        interleaved under weighted dispatch replay bit-identically."""
        graph = make_graph()
        spec = URWSpec(max_length=8)

        async def scenario():
            tenants = (TenantSpec("a", weight=4), TenantSpec("b", weight=1))
            config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=256)
            async with WalkService(graph, spec, seed=11, tenants=tenants,
                                   config=config) as service:
                futures = {}
                for i in range(40):
                    tenant = "a" if i % 2 == 0 else "b"
                    futures[i] = service.try_submit(i % 60, query_id=i,
                                                    tenant=tenant)
                results = {}
                for qid, future in futures.items():
                    results[qid] = (await future).path_of(0)
                return results

        served = drive(scenario())
        oracle = replay_paths(make_graph(), URWSpec(max_length=8),
                              {i: i % 60 for i in range(40)}, seed=11)
        for qid, path in served.items():
            assert np.array_equal(path, oracle[qid]), f"query {qid} diverged"

    def test_global_occupancy_spans_tenants(self):
        graph = make_graph()

        async def scenario():
            tenants = (TenantSpec("a", queue_depth=3),
                       TenantSpec("b", queue_depth=2))
            config = ServeConfig(max_batch=8, max_wait_ms=50.0, queue_depth=1)
            async with WalkService(graph, URWSpec(max_length=3),
                                   tenants=tenants, config=config) as service:
                # Global high-water is the sum of tenant depths, not the
                # anonymous config depth.
                futures = [service.try_submit(0, tenant="a") for _ in range(3)]
                futures += [service.try_submit(0, tenant="b") for _ in range(2)]
                assert service.occupancy == 5
                await asyncio.gather(*futures)
                assert service.occupancy == 0

        drive(scenario())
