"""Determinism under batching: the service is scheduling, never semantics.

The acceptance bar: a request's paths are bit-identical whether it was
served alone (micro-batch of 1), in micro-batches of 16, in one maximal
batch, on the batch engine or the parallel engine — and all of those
equal the offline replay through ``run_walks_batch`` at the same
``(seed, query_id)``.  Any divergence means batch composition leaked
into the randomness, which is the one bug a serving layer must never
have.
"""

import asyncio

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.serve import ServeConfig, WalkService, replay_paths, run_open_loop
from repro.walks import DeepWalkSpec, Node2VecSpec

NUM_REQUESTS = 40
SERVICE_SEED = 21

#: The micro-batch sizes the acceptance criterion names: singleton
#: batches, mid-size coalescing, and one maximal batch holding every
#: request at once.
BATCH_SIZES = (1, 16, NUM_REQUESTS)

#: Engine cells the service must agree across; parallel runs 2 workers
#: so sharding is actually exercised.
ENGINES = (("batch", {}), ("parallel", {"workers": 2}))


@pytest.fixture(scope="module")
def workload():
    graph = load_dataset("WG", scale=0.06, seed=1, weighted=True)
    spec = DeepWalkSpec(max_length=12)
    rng = np.random.default_rng(3)
    candidates = np.nonzero(graph.degrees() > 0)[0]
    starts = rng.choice(candidates, size=NUM_REQUESTS, replace=True)
    oracle = replay_paths(
        graph, spec, {i: int(v) for i, v in enumerate(starts)}, seed=SERVICE_SEED
    )
    return graph, spec, starts, oracle


def _serve(graph, spec, starts, engine, engine_options, max_batch):
    async def _drive():
        config = ServeConfig(
            max_batch=max_batch,
            # A generous wait makes mid-size runs actually coalesce to
            # max_batch instead of flushing tiny timing-dependent batches
            # — the *composition* under test must be the requested one.
            max_wait_ms=50.0,
            queue_depth=4 * NUM_REQUESTS,
        )
        service = WalkService(
            graph, spec, engine=engine, seed=SERVICE_SEED, config=config,
            **engine_options,
        )
        async with service:
            report = await run_open_loop(service, starts)
        return report, service

    return asyncio.run(_drive())


@pytest.mark.parametrize("engine,engine_options", ENGINES,
                         ids=[name for name, _ in ENGINES])
@pytest.mark.parametrize("max_batch", BATCH_SIZES)
def test_bit_identical_to_offline_replay(workload, engine, engine_options, max_batch):
    """Every (batch size, engine) cell reproduces the offline oracle."""
    graph, spec, starts, oracle = workload
    report, service = _serve(graph, spec, starts, engine, engine_options, max_batch)
    assert not report.dropped
    assert report.completed == NUM_REQUESTS
    for query_id, expected in oracle.items():
        assert np.array_equal(report.paths[query_id], expected), (
            f"request {query_id} diverged from offline replay under "
            f"engine={engine} max_batch={max_batch}"
        )
    # The batcher really ran the composition under test: with batch size
    # 1 every dispatch is a singleton; with a maximal batch everything
    # coalesces into few large dispatches.
    histogram = service.stats.batch_size_histogram()
    if max_batch == 1:
        assert set(histogram) == {1}
    assert max(histogram) <= max_batch


def test_interleaved_arrivals_do_not_change_paths(workload):
    """Paced arrivals slice the stream differently; paths must not move."""
    graph, spec, starts, oracle = workload
    report, service = _serve(graph, spec, starts, "batch", {}, max_batch=16)
    paced_report, paced_service = None, None

    async def _paced():
        config = ServeConfig(max_batch=7, max_wait_ms=0.5, queue_depth=4 * NUM_REQUESTS)
        service = WalkService(graph, spec, engine="batch", seed=SERVICE_SEED, config=config)
        async with service:
            report = await run_open_loop(
                service, starts, rate_per_second=4000.0, arrival_seed=9
            )
        return report, service

    paced_report, paced_service = asyncio.run(_paced())
    assert not paced_report.dropped
    # Different flush pattern (different batch shapes)...
    assert (service.stats.batch_size_histogram()
            != paced_service.stats.batch_size_histogram()
            or len(service.stats.batch_sizes) != len(paced_service.stats.batch_sizes))
    # ...same bits.
    for query_id, expected in oracle.items():
        assert np.array_equal(paced_report.paths[query_id], expected)


def test_second_order_walks_survive_batching(workload):
    """Node2Vec (rejection kernel, retry rounds) is the hardest RNG
    consumer; its per-request substreams must also be composition-proof."""
    graph, _, starts, _ = workload
    spec = Node2VecSpec(max_length=10)
    oracle = replay_paths(
        graph, spec, {i: int(v) for i, v in enumerate(starts)}, seed=SERVICE_SEED
    )
    for max_batch in (1, NUM_REQUESTS):
        report, _ = _serve(graph, spec, starts, "batch", {}, max_batch)
        for query_id, expected in oracle.items():
            assert np.array_equal(report.paths[query_id], expected)


def test_engine_stats_match_offline_batch(workload):
    """Service-accumulated engine counters equal one closed run's.

    ``per_query_hops`` arrives in completion order, so compare it as a
    multiset; the scalar counters must match exactly.
    """
    from repro.walks import EngineStats, run_walks_batch
    from repro.walks.base import Query

    graph, spec, starts, _ = workload
    offline = EngineStats()
    # The service defaults to sampler="auto"; the closed-run oracle must
    # run the same backend for its counters to be comparable.
    run_walks_batch(
        graph, spec,
        [Query(i, int(v)) for i, v in enumerate(starts)],
        seed=SERVICE_SEED, stats=offline, sampler="auto",
    )
    _, service = _serve(graph, spec, starts, "batch", {}, max_batch=16)
    served = service.engine_stats
    assert served.total_hops == offline.total_hops
    assert served.sampling_proposals == offline.sampling_proposals
    assert served.neighbor_reads == offline.neighbor_reads
    assert served.dangling_terminations == offline.dangling_terminations
    assert served.early_terminations == offline.early_terminations
    assert served.probabilistic_terminations == offline.probabilistic_terminations
    assert served.length_terminations == offline.length_terminations
    assert sorted(served.per_query_hops) == sorted(offline.per_query_hops)
