"""Workload generators and the open-loop driver's failure accounting.

Covers the scenario generators (diurnal thinning, flash-crowd piecewise
rates, hub-hammer start mixes), the ``run_open_loop`` regression — a
failed micro-batch costs exactly its own requests, never the report —
and the multi-tenant trace driver's id disjointness.
"""

import asyncio

import numpy as np
import pytest

from repro.engines import PreparedEngine
from repro.errors import ReproError, WalkConfigError
from repro.graph import powerlaw
from repro.serve import (
    SCENARIOS,
    ServeConfig,
    TenantSpec,
    TenantTrace,
    WalkService,
    arrival_gaps,
    diurnal_gaps,
    flash_crowd_gaps,
    hub_hammer_starts,
    replay_paths,
    run_open_loop,
    run_tenant_traces,
    scenario_gaps,
)
from repro.walks import URWSpec, WalkResults


def make_graph():
    return powerlaw(num_vertices=60, num_edges=240, seed=1, name="wl-test")


def drive(coro):
    return asyncio.run(coro)


class TestGenerators:
    def test_diurnal_gaps_reproducible_and_positive(self):
        a = diurnal_gaps(200, mean_rate=1000.0, seed=3)
        b = diurnal_gaps(200, mean_rate=1000.0, seed=3)
        assert np.array_equal(a, b)
        assert a.size == 200 and (a > 0).all()
        # The mean gap tracks the mean rate (thinning preserves intensity).
        assert 1.0 / a.mean() == pytest.approx(1000.0, rel=0.35)

    def test_diurnal_validation(self):
        with pytest.raises(WalkConfigError):
            diurnal_gaps(0, 10.0)
        with pytest.raises(WalkConfigError):
            diurnal_gaps(10, 0.0)
        with pytest.raises(WalkConfigError):
            diurnal_gaps(10, 10.0, swing=1.0)
        with pytest.raises(WalkConfigError):
            diurnal_gaps(10, 10.0, period_seconds=0)

    def test_flash_crowd_burst_is_faster(self):
        gaps = flash_crowd_gaps(400, nominal_rate=100.0, burst_multiplier=10.0,
                                burst_fraction=0.5, seed=5)
        assert gaps.size == 400
        lead, burst, tail = gaps[:100], gaps[100:300], gaps[300:]
        # The burst's mean gap is close to 10x shorter than nominal's.
        assert burst.mean() < 0.3 * lead.mean()
        assert burst.mean() < 0.3 * tail.mean()

    def test_flash_crowd_validation(self):
        with pytest.raises(WalkConfigError):
            flash_crowd_gaps(10, 0.0)
        with pytest.raises(WalkConfigError):
            flash_crowd_gaps(10, 10.0, burst_multiplier=0.5)
        with pytest.raises(WalkConfigError):
            flash_crowd_gaps(10, 10.0, burst_fraction=0.0)

    def test_hub_hammer_concentrates_on_top_degree(self):
        graph = make_graph()
        starts = hub_hammer_starts(graph, 500, num_hubs=2,
                                   hammer_fraction=0.8, seed=7)
        assert starts.size == 500
        assert (starts >= 0).all() and (starts < graph.num_vertices).all()
        hubs = set(np.argsort(graph.degrees())[::-1][:2].tolist())
        on_hubs = sum(1 for s in starts.tolist() if s in hubs)
        assert on_hubs >= 380  # ~0.8 of 500, plus uniform strays

    def test_hub_hammer_validation(self):
        graph = make_graph()
        with pytest.raises(WalkConfigError):
            hub_hammer_starts(graph, 0)
        with pytest.raises(WalkConfigError):
            hub_hammer_starts(graph, 10, num_hubs=0)
        with pytest.raises(WalkConfigError):
            hub_hammer_starts(graph, 10, hammer_fraction=1.5)

    def test_scenario_gaps_dispatch(self):
        for scenario in SCENARIOS:
            gaps = scenario_gaps(scenario, 50, 100.0, seed=1)
            assert gaps.size == 50
        # steady == plain Poisson; zero rate degenerates to saturation.
        assert np.array_equal(scenario_gaps("steady", 50, 100.0, seed=1),
                              arrival_gaps(50, 100.0, seed=1))
        assert (scenario_gaps("flash-crowd", 50, 0.0) == 0).all()
        with pytest.raises(WalkConfigError):
            scenario_gaps("tsunami", 50, 100.0)


class HalfFailEngine(PreparedEngine):
    """Fails every other micro-batch: the failure-accounting stressor."""

    name = "half-fail"

    def __init__(self):
        self.calls = 0

    def run(self, queries, seed=0, stats=None):
        self.calls += 1
        if self.calls % 2 == 1:
            raise ReproError("injected batch failure")
        results = WalkResults()
        for query in queries:
            results.add_path([query.start_vertex, query.query_id])
        return results

    def close(self):
        pass


class TestRunOpenLoopFailures:
    def test_failed_batch_costs_only_its_requests(self):
        """Regression: one failed future used to raise out of the
        collection loop, losing the whole report — completed paths,
        drop records, elapsed time and all."""
        graph = make_graph()

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=0.5, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=4),
                                   engine=HalfFailEngine(),
                                   config=config) as service:
                report = await run_open_loop(
                    service, np.arange(16, dtype=np.int64) % 60)
                return report, service.stats

        report, stats = drive(scenario())
        assert report.failed  # some batches raised...
        assert report.paths   # ...and the survivors' paths are intact
        assert report.elapsed_seconds > 0
        report.check_identity()
        # The service ledger agrees with the client's view.
        assert stats.failed == len(report.failed)
        assert stats.offered == stats.completed + stats.dropped + stats.failed

    def test_gap_length_mismatch_rejected(self):
        graph = make_graph()

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=4)) as service:
                with pytest.raises(WalkConfigError, match="gaps length"):
                    await run_open_loop(service, np.zeros(4, dtype=np.int64),
                                        gaps=np.zeros(3))

        drive(scenario())


class TestTenantTraces:
    def test_disjoint_ids_and_per_tenant_reports(self):
        graph = make_graph()
        spec = URWSpec(max_length=5)

        async def scenario():
            tenants = (TenantSpec("a", weight=2), TenantSpec("b"))
            config = ServeConfig(max_batch=8, max_wait_ms=0.5, queue_depth=256)
            async with WalkService(graph, spec, seed=13, tenants=tenants,
                                   config=config) as service:
                traces = [
                    TenantTrace("a", np.arange(10, dtype=np.int64),
                                arrival_gaps(10, 0.0)),
                    TenantTrace("b", np.arange(10, 20, dtype=np.int64),
                                arrival_gaps(10, 0.0)),
                ]
                return await run_tenant_traces(service, traces, id_stride=1000)

        reports = drive(scenario())
        assert set(reports) == {"a", "b"}
        ids_a = set(reports["a"].requests)
        ids_b = set(reports["b"].requests)
        assert not ids_a & ids_b
        assert ids_a == set(range(10))
        assert ids_b == set(range(1000, 1010))
        for report in reports.values():
            report.check_identity()
        # The union replays offline as one batch.
        merged_requests, merged_paths = {}, {}
        for report in reports.values():
            merged_requests.update(report.requests)
            merged_paths.update(report.paths)
        oracle = replay_paths(make_graph(), URWSpec(max_length=5),
                              merged_requests, seed=13)
        for qid, path in merged_paths.items():
            assert np.array_equal(path, oracle[qid])

    def test_oversized_trace_rejected(self):
        graph = make_graph()

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=4)) as service:
                traces = [TenantTrace("default",
                                      np.zeros(5, dtype=np.int64),
                                      arrival_gaps(5, 0.0))]
                with pytest.raises(WalkConfigError, match="id_stride"):
                    await run_tenant_traces(service, traces, id_stride=4)

        drive(scenario())

    def test_empty_traces_rejected(self):
        graph = make_graph()

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=4)) as service:
                with pytest.raises(WalkConfigError):
                    await run_tenant_traces(service, [])

        drive(scenario())
