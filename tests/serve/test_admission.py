"""Admission control: bounded occupancy, shedding, and depth sizing."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServeError, ServeOverloadError
from repro.graph import powerlaw
from repro.serve import (
    AdmissionGate,
    ServeConfig,
    WalkService,
    recommended_queue_depth,
    run_open_loop,
)
from repro.serve.admission import MIN_DEPTH_BATCHES
from repro.walks import URWSpec

from test_service import SlowEngine


class TestAdmissionGate:
    def test_counts_in_and_out(self):
        gate = AdmissionGate(high_water=3)
        gate.admit()
        gate.admit()
        assert gate.occupancy == 2
        gate.release(2)
        assert gate.occupancy == 0

    def test_sheds_past_high_water(self):
        gate = AdmissionGate(high_water=2)
        gate.admit()
        gate.admit()
        with pytest.raises(ServeOverloadError) as excinfo:
            gate.admit()
        assert excinfo.value.occupancy == 2
        assert excinfo.value.high_water == 2
        # Shedding does not consume capacity: a release reopens the gate.
        gate.release()
        gate.admit()

    def test_release_cannot_go_negative(self):
        gate = AdmissionGate(high_water=2)
        with pytest.raises(ServeError):
            gate.release()

    def test_rejects_degenerate_high_water(self):
        with pytest.raises(ServeError):
            AdmissionGate(high_water=0)


class TestRecommendedQueueDepth:
    def test_floor_is_two_full_batches(self):
        # Nearly idle system: the zero-bubble floor applies.
        depth = recommended_queue_depth(
            arrival_rate=1.0, service_rate=1000.0, max_batch=32
        )
        assert depth == MIN_DEPTH_BATCHES * 32

    def test_grows_with_offered_load(self):
        depths = [
            recommended_queue_depth(rate, service_rate=10.0, max_batch=16)
            for rate in (40.0, 120.0, 150.0)  # rho = 0.25, 0.75, 0.94
        ]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]

    def test_unstable_load_rejected(self):
        with pytest.raises(ServeError, match="rho"):
            recommended_queue_depth(
                arrival_rate=200.0, service_rate=10.0, max_batch=16
            )

    def test_bad_safety_rejected(self):
        with pytest.raises(ServeError, match="safety"):
            recommended_queue_depth(1.0, 1.0, 16, safety=0.0)


class TestServiceShedding:
    def test_flood_sheds_and_recovers(self):
        """A burst past the high-water sheds the overflow with the typed
        error, serves everything admitted, and accepts again once
        drained."""
        graph = powerlaw(num_vertices=40, num_edges=160, seed=2)
        engine = SlowEngine(delay_seconds=0.02)

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=6)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                admitted, shed = [], 0
                for vertex in range(20):
                    try:
                        admitted.append(service.try_submit(vertex % 40))
                    except ServeOverloadError:
                        shed += 1
                assert shed == 20 - 6
                assert service.stats.dropped == shed
                await asyncio.gather(*admitted)
                # Occupancy drained: the gate reopens.
                results = await service.submit(0)
                assert results.num_queries == 1
                return service

            return None

        asyncio.run(scenario())

    def test_nominal_open_loop_load_never_sheds(self):
        """At an offered load well under capacity, with the depth sized by
        the occupancy model, zero requests are dropped — the invariant the
        CI smoke also asserts."""
        graph = powerlaw(num_vertices=40, num_edges=160, seed=2)
        # The stub serves a batch in 1ms -> capacity ~ max_batch / 1ms.
        engine = SlowEngine(delay_seconds=0.001)
        arrival_rate = 500.0  # requests/s, ~6% of the stub's capacity
        depth = recommended_queue_depth(
            arrival_rate=arrival_rate, service_rate=1000.0, max_batch=8
        )

        async def scenario():
            config = ServeConfig(max_batch=8, max_wait_ms=2.0, queue_depth=depth)
            async with WalkService(graph, URWSpec(max_length=5), engine=engine,
                                   config=config) as service:
                report = await run_open_loop(
                    service,
                    np.arange(60, dtype=np.int64) % 40,
                    rate_per_second=arrival_rate,
                    arrival_seed=4,
                )
                return report, service

        report, service = asyncio.run(scenario())
        assert report.dropped == []
        assert report.completed == 60
        assert service.stats.dropped == 0
