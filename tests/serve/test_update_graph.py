"""WalkService.update_graph: epoch boundaries, determinism, lifecycle.

The contract under test: a queued graph swap is an epoch boundary —
requests admitted before it (including in-flight micro-batches) execute
on the old snapshot, requests admitted after it on the new one, batches
never span it, and every request replays bit-identically offline against
its epoch's graph.
"""

import asyncio

import numpy as np
import pytest

from repro.dynamic import DynamicGraph
from repro.engines import PreparedEngine
from repro.errors import ServeError
from repro.graph import from_edges
from repro.serve import ServeConfig, WalkService, replay_paths
from repro.walks import URWSpec, WalkResults


def two_epochs():
    """Epoch 0 walks a forward ring, epoch 1 the reversed ring — URW on
    degree-1 vertices is deterministic, so paths identify the epoch."""
    n = 8
    forward = from_edges([(i, (i + 1) % n) for i in range(n)], num_vertices=n)
    dynamic = DynamicGraph(forward)
    snap0 = dynamic.snapshot()
    dynamic.remove_edges([(i, (i + 1) % n) for i in range(n)])
    dynamic.add_edges([(i, (i - 1) % n) for i in range(n)])
    snap1 = dynamic.snapshot()
    return snap0, snap1


SPEC = URWSpec(max_length=4)


class TestEpochBoundary:
    def test_boundary_splits_old_and_new_requests(self):
        snap0, snap1 = two_epochs()

        async def scenario():
            config = ServeConfig(max_batch=64, max_wait_ms=20.0, queue_depth=64)
            async with WalkService(snap0, SPEC, engine="batch", seed=7,
                                   config=config) as service:
                assert service.epoch == 0
                old = [service.try_submit(i, query_id=i) for i in range(4)]
                swap = service.try_update_graph(snap1)
                new = [service.try_submit(i, query_id=100 + i) for i in range(4)]
                old_results = await asyncio.gather(*old)
                epoch = await swap
                new_results = await asyncio.gather(*new)
                assert epoch == 1 and service.epoch == 1
                return old_results, new_results

        old_results, new_results = asyncio.run(scenario())
        oracle_old = replay_paths(snap0.graph, SPEC,
                                  {i: i for i in range(4)}, seed=7)
        oracle_new = replay_paths(snap1.graph, SPEC,
                                  {100 + i: i for i in range(4)}, seed=7)
        for i, result in enumerate(old_results):
            assert np.array_equal(result.paths[0], oracle_old[i])
        for i, result in enumerate(new_results):
            assert np.array_equal(result.paths[0], oracle_new[100 + i])

    def test_in_flight_batch_completes_on_old_snapshot(self):
        """A request already executing when the swap is queued still
        resolves against the old epoch's graph."""
        snap0, snap1 = two_epochs()

        async def scenario():
            # max_batch=1 forces the first request straight into execution.
            config = ServeConfig(max_batch=1, max_wait_ms=0.0, queue_depth=64)
            async with WalkService(snap0, SPEC, engine="batch", seed=7,
                                   config=config) as service:
                in_flight = service.try_submit(0, query_id=0)
                await asyncio.sleep(0.02)  # request is in (or past) execution
                epoch = await service.update_graph(snap1)
                assert epoch == 1
                late = await service.submit(0, query_id=1)
                return await in_flight, late

        first, late = asyncio.run(scenario())
        assert np.array_equal(
            first.paths[0], replay_paths(snap0.graph, SPEC, {0: 0}, seed=7)[0]
        )
        assert np.array_equal(
            late.paths[0], replay_paths(snap1.graph, SPEC, {1: 0}, seed=7)[1]
        )

    def test_replay_is_bit_identical_per_epoch_across_engines(self):
        snap0, snap1 = two_epochs()

        for engine in ("batch", "reference"):

            async def scenario():
                config = ServeConfig(max_batch=8, max_wait_ms=5.0,
                                     queue_depth=64)
                async with WalkService(snap0, SPEC, engine=engine, seed=3,
                                       config=config) as service:
                    old = [service.try_submit(i, query_id=i) for i in range(6)]
                    service.try_update_graph(snap1)
                    new = [service.try_submit(i, query_id=50 + i)
                           for i in range(6)]
                    return (await asyncio.gather(*old),
                            await asyncio.gather(*new))

            old_results, new_results = asyncio.run(scenario())
            oracle_old = replay_paths(snap0.graph, SPEC,
                                      {i: i for i in range(6)}, seed=3)
            oracle_new = replay_paths(snap1.graph, SPEC,
                                      {50 + i: i for i in range(6)}, seed=3)
            for i, result in enumerate(old_results):
                assert np.array_equal(result.paths[0], oracle_old[i]), engine
            for i, result in enumerate(new_results):
                assert np.array_equal(result.paths[0], oracle_new[50 + i]), engine


class TestEpochLabels:
    def test_plain_csr_graph_auto_increments(self):
        snap0, snap1 = two_epochs()

        async def scenario():
            async with WalkService(snap0.graph, SPEC, engine="batch",
                                   seed=1) as service:
                assert service.epoch == 0
                assert await service.update_graph(snap1.graph) == 1
                assert await service.update_graph(snap0.graph) == 2
                return service.epoch

        assert asyncio.run(scenario()) == 2

    def test_snapshot_epoch_is_adopted(self):
        snap0, snap1 = two_epochs()

        async def scenario():
            async with WalkService(snap0, SPEC, engine="batch",
                                   seed=1) as service:
                return await service.update_graph(snap1)

        assert asyncio.run(scenario()) == snap1.epoch == 1


class TestAdmissionBounds:
    def test_requests_after_queued_swap_validate_against_new_graph(self):
        """A vertex that only exists in the swapped-in graph must be
        admissible immediately after try_update_graph, even before the
        swap drains the queue — it will execute on the new graph."""
        small = from_edges([(0, 1), (1, 0)], num_vertices=2)
        big = from_edges([(i, (i + 1) % 6) for i in range(6)], num_vertices=6)

        async def scenario():
            async with WalkService(small, SPEC, engine="batch",
                                   seed=5) as service:
                swap = service.try_update_graph(big)
                grown = service.try_submit(5, query_id=0)  # only in `big`
                await swap
                return await grown

        result = asyncio.run(scenario())
        assert np.array_equal(
            result.paths[0], replay_paths(big, SPEC, {0: 5}, seed=5)[0]
        )

    def test_shrinking_swap_rejects_out_of_range_immediately(self):
        small = from_edges([(0, 1), (1, 0)], num_vertices=2)
        big = from_edges([(i, (i + 1) % 6) for i in range(6)], num_vertices=6)

        async def scenario():
            async with WalkService(big, SPEC, engine="batch",
                                   seed=5) as service:
                service.try_update_graph(small)
                with pytest.raises(Exception, match="out of range"):
                    service.try_submit(5, query_id=0)

        asyncio.run(scenario())


class TestLifecycle:
    def test_update_requires_running_service(self):
        snap0, _ = two_epochs()

        async def scenario():
            service = WalkService(snap0, SPEC, engine="batch")
            with pytest.raises(ServeError, match="not running"):
                await service.update_graph(snap0)
            await service.stop()

        asyncio.run(scenario())

    def test_stop_fails_unexecuted_swap_future(self):
        snap0, snap1 = two_epochs()

        class StubEngine(PreparedEngine):
            name = "stub"

            def run(self, queries, seed=0, stats=None):  # pragma: no cover
                results = WalkResults()
                for query in queries:
                    results.add_path([query.start_vertex])
                return results

        async def scenario():
            service = WalkService(snap0.graph, SPEC, engine=StubEngine())
            await service.start()
            # Queue a swap but stop before the dispatcher can apply it:
            # no-drain stop cancels the dispatcher immediately.
            future = service.try_update_graph(snap1)
            await service.stop(drain=False)
            with pytest.raises(ServeError, match="graph swap"):
                await future

        asyncio.run(scenario())

    def test_swap_failure_propagates_to_caller_only(self):
        """An engine that cannot swap fails the update future; requests
        around it still serve on the old graph."""
        snap0, snap1 = two_epochs()

        class NoSwapEngine(PreparedEngine):
            name = "no-swap"

            def run(self, queries, seed=0, stats=None):
                results = WalkResults()
                for query in queries:
                    results.add_path([query.start_vertex, query.query_id])
                return results

        async def scenario():
            async with WalkService(snap0.graph, SPEC,
                                   engine=NoSwapEngine()) as service:
                before = service.try_submit(2, query_id=0)
                swap = service.try_update_graph(snap1)
                after = service.try_submit(3, query_id=1)
                assert (await before).paths[0].tolist() == [2, 0]
                with pytest.raises(Exception, match="does not support"):
                    await swap
                assert (await after).paths[0].tolist() == [3, 1]
                assert service.epoch == 0

        asyncio.run(scenario())
