"""Hot-walk cache: consume-once pools, epoch safety, replay identity.

The two contracts under test, unit-level and through the service:
every cache hit hands back a path bit-identical to the offline replay
of the reserved query id it carries, and a pool built on epoch ``e`` is
unreachable from any other epoch — structurally (epoch-keyed lookups)
and eagerly (invalidation at swaps and via the DynamicGraph listener).
"""

import asyncio

import numpy as np
import pytest

from repro.dynamic import DynamicGraph
from repro.errors import ReproError, ServeError
from repro.graph import from_edges, powerlaw
from repro.serve import (
    POOL_ID_BASE,
    HotWalkCache,
    ServeConfig,
    WalkService,
    replay_paths,
)
from repro.serve.service import _PoolFill  # noqa: F401  (existence check)
from repro.walks import URWSpec


def drive(coro):
    return asyncio.run(coro)


def ring_epochs():
    """Forward ring (epoch 0) then reversed ring (epoch 1): URW paths on
    degree-1 vertices are deterministic, so a path identifies its epoch."""
    n = 8
    forward = from_edges([(i, (i + 1) % n) for i in range(n)], num_vertices=n)
    dynamic = DynamicGraph(forward)
    snap0 = dynamic.snapshot()
    dynamic.remove_edges([(i, (i + 1) % n) for i in range(n)])
    dynamic.add_edges([(i, (i - 1) % n) for i in range(n)])
    snap1 = dynamic.snapshot()
    return dynamic, snap0, snap1


class TestHotWalkCacheUnit:
    def test_validation(self):
        with pytest.raises(ServeError):
            HotWalkCache(pool_size=0)
        with pytest.raises(ServeError):
            HotWalkCache(hot_threshold=0)
        with pytest.raises(ServeError):
            HotWalkCache(max_pools=0)

    def test_miss_threshold_then_fill_queries(self):
        cache = HotWalkCache(pool_size=4, hot_threshold=3)
        assert cache.note_miss(0, 7) is None
        assert cache.note_miss(0, 7) is None
        queries = cache.note_miss(0, 7)
        assert [q.start_vertex for q in queries] == [7, 7, 7, 7]
        assert all(q.query_id >= POOL_ID_BASE for q in queries)
        # Reserved ids are unique and monotonic across fills.
        more = cache.note_miss(0, 9)
        assert more is None  # first miss for vertex 9
        cache.note_miss(0, 9)
        second = cache.note_miss(0, 9)
        ids = [q.query_id for q in queries] + [q.query_id for q in second]
        assert len(set(ids)) == len(ids)

    def test_no_refill_while_filling(self):
        cache = HotWalkCache(pool_size=2, hot_threshold=1)
        assert cache.note_miss(0, 3) is not None
        # Fill in flight: more misses must not allocate a second pool.
        assert cache.note_miss(0, 3) is None
        cache.fill_aborted(3)
        assert cache.note_miss(0, 3) is not None

    def test_take_consumes_once_in_generation_order(self):
        cache = HotWalkCache(pool_size=2, hot_threshold=1)
        queries = cache.note_miss(0, 5)
        entries = [(q.query_id, np.array([5, i])) for i, q in enumerate(queries)]
        cache.install(0, 5, entries)
        first = cache.take(0, 5)
        second = cache.take(0, 5)
        assert first[0] == queries[0].query_id
        assert second[0] == queries[1].query_id
        assert cache.take(0, 5) is None
        assert cache.live_pools == 0

    def test_take_is_epoch_exact(self):
        cache = HotWalkCache(pool_size=1, hot_threshold=1)
        queries = cache.note_miss(0, 2)
        cache.install(0, 2, [(queries[0].query_id, np.array([2]))])
        assert cache.take(1, 2) is None  # other epoch: structurally invisible
        assert cache.take(0, 2) is not None

    def test_drop_stale_and_listener(self):
        cache = HotWalkCache(pool_size=1, hot_threshold=1)
        for vertex in (1, 2):
            queries = cache.note_miss(0, vertex)
            cache.install(0, vertex, [(queries[0].query_id, np.array([vertex]))])
        assert cache.live_pools == 2
        assert cache.drop_stale(1) == 2
        assert cache.live_pools == 0
        assert cache.pools_invalidated == 2

        dynamic, snap0, snap1 = ring_epochs()
        fresh = HotWalkCache(pool_size=1, hot_threshold=1)
        dynamic.add_epoch_listener(fresh.on_epoch)
        queries = fresh.note_miss(snap1.epoch, 0)
        fresh.install(snap1.epoch, 0, [(queries[0].query_id, np.array([0]))])
        dynamic.add_edges([(0, 3)])
        snap2 = dynamic.snapshot()  # listener fires: epoch-1 pool dies
        assert snap2.epoch == 2
        assert fresh.live_pools == 0

    def test_max_pools_bounds_fills(self):
        cache = HotWalkCache(pool_size=1, hot_threshold=1, max_pools=1)
        queries = cache.note_miss(0, 1)
        cache.install(0, 1, [(queries[0].query_id, np.array([1]))])
        assert cache.note_miss(0, 2) is None  # at the bound
        cache.take(0, 1)  # exhausts the pool
        assert cache.note_miss(0, 2) is not None

    def test_snapshot_counters(self):
        cache = HotWalkCache(pool_size=1, hot_threshold=1)
        queries = cache.note_miss(0, 4)
        cache.install(0, 4, [(queries[0].query_id, np.array([4]))])
        cache.take(0, 4)
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["pools_built"] == 1


class TestServiceCache:
    def test_reserved_ids_rejected_for_clients(self):
        graph = powerlaw(num_vertices=20, num_edges=60, seed=1, name="c")

        async def scenario():
            async with WalkService(graph, URWSpec(max_length=4)) as service:
                with pytest.raises(ServeError, match="reserved"):
                    service.try_submit(0, query_id=POOL_ID_BASE)
                service.reserve_query_ids(10)
                with pytest.raises(ServeError, match="reserved"):
                    service.reserve_query_ids(POOL_ID_BASE)

        drive(scenario())

    def test_hits_are_bit_identical_to_replay(self):
        """The tentpole contract: a hit's path equals the offline replay
        of the pool id it carries — caching is invisible to semantics."""
        graph = powerlaw(num_vertices=30, num_edges=120, seed=2, name="c2")
        spec = URWSpec(max_length=6)
        cache = HotWalkCache(pool_size=8, hot_threshold=2)

        async def scenario():
            config = ServeConfig(max_batch=8, max_wait_ms=0.5, queue_depth=128)
            async with WalkService(graph, spec, seed=9, config=config,
                                   cache=cache) as service:
                walks = []
                for _ in range(6):
                    walks.extend(await asyncio.gather(*[
                        service.submit_cached(3) for _ in range(4)
                    ]))
                return walks

        walks = drive(scenario())
        hits = [w for w in walks if w.cache_hit]
        misses = [w for w in walks if not w.cache_hit]
        assert hits and misses
        # Distinct ids across the whole run: consume-once means no two
        # responses share randomness.
        ids = [w.query_id for w in walks]
        assert len(set(ids)) == len(ids)
        oracle = replay_paths(graph, spec, {w.query_id: 3 for w in walks},
                              seed=9)
        for walk in walks:
            assert np.array_equal(walk.path, oracle[walk.query_id])
        assert all(w.query_id >= POOL_ID_BASE for w in hits)
        assert all(w.query_id < POOL_ID_BASE for w in misses)

    def test_cache_hits_counted_in_stats(self):
        graph = powerlaw(num_vertices=30, num_edges=120, seed=2, name="c3")
        cache = HotWalkCache(pool_size=4, hot_threshold=1)

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=0.5, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=4), seed=9,
                                   config=config, cache=cache) as service:
                await asyncio.gather(*[service.submit_cached(5)
                                       for _ in range(2)])
                await asyncio.gather(*[service.submit_cached(5)
                                       for _ in range(2)])
                stats = service.stats
                assert stats.cache_hits == len(
                    [1 for _ in range(stats.cache_hits)])
                assert stats.cache_hits > 0
                assert stats.completed == 4
                assert stats.offered == 4
                return stats.snapshot()

        snapshot = drive(scenario())
        assert snapshot["cache_hits"] > 0

    def test_epoch_swap_invalidates_pools(self):
        """Post-swap cached responses never surface pre-swap walks: the
        reversed ring makes a stale path detectable on sight."""
        dynamic, snap0, snap1 = ring_epochs()
        spec = URWSpec(max_length=4)
        # pool_size > the pre-swap hit count, so a non-empty epoch-0 pool
        # survives to the swap and must die by invalidation, not exhaustion.
        cache = HotWalkCache(pool_size=8, hot_threshold=1)

        async def scenario():
            config = ServeConfig(max_batch=8, max_wait_ms=0.5, queue_depth=64)
            async with WalkService(snap0, spec, seed=7, config=config,
                                   cache=cache) as service:
                first = []
                for _ in range(3):
                    first.extend(await asyncio.gather(*[
                        service.submit_cached(0) for _ in range(2)
                    ]))
                await service.update_graph(snap1)
                second = []
                for _ in range(3):
                    second.extend(await asyncio.gather(*[
                        service.submit_cached(0) for _ in range(2)
                    ]))
                return first, second

        first, second = drive(scenario())
        assert any(w.cache_hit for w in first)
        assert any(w.cache_hit for w in second)
        assert all(w.epoch == 0 for w in first)
        assert all(w.epoch == 1 for w in second)
        oracle0 = replay_paths(snap0.graph, spec,
                               {w.query_id: 0 for w in first}, seed=7)
        oracle1 = replay_paths(snap1.graph, spec,
                               {w.query_id: 0 for w in second}, seed=7)
        for walk in first:
            assert np.array_equal(walk.path, oracle0[walk.query_id])
        for walk in second:
            assert np.array_equal(walk.path, oracle1[walk.query_id])
        # Pools from epoch 0 were dropped at the swap, not exhausted.
        assert cache.pools_invalidated > 0

    def test_lookup_suspended_while_swap_queued(self):
        """A cached submission between try_update_graph and the swap
        applying must not serve an old-epoch pool entry."""
        dynamic, snap0, snap1 = ring_epochs()
        spec = URWSpec(max_length=4)
        cache = HotWalkCache(pool_size=4, hot_threshold=1)

        async def scenario():
            config = ServeConfig(max_batch=8, max_wait_ms=5.0, queue_depth=64)
            async with WalkService(snap0, spec, seed=7, config=config,
                                   cache=cache) as service:
                for _ in range(2):
                    await asyncio.gather(*[service.submit_cached(0)
                                           for _ in range(2)])
                assert cache.take(0, 0) is not None  # pool is warm
                swap = service.try_update_graph(snap1)
                # Swap queued but not applied: the hit path is closed.
                racing = service.try_submit_cached(0)
                walk = await racing
                await swap
                return walk

        walk = drive(scenario())
        assert not walk.cache_hit
        assert walk.epoch == 1
        oracle = replay_paths(snap1.graph, spec, {walk.query_id: 0}, seed=7)
        assert np.array_equal(walk.path, oracle[walk.query_id])

    def test_engine_failure_aborts_fill(self):
        """A failed micro-batch clears the fill marker so a later miss
        can retry the pool — and fails its clients, not the service."""
        from repro.engines import PreparedEngine
        from repro.walks import WalkResults

        class FlakyEngine(PreparedEngine):
            name = "flaky"

            def __init__(self):
                self.calls = 0

            def run(self, queries, seed=0, stats=None):
                self.calls += 1
                if self.calls == 1:
                    raise ReproError("boom")
                results = WalkResults()
                for query in queries:
                    results.add_path([query.start_vertex, 1])
                return results

            def close(self):
                pass

        graph = powerlaw(num_vertices=20, num_edges=60, seed=1, name="c4")
        cache = HotWalkCache(pool_size=2, hot_threshold=1)

        async def scenario():
            config = ServeConfig(max_batch=4, max_wait_ms=0.5, queue_depth=64)
            async with WalkService(graph, URWSpec(max_length=3),
                                   engine=FlakyEngine(), config=config,
                                   cache=cache) as service:
                first = service.try_submit_cached(2)  # triggers the fill
                with pytest.raises(ReproError):
                    await first
                assert service.stats.failed == 1
                # The aborted fill's marker is gone: the next miss
                # re-triggers, and the retry succeeds.
                second = await service.submit_cached(2)
                third = await service.submit_cached(2)
                assert not second.cache_hit
                assert third.cache_hit
                assert service.stats.offered == (service.stats.completed
                                                 + service.stats.dropped
                                                 + service.stats.failed)

        drive(scenario())

    def test_stop_with_queued_fill_does_not_wedge_cache(self):
        """Regression: a no-drain stop used to discard queued ``_PoolFill``
        items without telling the cache, leaving the vertex marked
        in-flight forever — every later miss saw "a fill is already
        running" and the pool could never be built again."""
        graph = powerlaw(num_vertices=20, num_edges=60, seed=1, name="c5")
        spec = URWSpec(max_length=3)
        cache = HotWalkCache(pool_size=2, hot_threshold=1)
        config = ServeConfig(max_batch=4, max_wait_ms=50.0, queue_depth=64)

        async def interrupted():
            service = WalkService(graph, spec, seed=5, config=config, cache=cache)
            await service.start()
            # Queue the fill and stop before the dispatcher can run it.
            pending = service.try_submit_cached(2)
            await service.stop(drain=False)
            with pytest.raises(ServeError):
                await pending

        drive(interrupted())
        # The vertex must not be stuck "filling": a fresh miss at the
        # threshold re-triggers pool generation on the reused cache.
        assert cache.note_miss(0, 2) is not None
        cache.fill_aborted(2)  # undo the probe's marker

        async def reused():
            fast = ServeConfig(max_batch=4, max_wait_ms=0.5, queue_depth=64)
            async with WalkService(graph, spec, seed=5, config=fast,
                                   cache=cache) as service:
                first = await service.submit_cached(2)
                second = await service.submit_cached(2)
                assert not first.cache_hit
                assert second.cache_hit

        drive(reused())
