"""Unit tests for loader, writer, demux, flat balancer and access engine."""

import pytest

from repro.core import (
    AccessEngine,
    FlatBalancer,
    QueryLoader,
    QueryWriter,
    Task,
    TaskDemux,
    TaskStatus,
    WalkRecorder,
)
from repro.errors import SchedulerError
from repro.memory import ChannelGroup, MemorySpec, MemorySystem
from repro.sim import SimulationKernel
from repro.walks import Query

SPEC = MemorySpec(
    "t", num_channels=4, random_tx_rate_mhz=320, sequential_gbs=10, round_trip_cycles=3
)


class TestQueryLoader:
    def build(self, queries, max_inflight=8, **kw):
        kernel = SimulationKernel()
        out = kernel.make_fifo(16, "out")
        recorder = WalkRecorder()
        loader = QueryLoader(
            "loader", queries, [out], recorder, max_inflight=max_inflight, **kw
        )
        kernel.add_module(loader)
        return kernel, out, recorder, loader

    def test_injects_in_order(self):
        queries = [Query(i, i + 10) for i in range(5)]
        kernel, out, recorder, loader = self.build(queries)
        for _ in range(10):
            kernel.step()
        tasks = []
        while not out.is_empty():
            tasks.append(out.pop())
        assert [t.query_id for t in tasks] == [0, 1, 2, 3, 4]
        assert [t.vertex for t in tasks] == [10, 11, 12, 13, 14]
        assert recorder.started == 5
        assert loader.done()

    def test_respects_inflight_cap(self):
        queries = [Query(i, 0) for i in range(20)]
        kernel, out, recorder, loader = self.build(queries, max_inflight=3)
        for _ in range(20):
            kernel.step()
        assert loader.injected == 3  # nothing finishes, cap holds

    def test_endless_wraps_with_fresh_ids(self):
        queries = [Query(i, i) for i in range(2)]
        kernel, out, recorder, loader = self.build(
            queries, max_inflight=100, endless=True
        )
        for _ in range(12):
            kernel.step()
            while not out.is_empty():
                out.pop()
        assert loader.injected > 2
        assert not loader.done()
        assert recorder.started == loader.injected  # unique ids throughout

    def test_validation(self):
        kernel = SimulationKernel()
        out = kernel.make_fifo(4, "out")
        with pytest.raises(SchedulerError):
            QueryLoader("l", [], [], WalkRecorder(), max_inflight=1)
        with pytest.raises(SchedulerError):
            QueryLoader("l", [], [out], WalkRecorder(), max_inflight=0)
        with pytest.raises(SchedulerError):
            QueryLoader("l", [], [out], WalkRecorder(), max_inflight=1, batch_size=0)


class TestQueryWriter:
    def test_completes_queries(self):
        kernel = SimulationKernel()
        fifos = [kernel.make_fifo(4, f"f{i}") for i in range(2)]
        recorder = WalkRecorder()
        for qid in range(4):
            recorder.start_query(qid, 0)
        writer = QueryWriter("w", fifos, recorder)
        kernel.add_module(writer)
        for qid in range(4):
            fifos[qid % 2].push(Task(query_id=qid, vertex=0,
                                     status=TaskStatus.TERMINATED_LENGTH))
        for _ in range(6):
            kernel.step()
        assert writer.completed == 4
        assert recorder.all_done()


class TestTaskDemux:
    def build(self, bulk=False, max_length=10):
        kernel = SimulationKernel()
        src = kernel.make_fifo(8, "src")
        recirc = kernel.make_fifo(8, "recirc")
        done = kernel.make_fifo(8, "done")
        demux = TaskDemux("d", src, recirc, done,
                          bulk_synchronous=bulk, max_length=max_length)
        kernel.add_module(demux)
        return kernel, src, recirc, done, demux

    def test_running_tasks_recirculate(self):
        kernel, src, recirc, done, _ = self.build()
        task = Task(query_id=0, vertex=1, degree=5, sample_index=2)
        src.push(task)
        for _ in range(4):
            kernel.step()
        out = recirc.pop()
        assert out.query_id == 0
        assert out.degree == -1  # hop state reset
        assert done.is_empty()

    def test_terminal_tasks_finish(self):
        kernel, src, recirc, done, _ = self.build()
        src.push(Task(query_id=1, vertex=1, status=TaskStatus.TERMINATED_DANGLING))
        for _ in range(4):
            kernel.step()
        assert done.pop().query_id == 1
        assert recirc.is_empty()

    def test_bulk_mode_converts_early_death_to_ghost(self):
        kernel, src, recirc, done, demux = self.build(bulk=True, max_length=10)
        src.push(Task(query_id=2, vertex=1, step=3,
                      status=TaskStatus.TERMINATED_DANGLING))
        for _ in range(4):
            kernel.step()
        ghost = recirc.pop()
        assert ghost.is_ghost()
        assert ghost.step == 4  # the conversion lap counted
        assert demux.ghost_laps == 1

    def test_ghost_retires_at_walk_length(self):
        kernel, src, recirc, done, _ = self.build(bulk=True, max_length=5)
        src.push(Task(query_id=3, vertex=1, step=4, status=TaskStatus.GHOST))
        for _ in range(4):
            kernel.step()
        finished = done.pop()
        assert finished.status is TaskStatus.TERMINATED_LENGTH

    def test_bulk_demux_needs_length(self):
        kernel = SimulationKernel()
        f = kernel.make_fifo(2, "f")
        with pytest.raises(SchedulerError):
            TaskDemux("d", f, f, f, bulk_synchronous=True, max_length=0)


class TestFlatBalancer:
    def test_work_conserving_spread(self):
        kernel = SimulationKernel()
        ins = [kernel.make_fifo(32, f"i{k}") for k in range(2)]
        outs = [kernel.make_fifo(32, f"o{k}") for k in range(4)]
        balancer = FlatBalancer("b", ins, outs, latency=3)
        kernel.add_module(balancer)
        for i in range(24):
            ins[i % 2].push(Task(query_id=i, vertex=0))
        for _ in range(40):
            kernel.step()
        counts = [o.occupancy() for o in outs]
        assert sum(counts) == 24
        assert max(counts) - min(counts) <= 2  # near-even spread

    def test_latency_validation(self):
        kernel = SimulationKernel()
        f = kernel.make_fifo(2, "f")
        with pytest.raises(SchedulerError):
            FlatBalancer("b", [f], [f], latency=0)


class TestAccessEngineBypass:
    def test_terminated_tasks_skip_memory(self):
        kernel = SimulationKernel()
        memory = kernel.add_memory(
            MemorySystem(SPEC, core_mhz=320, num_row_channels=2, num_column_channels=2)
        )
        src = kernel.make_fifo(8, "src")
        dst = kernel.make_fifo(8, "dst")
        resp = kernel.make_fifo(8, "resp")
        engine = AccessEngine(
            "e", src, dst, resp, memory,
            route=lambda t: (ChannelGroup.ROW, 0, 1),
            on_response=lambda t, c: None,
            outstanding_capacity=4,
        )
        kernel.add_module(engine)
        src.push(Task(query_id=0, vertex=0, status=TaskStatus.TERMINATED_LENGTH))
        for _ in range(4):
            kernel.step()
        assert dst.pop().query_id == 0
        assert engine.requests_issued == 0

    def test_running_tasks_round_trip_through_memory(self):
        kernel = SimulationKernel()
        memory = kernel.add_memory(
            MemorySystem(SPEC, core_mhz=320, num_row_channels=2, num_column_channels=2)
        )
        from repro.core import ResponseRouter

        src = kernel.make_fifo(8, "src")
        dst = kernel.make_fifo(8, "dst")
        resp = kernel.make_fifo(8, "resp")
        touched = []
        engine = AccessEngine(
            "e", src, dst, resp, memory,
            route=lambda t: (ChannelGroup.ROW, 1, 1),
            on_response=lambda t, c: touched.append(t.query_id),
            outstanding_capacity=4,
        )
        kernel.add_module(engine)
        kernel.add_module(ResponseRouter("r", memory))
        src.push(Task(query_id=7, vertex=3))
        for _ in range(15):
            kernel.step()
        assert touched == [7]
        assert dst.pop().query_id == 7
        assert engine.requests_issued == 1
        assert engine.outstanding == 0
