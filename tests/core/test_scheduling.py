"""Unit tests for Dispatcher (Alg VI.1) and Merger (Alg VI.2)."""

import pytest

from repro.core import Dispatcher, Merger
from repro.errors import SchedulerError
from repro.sim import SimulationKernel


def drain(fifo):
    out = []
    while not fifo.is_empty():
        out.append(fifo.pop())
    return out


class TestDispatcher:
    def build(self, out_capacity=8):
        kernel = SimulationKernel()
        src = kernel.make_fifo(32, "src")
        out0 = kernel.make_fifo(out_capacity, "out0")
        out1 = kernel.make_fifo(out_capacity, "out1")
        d = Dispatcher("d", src, out0, out1)
        kernel.add_module(d)
        return kernel, src, out0, out1, d

    def test_alternates_when_both_free(self):
        kernel, src, out0, out1, d = self.build()
        for i in range(10):
            src.push(i)
        for _ in range(30):
            kernel.step()
        assert d.sent == [5, 5]

    def test_no_items_lost(self):
        kernel, src, out0, out1, _ = self.build(out_capacity=32)
        for i in range(20):
            src.push(i)
        for _ in range(50):
            kernel.step()
        items = drain(out0) + drain(out1)
        assert sorted(items) == list(range(20))

    def test_routes_around_full_output(self):
        kernel, src, out0, out1, d = self.build(out_capacity=2)
        # Nothing drains out0; after it fills, everything must go to out1.
        for i in range(12):
            src.push(i)
        for _ in range(40):
            kernel.step()
            drain(out1)  # keep out1 empty
        assert out0.occupancy() == 2
        assert d.sent[1] == 10

    def test_two_cycle_latency(self):
        kernel, src, out0, out1, _ = self.build()
        src.push("x")
        kernel.step()  # accept (cycle 0) — becomes visible to module at 1
        kernel.step()
        kernel.step()
        kernel.step()
        kernel.step()
        assert not (out0.is_empty() and out1.is_empty())

    def test_throughput_ii_one(self):
        kernel, src, out0, out1, d = self.build(out_capacity=64)
        for i in range(30):
            src.push(i)
        cycles = 0
        while d.stats.items_processed < 30 and cycles < 100:
            kernel.step()
            cycles += 1
        assert cycles <= 30 + 6

    def test_commit_patience_escapes_wedge(self):
        # Both outputs full; the committed one never drains; the other
        # does.  The dispatcher must escape within the patience window.
        kernel, src, out0, out1, d = self.build(out_capacity=1)
        for i in range(4):
            src.push(i)
        for _ in range(4):
            kernel.step()
        # out0 and out1 now hold one item each (full). Drain only out1.
        for _ in range(Dispatcher.COMMIT_PATIENCE + 20):
            drain(out1)
            kernel.step()
        assert d.stats.items_processed >= 3

    def test_latency_validation(self):
        kernel = SimulationKernel()
        f = kernel.make_fifo(2, "f")
        with pytest.raises(SchedulerError):
            Dispatcher("d", f, f, f, latency=0)


class TestMerger:
    def build(self, priority=None):
        kernel = SimulationKernel()
        in0 = kernel.make_fifo(16, "in0")
        in1 = kernel.make_fifo(16, "in1")
        out = kernel.make_fifo(64, "out")
        m = Merger("m", in0, in1, out, priority_input=priority)
        kernel.add_module(m)
        return kernel, in0, in1, out, m

    def test_alternates_between_busy_inputs(self):
        kernel, in0, in1, out, m = self.build()
        for i in range(8):
            in0.push(("a", i))
            in1.push(("b", i))
        for _ in range(40):
            kernel.step()
        assert m.received == [8, 8]
        # strict alternation in the output order
        labels = [label for label, _ in drain(out)]
        assert labels[:6] in (["a", "b"] * 3, ["b", "a"] * 3)

    def test_forwards_single_busy_input(self):
        kernel, in0, in1, out, m = self.build()
        for i in range(5):
            in1.push(i)
        for _ in range(20):
            kernel.step()
        assert drain(out) == [0, 1, 2, 3, 4]

    def test_priority_input_preempts(self):
        kernel, in0, in1, out, m = self.build(priority=0)
        for i in range(6):
            in0.push(("recirc", i))
            in1.push(("new", i))
        for _ in range(40):
            kernel.step()
        labels = [label for label, _ in drain(out)]
        # all recirculated tasks come out before any new one
        assert labels[:6] == ["recirc"] * 6

    def test_priority_falls_back_when_empty(self):
        kernel, in0, in1, out, m = self.build(priority=0)
        in1.push("new-only")
        for _ in range(10):
            kernel.step()
        assert drain(out) == ["new-only"]

    def test_backpressure_respected(self):
        kernel = SimulationKernel()
        in0 = kernel.make_fifo(16, "in0")
        in1 = kernel.make_fifo(16, "in1")
        out = kernel.make_fifo(1, "out")
        m = Merger("m", in0, in1, out)
        kernel.add_module(m)
        for i in range(6):
            in0.push(i)
        for _ in range(20):
            kernel.step()
        assert out.occupancy() == 1
        assert m.stats.blocked_cycles > 0

    def test_no_items_lost_under_contention(self):
        kernel, in0, in1, out, m = self.build()
        for i in range(12):
            in0.push(i)
        for i in range(100, 107):
            in1.push(i)
        for _ in range(60):
            kernel.step()
        assert sorted(drain(out)) == sorted(list(range(12)) + list(range(100, 107)))

    def test_priority_validation(self):
        kernel = SimulationKernel()
        f = kernel.make_fifo(2, "f")
        with pytest.raises(SchedulerError):
            Merger("m", f, f, f, priority_input=2)
