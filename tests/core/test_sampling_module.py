"""Unit tests for the Sampling stage and its cost model."""

import pytest

from repro.core import SamplingModule, Task, TaskStatus, sampling_service_cycles
from repro.core.sampling_module import (
    MAX_SCAN_BURST_WORDS,
    SCAN_WORDS_PER_CYCLE,
    column_burst_words,
)
from repro.errors import SimulationError
from repro.graph import from_edges
from repro.sampling import (
    AliasSampler,
    NumpyRandomSource,
    RejectionSampler,
    ReservoirSampler,
    SampleOutcome,
    UniformSampler,
)
from repro.sim import SimulationKernel
from repro.walks import URWSpec

import numpy as np


class TestCostModel:
    def test_uniform_and_alias_are_single_cycle(self):
        outcome = SampleOutcome(index=0)
        assert sampling_service_cycles(UniformSampler(), outcome, degree=100) == 1
        assert sampling_service_cycles(AliasSampler(), outcome, degree=100) == 1

    def test_rejection_costs_proposals(self):
        outcome = SampleOutcome(index=0, proposals=7)
        assert sampling_service_cycles(RejectionSampler(), outcome, degree=10) == 7

    def test_reservoir_scans_by_beat(self):
        outcome = SampleOutcome(index=0)
        sampler = ReservoirSampler()
        assert sampling_service_cycles(sampler, outcome, degree=8) == 1
        assert sampling_service_cycles(sampler, outcome, degree=17) == 3
        # capped at one tile
        assert (
            sampling_service_cycles(sampler, outcome, degree=10_000)
            == MAX_SCAN_BURST_WORDS // SCAN_WORDS_PER_CYCLE
        )

    def test_column_burst_words(self):
        outcome = SampleOutcome(index=0, neighbor_reads=5)
        assert column_burst_words(UniformSampler(), outcome, degree=50) == 1
        assert column_burst_words(AliasSampler(), outcome, degree=50) == 2
        assert column_burst_words(ReservoirSampler(), outcome, degree=20) == 20
        assert column_burst_words(ReservoirSampler(), outcome, degree=500) == 64
        assert column_burst_words(RejectionSampler(), outcome, degree=50) == 5


class TestSamplingModule:
    def build(self, graph, spec, sampler):
        kernel = SimulationKernel()
        src = kernel.make_fifo(8, "src")
        dst = kernel.make_fifo(8, "dst")
        module = SamplingModule(
            "sp", src, dst, graph, spec, sampler,
            NumpyRandomSource(np.random.default_rng(1)),
        )
        kernel.add_module(module)
        return kernel, src, dst, module

    def graph(self):
        return from_edges([(0, 1), (0, 2), (0, 3), (1, 0)], num_vertices=4)

    def test_samples_running_task(self):
        g = self.graph()
        kernel, src, dst, module = self.build(g, URWSpec(max_length=5), UniformSampler())
        task = Task(query_id=0, vertex=0, degree=3, column_address=0)
        src.push(task)
        for _ in range(5):
            kernel.step()
        out = dst.pop()
        assert 0 <= out.sample_index < 3
        assert module.samples_taken == 1

    def test_passthrough_for_terminated(self):
        g = self.graph()
        kernel, src, dst, module = self.build(g, URWSpec(max_length=5), UniformSampler())
        src.push(Task(query_id=0, vertex=0, status=TaskStatus.TERMINATED_DANGLING))
        for _ in range(5):
            kernel.step()
        assert dst.pop().status is TaskStatus.TERMINATED_DANGLING
        assert module.samples_taken == 0

    def test_zero_degree_running_task_is_a_bug(self):
        g = self.graph()
        kernel, src, dst, module = self.build(g, URWSpec(max_length=5), UniformSampler())
        src.push(Task(query_id=0, vertex=0, degree=0))
        with pytest.raises(SimulationError, match="dangling"):
            for _ in range(5):
                kernel.step()

    def test_ii_one_for_uniform(self):
        g = self.graph()
        kernel, src, dst, module = self.build(g, URWSpec(max_length=5), UniformSampler())
        for i in range(6):
            src.push(Task(query_id=i, vertex=0, degree=3, column_address=0))
        cycles = 0
        while dst.occupancy() < 6 and cycles < 40:
            kernel.step()
            cycles += 1
        assert cycles <= 12  # 6 tasks, 1/cycle + pipeline fill
