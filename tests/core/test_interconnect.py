"""Unit tests for the butterfly balancer, router and distribution tree."""

from dataclasses import dataclass

import pytest

from repro.core import ButterflyBalancer, ButterflyRouter, DistributionTree
from repro.errors import SchedulerError
from repro.sim import SimulationKernel


@dataclass
class Packet:
    value: int
    dest: int = 0


def build_fifos(kernel, n, capacity, prefix):
    return [kernel.make_fifo(capacity, f"{prefix}{i}") for i in range(n)]


def drain(fifo):
    out = []
    while not fifo.is_empty():
        out.append(fifo.pop())
    return out


class TestButterflyBalancer:
    def test_width_must_be_power_of_two(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 3, 8, "i")
        outs = build_fifos(kernel, 3, 8, "o")
        with pytest.raises(SchedulerError, match="power of two"):
            ButterflyBalancer(kernel, "b", ins, outs)

    def test_mismatched_widths_rejected(self):
        kernel = SimulationKernel()
        with pytest.raises(SchedulerError, match="equal"):
            ButterflyBalancer(
                kernel, "b", build_fifos(kernel, 4, 8, "i"), build_fifos(kernel, 2, 8, "o")
            )

    def test_no_items_lost(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 4, 16, "i")
        outs = build_fifos(kernel, 4, 64, "o")
        ButterflyBalancer(kernel, "b", ins, outs)
        for k, fifo in enumerate(ins):
            for i in range(10):
                fifo.push(Packet(value=k * 100 + i))
        for _ in range(120):
            kernel.step()
        received = [p.value for f in outs for p in drain(f)]
        assert sorted(received) == sorted(k * 100 + i for k in range(4) for i in range(10))

    def test_single_input_spreads_to_all_outputs(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 4, 64, "i")
        outs = build_fifos(kernel, 4, 64, "o")
        ButterflyBalancer(kernel, "b", ins, outs)
        for i in range(40):
            ins[0].push(Packet(value=i))
        for _ in range(150):
            kernel.step()
        counts = [len(drain(f)) for f in outs]
        assert sum(counts) == 40
        assert all(c >= 5 for c in counts), f"unbalanced spread: {counts}"

    def test_congestion_routes_around_slow_output(self):
        # Figure 7b's example: one throttled output must not capture flow.
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 4, 64, "i")
        outs = build_fifos(kernel, 4, 4, "o")
        ButterflyBalancer(kernel, "b", ins, outs)
        for i in range(60):
            ins[i % 4].push(Packet(value=i))
        delivered = [0, 0, 0, 0]
        for cycle in range(300):
            kernel.step()
            for k, f in enumerate(outs):
                if k == 0:
                    continue  # output 0 never drained (throttled)
                got = drain(f)
                delivered[k] += len(got)
        assert sum(delivered) + outs[0].occupancy() >= 50
        assert min(delivered[1:]) > 5

    def test_width_one_forwarder(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 1, 8, "i")
        outs = build_fifos(kernel, 1, 8, "o")
        ButterflyBalancer(kernel, "b", ins, outs)
        ins[0].push(Packet(value=7))
        for _ in range(5):
            kernel.step()
        assert drain(outs[0])[0].value == 7

    def test_latency_bound(self):
        kernel = SimulationKernel()
        b = ButterflyBalancer(
            kernel, "b", build_fifos(kernel, 8, 4, "i"), build_fifos(kernel, 8, 4, "o")
        )
        assert b.latency_bound == 12  # 3 stages * 4 cycles


class TestButterflyRouter:
    def test_routes_to_destination(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 4, 32, "i")
        outs = build_fifos(kernel, 4, 64, "o")
        ButterflyRouter(kernel, "r", ins, outs)
        for src in range(4):
            for dest in range(4):
                ins[src].push(Packet(value=src * 10 + dest, dest=dest))
        for _ in range(150):
            kernel.step()
        for dest, fifo in enumerate(outs):
            got = drain(fifo)
            assert len(got) == 4, f"dest {dest} got {len(got)}"
            assert all(p.dest == dest for p in got)

    def test_per_source_dest_order_preserved(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 4, 32, "i")
        outs = build_fifos(kernel, 4, 64, "o")
        ButterflyRouter(kernel, "r", ins, outs)
        for i in range(10):
            ins[2].push(Packet(value=i, dest=3))
        for _ in range(100):
            kernel.step()
        assert [p.value for p in drain(outs[3])] == list(range(10))

    def test_width_one(self):
        kernel = SimulationKernel()
        ins = build_fifos(kernel, 1, 8, "i")
        outs = build_fifos(kernel, 1, 8, "o")
        ButterflyRouter(kernel, "r", ins, outs)
        ins[0].push(Packet(value=1, dest=0))
        for _ in range(5):
            kernel.step()
        assert len(drain(outs[0])) == 1


class TestDistributionTree:
    def test_distributes_from_one_root(self):
        kernel = SimulationKernel()
        root = kernel.make_fifo(64, "root")
        outs = build_fifos(kernel, 8, 64, "o")
        DistributionTree(kernel, "t", root, outs)
        for i in range(64):
            root.push(Packet(value=i))
        for _ in range(200):
            kernel.step()
        counts = [len(drain(f)) for f in outs]
        assert sum(counts) == 64
        assert all(c == 8 for c in counts), f"uneven: {counts}"

    def test_width_one(self):
        kernel = SimulationKernel()
        root = kernel.make_fifo(4, "root")
        outs = build_fifos(kernel, 1, 4, "o")
        DistributionTree(kernel, "t", root, outs)
        root.push(Packet(value=9))
        for _ in range(5):
            kernel.step()
        assert drain(outs[0])[0].value == 9

    def test_non_power_of_two_rejected(self):
        kernel = SimulationKernel()
        root = kernel.make_fifo(4, "root")
        with pytest.raises(SchedulerError):
            DistributionTree(kernel, "t", root, build_fifos(kernel, 3, 4, "o"))
