"""Unit tests for tasks, the walk recorder, and configuration."""

import pytest

from repro.core import (
    RidgeWalkerConfig,
    Task,
    TaskStatus,
    WalkRecorder,
    theorem_fifo_depth,
)
from repro.errors import SchedulerError, SimulationError
from repro.memory.spec import DDR4_U250, HBM2_U55C


class TestTask:
    def test_defaults(self):
        t = Task(query_id=1, vertex=5)
        assert t.is_running()
        assert not t.is_terminal()
        assert t.needs_memory()

    def test_terminal_statuses(self):
        for status in (
            TaskStatus.TERMINATED_DANGLING,
            TaskStatus.TERMINATED_FILTERED,
            TaskStatus.TERMINATED_PROBABILISTIC,
            TaskStatus.TERMINATED_LENGTH,
        ):
            t = Task(query_id=0, vertex=0, status=status)
            assert t.is_terminal()
            assert not t.needs_memory()

    def test_ghost_is_not_terminal_but_uses_memory(self):
        t = Task(query_id=0, vertex=0, status=TaskStatus.GHOST)
        assert not t.is_terminal()
        assert t.is_ghost()
        assert t.needs_memory()  # dead slots still burn bandwidth

    def test_reset_hop_state(self):
        t = Task(query_id=0, vertex=0, degree=5, column_channel=3,
                 column_address=10, sample_index=2, column_burst_words=4)
        t.reset_hop_state()
        assert t.degree == -1
        assert t.sample_index == -1
        assert t.column_burst_words == 1

    def test_packed_bits_within_one_beat(self):
        # The paper bounds the task word at 512 bits (Section V-C).
        assert Task.packed_bits() <= 512


class TestWalkRecorder:
    def test_round_trip(self):
        r = WalkRecorder()
        r.start_query(0, 5)
        r.record_hop(0, 6)
        r.record_hop(0, 7)
        r.finish_query(0)
        results = r.to_results()
        assert results.path_of(0).tolist() == [5, 6, 7]
        assert results.total_steps == 2

    def test_out_of_order_queries(self):
        r = WalkRecorder()
        r.start_query(1, 10)
        r.start_query(0, 20)
        r.record_hop(1, 11)
        r.finish_query(1)
        r.finish_query(0)
        results = r.to_results()
        assert results.path_of(0).tolist() == [20]
        assert results.path_of(1).tolist() == [10, 11]

    def test_double_start_rejected(self):
        r = WalkRecorder()
        r.start_query(0, 1)
        with pytest.raises(SimulationError, match="twice"):
            r.start_query(0, 2)

    def test_hop_for_unknown_query_rejected(self):
        with pytest.raises(SimulationError, match="unknown"):
            WalkRecorder().record_hop(3, 1)

    def test_hop_after_finish_rejected(self):
        r = WalkRecorder()
        r.start_query(0, 1)
        r.finish_query(0)
        with pytest.raises(SimulationError, match="after"):
            r.record_hop(0, 2)

    def test_double_finish_rejected(self):
        r = WalkRecorder()
        r.start_query(0, 1)
        r.finish_query(0)
        with pytest.raises(SimulationError, match="twice"):
            r.finish_query(0)

    def test_results_require_all_done(self):
        r = WalkRecorder()
        r.start_query(0, 1)
        with pytest.raises(SimulationError, match="unfinished"):
            r.to_results()


class TestTheoremDepth:
    def test_formula(self):
        # D = 1 + 4*log2(N) per pipeline (Section VI-D).
        assert theorem_fifo_depth(1) == 1
        assert theorem_fifo_depth(2) == 5
        assert theorem_fifo_depth(4) == 9
        assert theorem_fifo_depth(16) == 17

    def test_validation(self):
        with pytest.raises(SchedulerError):
            theorem_fifo_depth(0)


class TestConfig:
    def test_defaults_are_paper_values(self):
        cfg = RidgeWalkerConfig(num_pipelines=16, memory=HBM2_U55C)
        assert cfg.core_mhz == 320.0
        assert cfg.engine_outstanding == 128
        assert cfg.effective_fifo_depth == 17
        assert cfg.scheduler_latency_cycles == 16  # 4*log2(16)

    def test_power_of_two_pipelines_required(self):
        with pytest.raises(SchedulerError, match="power of two"):
            RidgeWalkerConfig(num_pipelines=3)

    def test_channel_budget_enforced(self):
        with pytest.raises(SchedulerError, match="channels"):
            RidgeWalkerConfig(num_pipelines=4, memory=DDR4_U250)

    def test_ddr4_supports_two_pipelines(self):
        cfg = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250)
        assert cfg.peak_msteps_per_second() == pytest.approx(320.0)

    def test_sync_switch_changes_outstanding(self):
        sync = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250, async_memory=False)
        assert sync.effective_outstanding == sync.sync_outstanding
        full = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250)
        assert full.effective_outstanding == 128

    def test_bulk_requires_static(self):
        with pytest.raises(SchedulerError, match="static"):
            RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250, bulk_synchronous=True)

    def test_explicit_fifo_depth_override(self):
        cfg = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250, pipeline_fifo_depth=3)
        assert cfg.effective_fifo_depth == 3

    def test_inflight_limit_tracks_recirc_capacity(self):
        cfg = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250, recirculation_depth=100)
        assert cfg.safe_inflight_limit() == int(2 * 100 * 0.8)

    def test_explicit_inflight_override(self):
        cfg = RidgeWalkerConfig(
            num_pipelines=2, memory=DDR4_U250, max_inflight_queries=42
        )
        assert cfg.safe_inflight_limit() == 42

    def test_peak_tx_per_cycle(self):
        cfg = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250)
        assert cfg.peak_random_tx_per_cycle() == pytest.approx(2 * 2 * 160 / 320)

    def test_scheduler_detail_validation(self):
        with pytest.raises(SchedulerError):
            RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250, scheduler_detail="magic")
