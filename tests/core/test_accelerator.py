"""Integration tests for the full RidgeWalker machine (small configs)."""

import numpy as np
import pytest

from repro.core import RidgeWalker, RidgeWalkerConfig, run_ridgewalker
from repro.errors import WalkConfigError
from repro.graph import cycle_graph, load_dataset, path_graph
from repro.graph.datasets import assign_metapath_schema
from repro.memory.spec import MemorySpec
from repro.walks import (
    DeepWalkSpec,
    MetaPathSpec,
    Node2VecSpec,
    PPRSpec,
    Query,
    URWSpec,
    make_queries,
)

#: Small, fast memory spec for unit-level integration tests.
FAST_MEM = MemorySpec(
    "fast-test",
    num_channels=8,
    random_tx_rate_mhz=320.0,
    sequential_gbs=80.0,
    round_trip_cycles=12,
    max_outstanding=16,
)


def small_config(**kw):
    defaults = dict(num_pipelines=2, memory=FAST_MEM, recirculation_depth=32)
    defaults.update(kw)
    return RidgeWalkerConfig(**defaults)


class TestExactPaths:
    def test_cycle_graph_paths_deterministic(self):
        g = cycle_graph(10)
        run = run_ridgewalker(
            g, URWSpec(max_length=7), [Query(0, 3)], config=small_config(), seed=1
        )
        assert run.results.path_of(0).tolist() == [3, 4, 5, 6, 7, 8, 9, 0]

    def test_walk_terminates_at_dangling(self):
        g = path_graph(5)
        run = run_ridgewalker(
            g, URWSpec(max_length=80), [Query(0, 2)], config=small_config(), seed=1
        )
        assert run.results.path_of(0).tolist() == [2, 3, 4]

    def test_every_hop_is_an_edge(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        qs = make_queries(g, 24, seed=2)
        run = run_ridgewalker(g, URWSpec(max_length=20), qs, config=small_config(), seed=3)
        for path in run.results.paths:
            for a, b in zip(path[:-1], path[1:]):
                assert g.has_edge(int(a), int(b))

    def test_max_length_respected(self):
        g = cycle_graph(5)
        qs = [Query(i, i % 5) for i in range(8)]
        run = run_ridgewalker(g, URWSpec(max_length=12), qs, config=small_config(), seed=1)
        assert all(length == 12 for length in run.results.lengths())

    def test_reproducible_across_runs(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        qs = make_queries(g, 16, seed=4)
        a = run_ridgewalker(g, URWSpec(max_length=15), qs, config=small_config(), seed=7)
        b = run_ridgewalker(g, URWSpec(max_length=15), qs, config=small_config(), seed=7)
        for pa, pb in zip(a.results.paths, b.results.paths):
            assert np.array_equal(pa, pb)
        assert a.metrics.cycles == b.metrics.cycles

    def test_different_seeds_differ(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        qs = make_queries(g, 16, seed=4)
        a = run_ridgewalker(g, URWSpec(max_length=15), qs, config=small_config(), seed=7)
        b = run_ridgewalker(g, URWSpec(max_length=15), qs, config=small_config(), seed=8)
        assert any(
            not np.array_equal(pa, pb) for pa, pb in zip(a.results.paths, b.results.paths)
        )


class TestAllAlgorithms:
    def test_ppr_walks_terminate_early(self):
        g = cycle_graph(100)
        qs = [Query(i, 0) for i in range(64)]
        run = run_ridgewalker(
            g, PPRSpec(alpha=0.3, max_length=80), qs, config=small_config(), seed=2
        )
        lengths = run.results.lengths()
        assert lengths.mean() < 15  # geometric with mean ~3.3
        assert lengths.min() >= 1

    def test_deepwalk_on_weighted_graph(self):
        g = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        qs = make_queries(g, 16, seed=3)
        run = run_ridgewalker(g, DeepWalkSpec(max_length=10), qs, config=small_config(), seed=4)
        assert run.results.total_steps > 0

    def test_node2vec_rejection(self):
        g = load_dataset("AS", scale=0.1, seed=1)
        qs = make_queries(g, 12, seed=5)
        run = run_ridgewalker(
            g, Node2VecSpec(max_length=10, strategy="rejection"),
            qs, config=small_config(), seed=6,
        )
        assert run.results.total_steps > 0

    def test_node2vec_never_backtracks_with_huge_p(self):
        from repro.graph import from_edges
        g = from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)], num_vertices=3
        )
        qs = [Query(i, 0) for i in range(12)]
        run = run_ridgewalker(
            g, Node2VecSpec(p=1e9, q=1.0, max_length=30), qs, config=small_config(), seed=7
        )
        for path in run.results.paths:
            for i in range(2, path.size):
                assert path[i] != path[i - 2]

    def test_metapath_follows_pattern_and_terminates_early(self):
        g = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        g = assign_metapath_schema(g, num_types=3, seed=8)
        pattern = [0, 1]
        qs = make_queries(g, 16, seed=9)
        run = run_ridgewalker(
            g, MetaPathSpec(pattern=pattern, max_length=12), qs, config=small_config(), seed=10
        )
        for path in run.results.paths:
            for hop, dst in enumerate(path[1:]):
                assert int(g.vertex_types[int(dst)]) == pattern[hop % 2]


class TestModesAndMetrics:
    def test_static_mode_completes(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        qs = make_queries(g, 32, seed=2)
        cfg = small_config(dynamic_scheduling=False)
        run = run_ridgewalker(g, URWSpec(max_length=10), qs, config=cfg, seed=3)
        assert run.results.num_queries == 32

    def test_bulk_synchronous_produces_ghost_laps(self):
        g = load_dataset("WG", scale=0.2, seed=1)  # directed: early deaths
        qs = make_queries(g, 32, seed=2)
        cfg = small_config(dynamic_scheduling=False, bulk_synchronous=True)
        run = run_ridgewalker(g, URWSpec(max_length=30), qs, config=cfg, seed=3)
        assert run.metrics.extra["ghost_laps"] > 0
        # paths are unaffected by ghosts
        assert run.results.num_queries == 32

    def test_dynamic_mode_has_no_ghosts(self):
        g = load_dataset("WG", scale=0.2, seed=1)
        qs = make_queries(g, 32, seed=2)
        run = run_ridgewalker(g, URWSpec(max_length=30), qs, config=small_config(), seed=3)
        assert run.metrics.extra["ghost_laps"] == 0

    def test_sync_mode_slower_than_async(self):
        g = load_dataset("AS", scale=0.1, seed=1)
        qs = make_queries(g, 48, seed=2)
        fast = run_ridgewalker(
            g, URWSpec(max_length=20), qs, config=small_config(), seed=3
        )
        slow = run_ridgewalker(
            g, URWSpec(max_length=20), qs, config=small_config(async_memory=False), seed=3
        )
        assert slow.metrics.cycles > fast.metrics.cycles

    def test_metrics_accounting(self):
        g = cycle_graph(20)
        qs = [Query(i, i % 20) for i in range(16)]
        run = run_ridgewalker(g, URWSpec(max_length=10), qs, config=small_config(), seed=1)
        m = run.metrics
        assert m.total_steps == 160
        # URW: one row + one column transaction per step
        assert m.random_transactions == pytest.approx(2 * 160, abs=5)
        assert m.msteps_per_second() > 0
        assert 0 <= m.bubble_ratio() <= 1

    def test_flat_scheduler_equivalent_results(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        qs = make_queries(g, 24, seed=2)
        flat = run_ridgewalker(
            g, URWSpec(max_length=12), qs, config=small_config(scheduler_detail="flat"), seed=5
        )
        assert flat.results.num_queries == 24
        for path in flat.results.paths:
            for a, b in zip(path[:-1], path[1:]):
                assert g.has_edge(int(a), int(b))

    def test_empty_queries_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(WalkConfigError):
            RidgeWalker(g, URWSpec(), small_config()).run([])


class TestStreaming:
    def test_streaming_metrics(self):
        g = load_dataset("AS", scale=0.1, seed=1)
        qs = make_queries(g, 64, seed=2)
        rw = RidgeWalker(g, URWSpec(max_length=40), small_config(), seed=3)
        metrics = rw.run_streaming(qs, warmup_cycles=500, measure_cycles=2000)
        assert metrics.cycles == 2000
        assert metrics.total_steps > 0
        assert metrics.msteps_per_second() > 0

    def test_streaming_excludes_warmup(self):
        g = load_dataset("AS", scale=0.1, seed=1)
        qs = make_queries(g, 64, seed=2)
        rw = RidgeWalker(g, URWSpec(max_length=40), small_config(), seed=3)
        short = rw.run_streaming(qs, warmup_cycles=0, measure_cycles=400)
        rw2 = RidgeWalker(g, URWSpec(max_length=40), small_config(), seed=3)
        warmed = rw2.run_streaming(qs, warmup_cycles=2000, measure_cycles=400)
        # warmed-up machine is at steady state: strictly more work done
        assert warmed.total_steps > short.total_steps

    def test_streaming_validation(self):
        g = cycle_graph(4)
        rw = RidgeWalker(g, URWSpec(), small_config())
        with pytest.raises(WalkConfigError):
            rw.run_streaming([], measure_cycles=100)
        with pytest.raises(WalkConfigError):
            rw.run_streaming([Query(0, 0)], measure_cycles=0)
