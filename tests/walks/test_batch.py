"""Unit and equivalence tests for the vectorized batch walk engine.

The batch engine must be a drop-in alternative to the reference loop:
identical semantics on deterministic graphs, identical EngineStats
accounting contracts, and statistically indistinguishable visit
distributions on every walk spec (chi-square, the same oracle the
hardware simulator is held to).
"""

import numpy as np
import pytest
from stat_helpers import CHI_SQUARE_ALPHA, chi_square_compare

from repro.errors import SamplingError
from repro.graph import cycle_graph, from_edges, load_dataset, path_graph
from repro.graph.datasets import assign_metapath_schema
from repro.walks import (
    DeepWalkSpec,
    EngineStats,
    MetaPathSpec,
    Node2VecSpec,
    PPRSpec,
    Query,
    URWSpec,
    estimate_ppr,
    make_queries,
    run_walks,
    run_walks_batch,
)


class TestBasicSemantics:
    def test_cycle_walk_is_deterministic_path(self):
        g = cycle_graph(5)
        results = run_walks_batch(g, URWSpec(max_length=7), [Query(0, 0)], seed=1)
        assert results.path_of(0).tolist() == [0, 1, 2, 3, 4, 0, 1, 2]

    def test_walk_stops_at_dangling_vertex(self):
        g = path_graph(4)
        results = run_walks_batch(g, URWSpec(max_length=80), [Query(0, 0)], seed=1)
        assert results.path_of(0).tolist() == [0, 1, 2, 3]

    def test_walk_from_dangling_start_has_zero_hops(self):
        g = path_graph(2)
        results = run_walks_batch(g, URWSpec(max_length=10), [Query(0, 1)], seed=1)
        assert results.path_of(0).tolist() == [1]
        assert results.total_steps == 0

    def test_zero_queries(self):
        g = cycle_graph(3)
        results = run_walks_batch(g, URWSpec(max_length=5), [], seed=1)
        assert results.num_queries == 0
        assert results.total_steps == 0

    def test_single_step_walks(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        qs = make_queries(g, 16, seed=2)
        results = run_walks_batch(g, URWSpec(max_length=1), qs, seed=3)
        assert all(results.lengths() == 1)
        for path in results.paths:
            assert g.has_edge(int(path[0]), int(path[1]))

    def test_max_length_respected(self):
        g = cycle_graph(3)
        results = run_walks_batch(g, URWSpec(max_length=5), [Query(0, 0)], seed=1)
        assert results.lengths().tolist() == [5]

    def test_deterministic_in_seed(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        qs = make_queries(g, 16, seed=2)
        a = run_walks_batch(g, URWSpec(max_length=10), qs, seed=3)
        b = run_walks_batch(g, URWSpec(max_length=10), qs, seed=3)
        for pa, pb in zip(a.paths, b.paths):
            assert np.array_equal(pa, pb)

    def test_independent_of_query_order(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        q0, q1 = Query(0, 5), Query(1, 9)
        forward = run_walks_batch(g, URWSpec(max_length=10), [q0, q1], seed=3)
        backward = run_walks_batch(g, URWSpec(max_length=10), [q1, q0], seed=3)
        assert np.array_equal(forward.path_of(0), backward.path_of(1))
        assert np.array_equal(forward.path_of(1), backward.path_of(0))

    def test_independent_of_batch_composition(self):
        # A query's substream is keyed by (seed, query_id), so its path
        # must not change when other queries join the batch.
        g = load_dataset("WG", scale=0.1, seed=1)
        alone = run_walks_batch(g, URWSpec(max_length=10), [Query(7, 5)], seed=3)
        crowd = run_walks_batch(
            g, URWSpec(max_length=10), [Query(i, 9) for i in range(5)] + [Query(7, 5)], seed=3
        )
        assert np.array_equal(alone.path_of(0), crowd.path_of(5))

    def test_negative_seed_accepted_by_both_engines(self):
        # Regression: SeedSequence rejects negative entropy; the engines
        # must keep the historical "any int seed" contract by masking.
        g = load_dataset("WG", scale=0.1, seed=1)
        for runner in (run_walks, run_walks_batch):
            results = runner(g, URWSpec(max_length=5), [Query(0, 5)], seed=-3)
            assert results.num_queries == 1

    def test_paths_do_not_pin_superstep_buffer(self):
        # Regression: returning views into the (num_queries x capacity)
        # superstep buffer would pin its padding in memory for the
        # lifetime of any path.  Paths may share a *compact* buffer, but
        # that buffer must hold exactly the path data and nothing more.
        g = cycle_graph(5)
        results = run_walks_batch(g, URWSpec(max_length=4), [Query(0, 0), Query(1, 1)], seed=1)
        expected_entries = results.total_steps + results.num_queries
        for path in results.paths:
            base = path
            while base.base is not None:
                base = base.base
            assert base.size <= expected_entries

    def test_every_hop_follows_an_edge(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        qs = make_queries(g, 8, seed=4)
        results = run_walks_batch(g, URWSpec(max_length=15), qs, seed=5)
        for path in results.paths:
            for a, b in zip(path[:-1], path[1:]):
                assert g.has_edge(int(a), int(b))

    def test_node2vec_never_backtracks_with_huge_p(self):
        g = from_edges([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)], num_vertices=3)
        spec = Node2VecSpec(p=1e9, q=1.0, max_length=40)
        results = run_walks_batch(g, spec, [Query(i, 0) for i in range(20)], seed=8)
        for path in results.paths:
            for i in range(2, path.size):
                assert path[i] != path[i - 2], f"backtracked in {path.tolist()}"

    def test_metapath_follows_pattern(self):
        g = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        g = assign_metapath_schema(g, num_types=3, seed=9)
        pattern = [0, 1, 2]
        spec = MetaPathSpec(pattern=pattern, max_length=12)
        results = run_walks_batch(g, spec, make_queries(g, 20, seed=10), seed=11)
        for path in results.paths:
            for hop, dst in enumerate(path[1:]):
                assert int(g.vertex_types[int(dst)]) == pattern[hop % 3]

    def test_metapath_terminates_early_when_no_match(self):
        g = from_edges([(0, 1)], edge_types=[1], num_vertices=2)
        g = g.with_weights(np.ones(1))
        results = run_walks_batch(g, MetaPathSpec(pattern=[0], max_length=10), [Query(0, 0)], seed=12)
        assert results.path_of(0).tolist() == [0]

    def test_scalar_only_termination_hook_rejected(self):
        # A spec that overrides terminates_probabilistically() without
        # declaring termination_probability() would silently lose its
        # termination rule under vectorized execution; refuse to run it.
        from repro.errors import WalkConfigError
        from repro.sampling.uniform import UniformSampler
        from repro.walks.base import WalkSpec

        class LegacyPPR(WalkSpec):
            def make_sampler(self):
                return UniformSampler()

            def terminates_probabilistically(self, step, random_source):
                return random_source.uniform() < 0.2

        g = cycle_graph(4)
        with pytest.raises(WalkConfigError, match="termination_probability"):
            run_walks_batch(g, LegacyPPR(max_length=5), [Query(0, 0)], seed=1)

    def test_unknown_sampler_rejected(self):
        from repro.sampling.base import SampleOutcome, Sampler
        from repro.walks.base import WalkSpec

        class BespokeSampler(Sampler):
            name = "bespoke"

            def sample(self, graph, context, random_source):
                return SampleOutcome(index=0, proposals=1, neighbor_reads=1)

        class BespokeSpec(WalkSpec):
            def make_sampler(self):
                return BespokeSampler()

        g = cycle_graph(3).with_weights(np.ones(3))
        with pytest.raises(SamplingError, match="vectorized"):
            run_walks_batch(g, BespokeSpec(max_length=3), [Query(0, 0)], seed=1)

    def test_its_spec_runs_on_batch_engine(self):
        """InverseTransformSampler now has a vectorized kernel: an ITS
        spec runs end to end instead of bouncing to the reference engine."""
        from repro.sampling.its import InverseTransformSampler
        from repro.walks.base import WalkSpec

        class ITSSpec(WalkSpec):
            def make_sampler(self):
                return InverseTransformSampler()

        g = cycle_graph(3).with_weights(np.ones(3))
        results = run_walks_batch(g, ITSSpec(max_length=3), [Query(0, 0)], seed=1)
        assert results.path_of(0).tolist() == [0, 1, 2, 0]


class TestStatisticalEquivalence:
    """Chi-square: batch visit histograms vs the reference engine's."""

    def _compare(self, graph, spec, num_queries=500, seed=5):
        queries = make_queries(graph, num_queries, seed=seed)
        ref = run_walks(graph, spec, queries, seed=seed + 1)
        bat = run_walks_batch(graph, spec, queries, seed=seed + 2)
        p = chi_square_compare(
            ref.visit_counts(graph.num_vertices),
            bat.visit_counts(graph.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA, f"visit distributions diverge (p={p:.5f})"

    def test_deepwalk_weighted(self):
        self._compare(
            load_dataset("WG", scale=0.08, seed=1, weighted=True), DeepWalkSpec(max_length=25)
        )

    def test_node2vec_rejection(self):
        self._compare(
            load_dataset("AS", scale=0.05, seed=1), Node2VecSpec(max_length=20), num_queries=400
        )

    def test_node2vec_reservoir_weighted(self):
        self._compare(
            load_dataset("WG", scale=0.08, seed=1, weighted=True),
            Node2VecSpec(max_length=20, strategy="reservoir"),
            num_queries=400,
        )

    def test_ppr(self):
        self._compare(
            load_dataset("AS", scale=0.05, seed=1), PPRSpec(alpha=0.2, max_length=40)
        )

    def test_metapath(self):
        g = load_dataset("WG", scale=0.08, seed=1, weighted=True)
        g = assign_metapath_schema(g, num_types=3, seed=2)
        self._compare(g, MetaPathSpec(pattern=[0, 1, 2], max_length=12), num_queries=600)

    def test_ppr_lengths_are_geometric(self):
        g = cycle_graph(1000)
        spec = PPRSpec(alpha=0.2, max_length=10_000)
        results = run_walks_batch(g, spec, [Query(i, 0) for i in range(2000)], seed=6)
        assert results.lengths().mean() == pytest.approx(1 / 0.2, rel=0.1)

    def test_ppr_estimates_agree(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        source = int(np.argmax(g.degrees()))
        queries = [Query(i, source) for i in range(4000)]
        spec = PPRSpec(alpha=0.2, max_length=100)
        ref = estimate_ppr(run_walks(g, spec, queries, seed=7), g.num_vertices)
        bat = estimate_ppr(run_walks_batch(g, spec, queries, seed=8), g.num_vertices)
        assert float(np.abs(ref - bat).sum()) < 0.5  # L1 of two MC estimates


class TestEngineStats:
    def test_termination_accounting_sums(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        qs = make_queries(g, 40, seed=13)
        stats = EngineStats()
        run_walks_batch(g, URWSpec(max_length=10), qs, seed=14, stats=stats)
        terminations = (
            stats.dangling_terminations
            + stats.early_terminations
            + stats.probabilistic_terminations
            + stats.length_terminations
        )
        assert terminations == len(qs)
        assert stats.total_hops == sum(stats.per_query_hops)

    def test_per_query_hops_in_query_order(self):
        g = path_graph(5)  # deterministic: hop count = distance to the end
        queries = [Query(0, 2), Query(1, 0), Query(2, 4)]
        stats = EngineStats()
        run_walks_batch(g, URWSpec(max_length=10), queries, seed=1, stats=stats)
        assert stats.per_query_hops == [2, 4, 0]

    def test_uniform_cost_counters_match_hops(self):
        g = cycle_graph(8)
        stats = EngineStats()
        run_walks_batch(g, URWSpec(max_length=12), [Query(i, 0) for i in range(5)], seed=2,
                        stats=stats)
        # Uniform sampling: exactly one proposal and one read per hop.
        assert stats.sampling_proposals == stats.total_hops
        assert stats.neighbor_reads == stats.total_hops

    def test_alias_reads_twice_per_hop(self):
        g = cycle_graph(6).with_weights(np.arange(1.0, 7.0))
        stats = EngineStats()
        run_walks_batch(g, DeepWalkSpec(max_length=4), [Query(0, 0)], seed=3, stats=stats)
        assert stats.neighbor_reads == 2 * stats.total_hops

    def test_dangling_terminations_counted(self):
        g = path_graph(3)
        stats = EngineStats()
        run_walks_batch(g, URWSpec(max_length=10),
                        [Query(0, 0), Query(1, 2)], seed=4, stats=stats)
        assert stats.dangling_terminations == 2
        assert stats.length_terminations == 0


class TestRNGStreamDerivation:
    """Regression: SeedSequence((seed, query_id)) keying must not collide.

    The old xor-mix derivation mapped (seed=0, query_id=1) and
    (seed=salt, query_id=0) to the same stream.
    """

    SALT = 0x9E3779B97F4A7C15 & (2**63 - 1)

    def _first_paths(self, runner):
        g = load_dataset("WG", scale=0.1, seed=1)
        hub = int(np.argmax(g.degrees()))  # branching start: paths are RNG-driven
        a = runner(g, URWSpec(max_length=20), [Query(1, hub)], seed=0).path_of(0)
        b = runner(g, URWSpec(max_length=20), [Query(0, hub)], seed=self.SALT).path_of(0)
        return a, b

    def test_reference_streams_do_not_collide(self):
        a, b = self._first_paths(run_walks)
        assert not np.array_equal(a, b)

    def test_batch_streams_do_not_collide(self):
        a, b = self._first_paths(run_walks_batch)
        assert not np.array_equal(a, b)
