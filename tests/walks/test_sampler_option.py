"""Error-path coverage for the ``sampler=`` engine option.

Mirrors the ``make_kernel`` unknown-sampler test at the engine-registry
level: an unknown ``sampler=`` value must fail loudly on *every* engine,
through every entry path (one-shot registry runs, prepared engines, the
serving layer, and the engine functions called directly), and the error
must name the valid choices — including ``auto`` — so the fix is obvious
from the message.  The registry's ``_validate_engine_options`` is the one
shared validation point; these tests pin that the value check happens
there (before any graph work) and is not re-implemented per engine.
"""

import numpy as np
import pytest

from repro.engines import ENGINE_OPTIONS, prepare_engine, run_software_walks
from repro.errors import WalkConfigError
from repro.graph import cycle_graph
from repro.parallel import run_walks_parallel
from repro.sampling import SAMPLER_MODES, validate_sampler_mode
from repro.walks import Query, URWSpec, run_walks, run_walks_batch

SOFTWARE_ENGINE_NAMES = tuple(sorted(ENGINE_OPTIONS))


def _expect_naming_choices(excinfo):
    message = str(excinfo.value)
    for mode in SAMPLER_MODES:
        assert mode in message
    assert "auto" in message  # the choice this option exists for


def test_every_engine_declares_the_sampler_option():
    for engine in SOFTWARE_ENGINE_NAMES:
        assert "sampler" in ENGINE_OPTIONS[engine]


@pytest.mark.parametrize("engine", SOFTWARE_ENGINE_NAMES)
def test_unknown_sampler_option_rejected_by_registry(engine):
    graph = cycle_graph(4)
    with pytest.raises(WalkConfigError, match="sampler") as excinfo:
        run_software_walks(engine, graph, URWSpec(max_length=3),
                           [Query(0, 0)], seed=1, sampler="alias-only")
    _expect_naming_choices(excinfo)


@pytest.mark.parametrize("engine", SOFTWARE_ENGINE_NAMES)
def test_unknown_sampler_option_rejected_by_prepare_engine(engine):
    graph = cycle_graph(4)
    with pytest.raises(WalkConfigError, match="sampler") as excinfo:
        prepare_engine(engine, graph, URWSpec(max_length=3), sampler="hybrid2")
    _expect_naming_choices(excinfo)


def test_unknown_sampler_option_rejected_by_service():
    from repro.serve import WalkService

    graph = cycle_graph(4)
    with pytest.raises(WalkConfigError, match="sampler") as excinfo:
        WalkService(graph, URWSpec(max_length=3), engine="batch",
                    sampler="bogus")
    _expect_naming_choices(excinfo)


def test_direct_engine_calls_validate_too():
    """The engine functions validate eagerly when called off-registry —
    even before an empty query batch short-circuits."""
    graph = cycle_graph(4)
    with pytest.raises(WalkConfigError, match="auto"):
        run_walks_batch(graph, URWSpec(max_length=3), [], seed=1, sampler="x")
    with pytest.raises(WalkConfigError, match="auto"):
        run_walks(graph, URWSpec(max_length=3), [], seed=1, sampler="x")
    with pytest.raises(WalkConfigError, match="auto"):
        run_walks_parallel(graph, URWSpec(max_length=3), [], seed=1,
                           workers=1, sampler="x")


def test_validate_sampler_mode_is_the_shared_place():
    assert validate_sampler_mode("default") == "default"
    assert validate_sampler_mode("auto") == "auto"
    with pytest.raises(WalkConfigError) as excinfo:
        validate_sampler_mode("its")
    _expect_naming_choices(excinfo)


def test_valid_modes_run_on_every_engine():
    graph = cycle_graph(4)
    spec = URWSpec(max_length=4)
    queries = [Query(0, 0), Query(1, 2)]
    for engine in SOFTWARE_ENGINE_NAMES:
        options = {"workers": 1} if engine == "parallel" else {}
        for mode in SAMPLER_MODES:
            results, _ = run_software_walks(engine, graph, spec, queries,
                                            seed=1, sampler=mode, **options)
            assert results.num_queries == 2
    # URW on a cycle is fully deterministic, so auto == default exactly.
    a, _ = run_software_walks("batch", graph, spec, queries, seed=1,
                              sampler="auto")
    b, _ = run_software_walks("batch", graph, spec, queries, seed=1,
                              sampler="default")
    for pa, pb in zip(a.paths, b.paths):
        assert np.array_equal(pa, pb)


def test_unknown_engine_error_names_every_choice():
    """A typo'd engine name lists the full registry — including jit."""
    graph = cycle_graph(4)
    with pytest.raises(WalkConfigError, match="unknown software engine") as excinfo:
        run_software_walks("turbo", graph, URWSpec(max_length=3),
                           [Query(0, 0)], seed=1)
    message = str(excinfo.value)
    for engine in ("batch", "jit", "parallel", "reference"):
        assert engine in message


def test_misdirected_option_error_still_names_accepted_set():
    graph = cycle_graph(4)
    with pytest.raises(WalkConfigError, match="does not accept"):
        run_software_walks("batch", graph, URWSpec(max_length=3),
                           [Query(0, 0)], seed=1, workers=2)
