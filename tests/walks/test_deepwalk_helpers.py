"""Unit tests for DeepWalk's corpus helpers (skip-gram windows)."""

from repro.walks import WalkResults, cooccurrence_counts, skip_gram_pairs


def results_with(*paths):
    results = WalkResults()
    for path in paths:
        results.add_path(path)
    return results


class TestSkipGramPairs:
    def test_window_one(self):
        results = results_with([1, 2, 3])
        pairs = set(skip_gram_pairs(results, window=1))
        assert pairs == {(1, 2), (2, 1), (2, 3), (3, 2)}

    def test_window_covers_both_sides(self):
        results = results_with([0, 1, 2, 3])
        pairs = list(skip_gram_pairs(results, window=2))
        assert (0, 2) in pairs and (2, 0) in pairs
        assert (0, 3) not in pairs  # outside the window

    def test_no_self_pairs(self):
        results = results_with([5, 5, 5])
        # repeated vertices produce pairs between *positions*, and a
        # position never pairs with itself
        pairs = list(skip_gram_pairs(results, window=1))
        assert len(pairs) == 4
        assert all(a == 5 and b == 5 for a, b in pairs)

    def test_single_vertex_path_yields_nothing(self):
        assert list(skip_gram_pairs(results_with([7]), window=3)) == []

    def test_multiple_paths_concatenate(self):
        results = results_with([1, 2], [3, 4])
        pairs = set(skip_gram_pairs(results, window=1))
        assert pairs == {(1, 2), (2, 1), (3, 4), (4, 3)}
        # no cross-path pairs
        assert (2, 3) not in pairs


class TestCooccurrenceCounts:
    def test_counts_accumulate(self):
        results = results_with([1, 2], [1, 2])
        counts = cooccurrence_counts(results, window=1)
        assert counts[(1, 2)] == 2
        assert counts[(2, 1)] == 2

    def test_symmetry(self):
        results = results_with([0, 1, 2, 1, 0])
        counts = cooccurrence_counts(results, window=2)
        assert counts[(0, 1)] == counts[(1, 0)]
        assert counts[(1, 2)] == counts[(2, 1)]
