"""Unit tests for walk specs, queries and results containers."""

import numpy as np
import pytest

from repro.errors import WalkConfigError
from repro.graph import cycle_graph, from_edges, star_graph
from repro.walks import (
    DeepWalkSpec,
    MetaPathSpec,
    Node2VecSpec,
    PPRSpec,
    Query,
    URWSpec,
    WalkResults,
    make_queries,
)


class TestQuery:
    def test_fields(self):
        q = Query(3, 7)
        assert q.query_id == 3 and q.start_vertex == 7

    def test_rejects_negative(self):
        with pytest.raises(WalkConfigError):
            Query(-1, 0)
        with pytest.raises(WalkConfigError):
            Query(0, -1)


class TestMakeQueries:
    def test_count(self):
        qs = make_queries(cycle_graph(5), 10, seed=1)
        assert len(qs) == 10
        assert [q.query_id for q in qs] == list(range(10))

    def test_deterministic(self):
        a = make_queries(cycle_graph(50), 20, seed=3)
        b = make_queries(cycle_graph(50), 20, seed=3)
        assert [q.start_vertex for q in a] == [q.start_vertex for q in b]

    def test_avoids_dangling_starts(self):
        g = star_graph(10)  # only vertex 0 has out-edges
        qs = make_queries(g, 50, seed=2)
        assert all(q.start_vertex == 0 for q in qs)

    def test_explicit_starts(self):
        qs = make_queries(cycle_graph(5), 3, start_vertices=[4, 2, 0])
        assert [q.start_vertex for q in qs] == [4, 2, 0]

    def test_explicit_starts_length_mismatch(self):
        with pytest.raises(WalkConfigError, match="entries"):
            make_queries(cycle_graph(5), 3, start_vertices=[1])

    def test_no_outgoing_anywhere_rejected(self):
        g = from_edges([], num_vertices=3)
        with pytest.raises(WalkConfigError, match="outgoing"):
            make_queries(g, 2)

    def test_rejects_zero_count(self):
        with pytest.raises(WalkConfigError):
            make_queries(cycle_graph(4), 0)


class TestWalkResults:
    def test_add_and_count(self):
        r = WalkResults()
        r.add_path([0, 1, 2])
        r.add_path([3])
        assert r.num_queries == 2
        assert r.total_steps == 2  # 2 hops + 0 hops
        assert r.lengths().tolist() == [2, 0]

    def test_visit_counts(self):
        r = WalkResults()
        r.add_path([0, 1, 1])
        counts = r.visit_counts(num_vertices=3)
        assert counts.tolist() == [1, 2, 0]

    def test_visit_counts_exclude_start(self):
        r = WalkResults()
        r.add_path([0, 1])
        counts = r.visit_counts(num_vertices=2, include_start=False)
        assert counts.tolist() == [0, 1]

    def test_transition_counts(self):
        r = WalkResults()
        r.add_path([0, 1, 0])
        m = r.transition_counts(num_vertices=2)
        assert m[0, 1] == 1 and m[1, 0] == 1

    def test_path_of(self):
        r = WalkResults()
        r.add_path([5, 6])
        assert r.path_of(0).tolist() == [5, 6]

    def test_extend_from_matrix(self):
        r = WalkResults()
        matrix = np.array([[0, 1, 2, 9], [3, 9, 9, 9], [4, 5, 9, 9]])
        r.extend_from_matrix(matrix, np.array([2, 0, 1]))
        assert r.num_queries == 3
        assert r.total_steps == 3
        assert r.path_of(0).tolist() == [0, 1, 2]
        assert r.path_of(1).tolist() == [3]
        assert r.path_of(2).tolist() == [4, 5]

    def test_extend_from_matrix_appends_after_add_path(self):
        r = WalkResults()
        r.add_path([7, 8])
        r.extend_from_matrix(np.array([[1, 2]]), np.array([1]))
        assert r.num_queries == 2
        assert r.total_steps == 2
        assert r.path_of(1).tolist() == [1, 2]

    def test_extend_from_matrix_matches_add_path_loop(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 50, size=(20, 9))
        hops = rng.integers(0, 9, size=20)
        bulk, loop = WalkResults(), WalkResults()
        bulk.extend_from_matrix(matrix, hops)
        for i in range(20):
            loop.add_path(matrix[i, : hops[i] + 1])
        assert bulk.total_steps == loop.total_steps
        for a, b in zip(bulk.paths, loop.paths):
            assert np.array_equal(a, b)

    def test_extend_from_matrix_empty(self):
        r = WalkResults()
        r.extend_from_matrix(np.empty((0, 3), dtype=np.int64), np.empty(0, dtype=np.int64))
        assert r.num_queries == 0 and r.total_steps == 0

    def test_extend_from_matrix_validates_shapes(self):
        r = WalkResults()
        with pytest.raises(WalkConfigError):
            r.extend_from_matrix(np.zeros((2, 3), dtype=np.int64), np.zeros(3, dtype=np.int64))
        with pytest.raises(WalkConfigError):
            r.extend_from_matrix(np.zeros((2, 3), dtype=np.int64), np.array([1, 3]))


class TestSpecValidation:
    def test_max_length_positive(self):
        for spec_cls in (URWSpec, DeepWalkSpec):
            with pytest.raises(WalkConfigError):
                spec_cls(max_length=0)

    def test_max_length_validated_on_reassignment(self):
        # The CLI and benchmarks re-assign max_length to apply --length;
        # a bad value must fail there as a config error too.
        spec = URWSpec(max_length=5)
        with pytest.raises(WalkConfigError):
            spec.max_length = 0
        spec.max_length = 7
        assert spec.max_length == 7

    def test_ppr_alpha_range(self):
        with pytest.raises(WalkConfigError):
            PPRSpec(alpha=0.0)
        with pytest.raises(WalkConfigError):
            PPRSpec(alpha=1.0)

    def test_node2vec_strategy_validation(self):
        with pytest.raises(WalkConfigError, match="strategy"):
            Node2VecSpec(strategy="magic")
        with pytest.raises(WalkConfigError):
            Node2VecSpec(p=-1.0)

    def test_metapath_pattern_validation(self):
        with pytest.raises(WalkConfigError):
            MetaPathSpec(pattern=[])
        with pytest.raises(WalkConfigError):
            MetaPathSpec(pattern=[0, -1])

    def test_metapath_pattern_cycles(self):
        spec = MetaPathSpec(pattern=[3, 1])
        assert [spec.admissible_type(i) for i in range(5)] == [3, 1, 3, 1, 3]

    def test_rp_entry_bits_match_table_one(self):
        assert URWSpec().rp_entry_bits == 64
        assert PPRSpec().rp_entry_bits == 64
        assert DeepWalkSpec().rp_entry_bits == 256
        assert Node2VecSpec(strategy="rejection").rp_entry_bits == 64
        assert Node2VecSpec(strategy="reservoir").rp_entry_bits == 128
        assert MetaPathSpec(pattern=[0]).rp_entry_bits == 128

    def test_needs_prev_vertex(self):
        assert Node2VecSpec().needs_prev_vertex
        assert not URWSpec().needs_prev_vertex
        assert not DeepWalkSpec().needs_prev_vertex

    def test_ppr_expected_length(self):
        spec = PPRSpec(alpha=0.5, max_length=1000)
        assert spec.expected_length() == pytest.approx(2.0, abs=0.01)
