"""Cross-engine equivalence matrix: every algorithm x every software engine.

One parametrized test sweeps the full CLI algorithm list (``URW``,
``PPR``, ``DeepWalk``, ``Node2Vec``, ``Node2Vec-reservoir``, ``MetaPath``)
across the ``reference``, ``batch``, ``jit``, ``parallel`` and ``dist``
engines, holding each cell to the strongest relation it supports:

* **Exact determinism** — every engine re-run at the same seed must be
  bit-identical to itself, and ``jit``, ``parallel`` and ``dist`` must
  be bit-identical to ``batch`` (same kernels, same
  ``SeedSequence((seed, query_id))`` substreams).
* **Chi-square agreement** — every engine's visit histogram must match
  the reference engine's under the shared two-sample oracle (the engines
  consume their substreams differently, so bit-equality across that
  boundary is not expected, only distributional equality).

Every cell *runs*: a cell an engine cannot execute must be listed in
``XFAIL_CELLS`` with a tracking reason so the gap stays visible in test
output instead of silently skipping.  (Today the map is empty — all 30
cells execute.)
"""

import functools

import numpy as np
import pytest
from stat_helpers import CHI_SQUARE_ALPHA, chi_square_compare

from repro.bench.workloads import make_spec
from repro.cli import ALGORITHMS
from repro.engines import SOFTWARE_ENGINES, run_software_walks
from repro.graph import load_dataset
from repro.graph.datasets import assign_metapath_schema

#: The 30-cell matrix spins worker pools per cell: full CI lane only.
pytestmark = pytest.mark.slow

#: Per-engine run options keeping multi-process cells small in CI.
ENGINE_RUN_OPTIONS = {"parallel": {"workers": 2}, "dist": {"shards": 2}}
#: Different sizing for the determinism re-run: the shard/worker count
#: must not matter, so the second run deliberately uses another one.
ENGINE_RERUN_OPTIONS = {"parallel": {"workers": 3}, "dist": {"shards": 3}}

SOFTWARE_ENGINE_NAMES = tuple(sorted(SOFTWARE_ENGINES))

#: (algorithm, engine) -> tracking reason.  A cell here still runs; it
#: is reported xfail (and flags unexpectedly-passing with ``strict``)
#: rather than vanishing from the matrix.
XFAIL_CELLS: dict[tuple[str, str], str] = {}

NUM_QUERIES = 300
WALK_LENGTH = 12
RUN_SEED = 31
ORACLE_SEED = 32


@functools.lru_cache(maxsize=None)
def _graph():
    """One weighted, metapath-typed graph serves every algorithm: uniform
    samplers ignore the weights, typed hops have types to follow."""
    graph = load_dataset("WG", scale=0.08, seed=1, weighted=True)
    return assign_metapath_schema(graph, num_types=3, seed=1)


@functools.lru_cache(maxsize=None)
def _queries(algorithm):
    from repro.walks import make_queries

    return tuple(make_queries(_graph(), NUM_QUERIES, seed=5))


def _spec(algorithm):
    spec = make_spec(algorithm)
    spec.max_length = WALK_LENGTH
    return spec


@functools.lru_cache(maxsize=None)
def _run(algorithm, engine, seed):
    """One engine run per (cell, seed), cached so determinism re-runs and
    cross-engine comparisons don't recompute the matrix."""
    options = ENGINE_RUN_OPTIONS.get(engine, {})
    results, _ = run_software_walks(
        engine, _graph(), _spec(algorithm), list(_queries(algorithm)),
        seed=seed, **options,
    )
    return results


def _cell_params():
    # A list, not a generator: the class-level parametrize applies to
    # two test methods, and a generator would be exhausted by the first.
    params = []
    for algorithm in ALGORITHMS:
        for engine in SOFTWARE_ENGINE_NAMES:
            marks = []
            if (algorithm, engine) in XFAIL_CELLS:
                marks.append(pytest.mark.xfail(
                    reason=XFAIL_CELLS[(algorithm, engine)], strict=True
                ))
            params.append(pytest.param(algorithm, engine, marks=marks,
                                       id=f"{algorithm}-{engine}"))
    return params


@pytest.mark.parametrize("algorithm,engine", _cell_params())
class TestEngineMatrix:
    def test_deterministic_in_seed(self, algorithm, engine):
        """Two runs at one seed are bit-identical (every engine)."""
        first = _run(algorithm, engine, RUN_SEED)
        again, _ = run_software_walks(
            engine, _graph(), _spec(algorithm), list(_queries(algorithm)),
            seed=RUN_SEED, **ENGINE_RERUN_OPTIONS.get(engine, {}),
        )
        assert first.num_queries == again.num_queries == NUM_QUERIES
        for a, b in zip(first.paths, again.paths):
            assert np.array_equal(a, b)

    def test_agrees_with_reference_distribution(self, algorithm, engine):
        """Visit histogram matches the reference engine's (chi-square).

        The oracle runs at an independent seed: same distribution, fresh
        randomness — so the reference-engine cell is a genuine
        self-consistency check, not a comparison of a run with itself.
        """
        cell = _run(algorithm, engine, RUN_SEED)
        oracle = _run(algorithm, "reference", ORACLE_SEED)
        p = chi_square_compare(
            cell.visit_counts(_graph().num_vertices),
            oracle.visit_counts(_graph().num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA, (
            f"{algorithm} on {engine} diverges from the reference "
            f"distribution (p={p:.5f})"
        )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_parallel_bit_identical_to_batch(algorithm):
    """Where exact determinism is supported — the vectorized pair — the
    matrix demands it: sharding must not move a single vertex."""
    batch = _run(algorithm, "batch", RUN_SEED)
    parallel = _run(algorithm, "parallel", RUN_SEED)
    assert batch.num_queries == parallel.num_queries
    for a, b in zip(batch.paths, parallel.paths):
        assert np.array_equal(a, b)
    assert batch.total_steps == parallel.total_steps


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_dist_bit_identical_to_batch(algorithm):
    """Partitioning the graph and forwarding walkers across shard
    boundaries must not move a vertex or change a termination count."""
    batch = _run(algorithm, "batch", RUN_SEED)
    dist = _run(algorithm, "dist", RUN_SEED)
    assert batch.num_queries == dist.num_queries
    for a, b in zip(batch.paths, dist.paths):
        assert np.array_equal(a, b)
    assert batch.total_steps == dist.total_steps


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_jit_bit_identical_to_batch(algorithm):
    """The fused per-walker jit kernels replay the batch engine's exact
    draw sequence: fusing the superstep loop must not move a vertex."""
    batch = _run(algorithm, "batch", RUN_SEED)
    jit = _run(algorithm, "jit", RUN_SEED)
    assert batch.num_queries == jit.num_queries
    for a, b in zip(batch.paths, jit.paths):
        assert np.array_equal(a, b)
    assert batch.total_steps == jit.total_steps


def test_matrix_covers_every_cell():
    """The parametrization sweeps the full cross product — nobody can
    drop a cell without this inventory noticing."""
    cells = {(a, e) for a in ALGORITHMS for e in SOFTWARE_ENGINE_NAMES}
    assert len(cells) == len(ALGORITHMS) * len(SOFTWARE_ENGINE_NAMES) == 30
    params = {(algorithm, engine) for algorithm, engine, *_ in
              (p.values for p in _cell_params())}
    assert params == cells
    assert set(XFAIL_CELLS) <= cells
