"""Unit tests for the software reference walk engine."""

import numpy as np
import pytest

from repro.graph import cycle_graph, from_edges, load_dataset, path_graph
from repro.graph.datasets import assign_metapath_schema
from repro.walks import (
    DeepWalkSpec,
    EngineStats,
    MetaPathSpec,
    Node2VecSpec,
    PPRSpec,
    Query,
    URWSpec,
    estimate_ppr,
    make_queries,
    run_walks,
)
from repro.walks.reference import run_walks as run_walks_direct


class TestBasicSemantics:
    def test_cycle_walk_is_deterministic_path(self):
        g = cycle_graph(5)
        results = run_walks(g, URWSpec(max_length=7), [Query(0, 0)], seed=1)
        assert results.path_of(0).tolist() == [0, 1, 2, 3, 4, 0, 1, 2]

    def test_walk_stops_at_dangling_vertex(self):
        g = path_graph(4)  # 0->1->2->3, 3 dangles
        results = run_walks(g, URWSpec(max_length=80), [Query(0, 0)], seed=1)
        assert results.path_of(0).tolist() == [0, 1, 2, 3]

    def test_walk_from_dangling_start_has_zero_hops(self):
        g = path_graph(2)
        results = run_walks(g, URWSpec(max_length=10), [Query(0, 1)], seed=1)
        assert results.path_of(0).tolist() == [1]
        assert results.total_steps == 0

    def test_max_length_respected(self):
        g = cycle_graph(3)
        results = run_walks(g, URWSpec(max_length=5), [Query(0, 0)], seed=1)
        assert results.lengths().tolist() == [5]

    def test_deterministic_in_seed(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        qs = make_queries(g, 16, seed=2)
        a = run_walks(g, URWSpec(max_length=10), qs, seed=3)
        b = run_walks(g, URWSpec(max_length=10), qs, seed=3)
        for pa, pb in zip(a.paths, b.paths):
            assert np.array_equal(pa, pb)

    def test_independent_of_query_order(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        q0, q1 = Query(0, 5), Query(1, 9)
        forward = run_walks(g, URWSpec(max_length=10), [q0, q1], seed=3)
        backward = run_walks(g, URWSpec(max_length=10), [q1, q0], seed=3)
        assert np.array_equal(forward.path_of(0), backward.path_of(1))
        assert np.array_equal(forward.path_of(1), backward.path_of(0))

    def test_every_hop_follows_an_edge(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        qs = make_queries(g, 8, seed=4)
        results = run_walks(g, URWSpec(max_length=15), qs, seed=5)
        for path in results.paths:
            for a, b in zip(path[:-1], path[1:]):
                assert g.has_edge(int(a), int(b))


class TestPPR:
    def test_termination_is_geometric(self):
        g = cycle_graph(1000)  # no dangling: only alpha terminates
        spec = PPRSpec(alpha=0.2, max_length=10_000)
        qs = [Query(i, 0) for i in range(2000)]
        results = run_walks(g, spec, qs, seed=6)
        mean_length = results.lengths().mean()
        assert mean_length == pytest.approx(1 / 0.2, rel=0.1)

    def test_estimate_ppr_normalized(self):
        g = cycle_graph(10)
        results = run_walks(g, PPRSpec(alpha=0.3), [Query(i, 0) for i in range(500)], seed=7)
        scores = estimate_ppr(results, g.num_vertices)
        assert scores.sum() == pytest.approx(1.0)
        # mass should concentrate near the personalization vertex
        assert scores[0] + scores[1] + scores[2] > scores[5] + scores[6] + scores[7]


class TestSecondOrderAndTyped:
    def test_node2vec_prev_vertex_threading(self):
        # With p huge, the walk should never immediately backtrack.
        g = from_edges([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)], num_vertices=3)
        spec = Node2VecSpec(p=1e9, q=1.0, max_length=40)
        results = run_walks(g, spec, [Query(i, 0) for i in range(20)], seed=8)
        for path in results.paths:
            for i in range(2, path.size):
                assert path[i] != path[i - 2], f"backtracked in {path.tolist()}"

    def test_metapath_follows_pattern(self):
        g = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        g = assign_metapath_schema(g, num_types=3, seed=9)
        pattern = [0, 1, 2]
        spec = MetaPathSpec(pattern=pattern, max_length=12)
        qs = make_queries(g, 20, seed=10)
        results = run_walks(g, spec, qs, seed=11)
        for path in results.paths:
            for hop, dst in enumerate(path[1:]):
                assert int(g.vertex_types[int(dst)]) == pattern[hop % 3]

    def test_metapath_terminates_early_when_no_match(self):
        # Vertex 0's only edge has type 1; pattern demands type 0.
        g = from_edges([(0, 1)], edge_types=[1], num_vertices=2)
        g = g.with_weights(np.ones(1))
        spec = MetaPathSpec(pattern=[0], max_length=10)
        results = run_walks(g, spec, [Query(0, 0)], seed=12)
        assert results.path_of(0).tolist() == [0]


class TestEngineStats:
    def test_termination_accounting_sums(self):
        g = load_dataset("CP", scale=0.1, seed=1)
        qs = make_queries(g, 40, seed=13)
        stats = EngineStats()
        run_walks(g, URWSpec(max_length=10), qs, seed=14, stats=stats)
        terminations = (
            stats.dangling_terminations
            + stats.early_terminations
            + stats.probabilistic_terminations
            + stats.length_terminations
        )
        assert terminations == len(qs)
        assert stats.total_hops == sum(stats.per_query_hops)

    def test_imbalance_ratio_on_balanced_walks(self):
        g = cycle_graph(10)
        qs = [Query(i, i % 10) for i in range(10)]
        stats = EngineStats()
        run_walks(g, URWSpec(max_length=10), qs, seed=15, stats=stats)
        assert stats.imbalance_ratio() == pytest.approx(1.0)

    def test_reservoir_reads_counted(self):
        g = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        qs = make_queries(g, 10, seed=16)
        stats = EngineStats()
        run_walks(g, DeepWalkSpec(max_length=5), qs, seed=17, stats=stats)
        assert stats.neighbor_reads > 0

    def test_alias_for_deepwalk_used(self):
        # DeepWalk must run on weighted graphs without error and respect
        # max_length exactly on non-dangling graphs.
        g = cycle_graph(6).with_weights(np.arange(1.0, 7.0))
        results = run_walks(g, DeepWalkSpec(max_length=4), [Query(0, 0)], seed=18)
        assert results.lengths().tolist() == [4]
