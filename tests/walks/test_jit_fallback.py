"""Graceful degradation when numba is absent.

The jit engine's availability contract: on a host without numba,
``--engine jit`` (and ``backend="jit"`` workers) must not crash, must
not silently change semantics, and must not nag — it emits exactly ONE
``RuntimeWarning`` naming the cause and the fix, then delegates to the
batch engine, whose results are bit-identical by contract.  These tests
force the unavailable state explicitly (``NUMBA_AVAILABLE`` patched
false, import shim reloaded against a blocked ``numba`` module) so they
pin the degradation path on every host, including ones where numba IS
installed.
"""

import importlib
import sys
import warnings

import numpy as np
import pytest

import repro.engines as engines_module
import repro.parallel.engine as parallel_engine_module
import repro.walks.jit.engine as jit_engine_module
from repro.engines import prepare_engine, run_software_walks
from repro.graph import load_dataset
from repro.walks import DeepWalkSpec, EngineStats, make_queries, run_walks_batch
from repro.walks.jit import reset_fallback_warning, run_walks_jit

SEED = 17


@pytest.fixture
def workload():
    graph = load_dataset("WG", scale=0.05, seed=1, weighted=True)
    spec = DeepWalkSpec(max_length=8)
    queries = make_queries(graph, 40, seed=5)
    return graph, spec, queries


@pytest.fixture
def numba_absent(monkeypatch):
    """Force the fallback path and a fresh one-shot warning flag."""
    monkeypatch.setattr(jit_engine_module, "NUMBA_AVAILABLE", False)
    monkeypatch.setattr(engines_module, "NUMBA_AVAILABLE", False)
    monkeypatch.setattr(parallel_engine_module, "NUMBA_AVAILABLE", False)
    reset_fallback_warning()
    yield
    reset_fallback_warning()


def test_fallback_is_batch_identical_and_warns_once(workload, numba_absent):
    graph, spec, queries = workload
    batch_stats, jit_stats = EngineStats(), EngineStats()
    expected = run_walks_batch(graph, spec, queries, seed=SEED,
                               stats=batch_stats)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = run_walks_jit(graph, spec, queries, seed=SEED, stats=jit_stats)
        second = run_walks_jit(graph, spec, queries, seed=SEED)
    fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)
                and "numba" in str(w.message)]
    # One warning across two runs: informative, not nagging.
    assert len(fallback) == 1
    assert "batch" in str(fallback[0].message)
    for a, b, c in zip(expected.paths, first.paths, second.paths):
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)
    assert batch_stats.total_hops == jit_stats.total_hops
    assert batch_stats.per_query_hops == jit_stats.per_query_hops


def test_prepared_engine_falls_back_too(workload, numba_absent):
    graph, spec, queries = workload
    expected = run_walks_batch(graph, spec, queries, seed=SEED)
    with pytest.warns(RuntimeWarning, match="numba"):
        with prepare_engine("jit", graph, spec) as engine:
            results = engine.run(queries, seed=SEED)
    for a, b in zip(expected.paths, results.paths):
        assert np.array_equal(a, b)


def test_parallel_backend_downgrades_in_the_parent(workload, numba_absent):
    """The parent downgrades ``backend="jit"`` before the pool spawns so
    workers never see an unrunnable backend; results stay batch-equal."""
    graph, spec, queries = workload
    expected = run_walks_batch(graph, spec, queries, seed=SEED)
    with pytest.warns(RuntimeWarning, match="numba"):
        results, _ = run_software_walks("parallel", graph, spec, queries,
                                        seed=SEED, workers=2, backend="jit")
    for a, b in zip(expected.paths, results.paths):
        assert np.array_equal(a, b)


def test_import_shim_survives_missing_numba(monkeypatch):
    """With ``import numba`` failing, the compat shim must load with
    ``NUMBA_AVAILABLE = False`` and an identity ``njit`` (bare and
    parametrized forms both) so kernel modules stay importable."""
    import repro.walks.jit.compat as compat

    monkeypatch.setitem(sys.modules, "numba", None)
    try:
        importlib.reload(compat)
        assert compat.NUMBA_AVAILABLE is False

        def plain(x):
            return x + 1

        assert compat.njit(plain) is plain          # @njit
        assert compat.njit(cache=True)(plain) is plain  # @njit(cache=True)
        assert compat.njit(plain)(2) == 3
    finally:
        monkeypatch.undo()
        importlib.reload(compat)
