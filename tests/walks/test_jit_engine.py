"""Bit-identity acceptance for the fused per-walker jit kernels.

The jit engine's contract is the strongest one in the registry: its
fused nopython loop must replay the batch engine's *exact* draw
sequence — same ``SeedSequence((seed, query_id))`` substreams, same
per-strategy consumption pattern, same tie-breaks — so paths, hop
counts, and every ``EngineStats`` counter are bit-identical across all
six algorithms and both sampler modes.  These tests drive the kernel
itself through :func:`run_walks_jit_arrays`, which executes the same
code path interpreted when numba is absent (the ``@njit`` shim is an
identity decorator), so the equivalence proof runs on every CI host,
compiled or not.

Also covered: dynamic snapshot swaps rebind the jit state bit-
identically, the serving layer reproduces the offline replay oracle
under ``engine="jit"``, parallel workers dispatch shards through the
jit core (``backend="jit"``), and the distribution agrees with the
pure-Python reference under the shared chi-square oracle.
"""

import asyncio
import functools

import numpy as np
import pytest
from stat_helpers import CHI_SQUARE_ALPHA, chi_square_compare

from repro.bench.workloads import make_spec
from repro.cli import ALGORITHMS
from repro.engines import prepare_engine, run_software_walks
from repro.errors import WalkConfigError
from repro.graph import load_dataset
from repro.graph.datasets import assign_metapath_schema
from repro.sampling.hybrid import make_walk_kernel
from repro.walks import EngineStats, make_queries
from repro.walks.batch import run_walks_batch_arrays
from repro.walks.jit import (
    jit_state_from_kernel,
    run_walks_jit_arrays,
    run_walks_jit_prepared,
)

NUM_QUERIES = 120
WALK_LENGTH = 10
SEED = 31

SCALAR_STATS = (
    "total_hops",
    "sampling_proposals",
    "neighbor_reads",
    "dangling_terminations",
    "early_terminations",
    "probabilistic_terminations",
    "length_terminations",
)


@functools.lru_cache(maxsize=None)
def _graph():
    """Weighted + metapath-typed so every strategy family has work."""
    graph = load_dataset("WG", scale=0.08, seed=1, weighted=True)
    return assign_metapath_schema(graph, num_types=3, seed=1)


@functools.lru_cache(maxsize=None)
def _arrays():
    queries = make_queries(_graph(), NUM_QUERIES, seed=5)
    starts = np.fromiter((q.start_vertex for q in queries), dtype=np.int64,
                         count=NUM_QUERIES)
    query_ids = np.fromiter((q.query_id for q in queries), dtype=np.int64,
                            count=NUM_QUERIES)
    return queries, starts, query_ids


def _spec(algorithm):
    spec = make_spec(algorithm)
    spec.max_length = WALK_LENGTH
    return spec


def _assert_same_walks(b_paths, b_hops, j_paths, j_hops):
    """Padded buffers may differ in width; the walks must not."""
    assert np.array_equal(b_hops, j_hops)
    for row in range(b_hops.shape[0]):
        n = int(b_hops[row]) + 1
        assert np.array_equal(b_paths[row, :n], j_paths[row, :n])


def _assert_stats_equal(a: EngineStats, b: EngineStats):
    for name in SCALAR_STATS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.per_query_hops == b.per_query_hops


@pytest.mark.parametrize("sampler", ["default", "auto"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_kernel_bit_identical_to_batch(algorithm, sampler):
    """12 cells: every algorithm x sampler mode, straight through the
    fused kernel against the vectorized superstep engine."""
    graph = _graph()
    spec = _spec(algorithm)
    _, starts, query_ids = _arrays()
    kernel = make_walk_kernel(spec.make_sampler(), sampler)
    kernel.prepare(graph)
    b_stats, j_stats = EngineStats(), EngineStats()
    b_paths, b_hops = run_walks_batch_arrays(
        graph, spec, kernel, starts, query_ids, seed=SEED, stats=b_stats
    )
    state = jit_state_from_kernel(graph, spec, kernel)
    j_paths, j_hops = run_walks_jit_arrays(
        graph, spec, state, starts, query_ids, seed=SEED, stats=j_stats
    )
    _assert_same_walks(b_paths, b_hops, j_paths, j_hops)
    _assert_stats_equal(b_stats, j_stats)


def test_registry_and_prepared_engine_agree_with_batch():
    """The ``--engine jit`` entry paths (one-shot registry run and
    prepared handle) return batch-identical ``WalkResults``."""
    graph = _graph()
    spec = _spec("DeepWalk")
    queries, _, _ = _arrays()
    batch, _ = run_software_walks("batch", graph, spec, queries, seed=SEED)
    one_shot, _ = run_software_walks("jit", graph, spec, queries, seed=SEED)
    with prepare_engine("jit", graph, spec) as engine:
        prepared = engine.run(queries, seed=SEED)
    assert batch.num_queries == one_shot.num_queries == prepared.num_queries
    for a, b, c in zip(batch.paths, one_shot.paths, prepared.paths):
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)


def test_snapshot_swap_rebinds_jit_state():
    """After ``swap_snapshot`` onto a mutated dynamic graph, the rebound
    jit state must drive the kernel bit-identically to a batch kernel
    freshly prepared on the same snapshot."""
    from repro.dynamic import apply_batch, sliding_window_trace

    trace = sliding_window_trace(7, edge_factor=4, batch_size=120,
                                 num_batches=2, weighted=True, seed=11)
    dynamic = trace.build_dynamic()
    base = dynamic.snapshot()
    for batch in trace.batches:
        apply_batch(dynamic, batch)
    snapshot = dynamic.snapshot()

    spec = _spec("DeepWalk")
    queries = make_queries(base.graph, 48, seed=5)
    starts = np.fromiter((q.start_vertex for q in queries), dtype=np.int64)
    query_ids = np.fromiter((q.query_id for q in queries), dtype=np.int64)

    with prepare_engine("jit", base.graph, spec) as engine:
        engine.swap_snapshot(snapshot)
        # Drive the fused kernel directly on the swapped-in state so the
        # rebind is exercised even where numba is absent (engine.run
        # would fall back to the held batch kernel there).
        j_stats = EngineStats()
        j_paths, j_hops = run_walks_jit_arrays(
            snapshot.graph, spec, engine._state, starts, query_ids,
            seed=SEED, stats=j_stats,
        )
        swap_results = engine.run(queries, seed=SEED)

    kernel = make_walk_kernel(spec.make_sampler(), "default")
    kernel.prepare(snapshot.graph)
    b_stats = EngineStats()
    b_paths, b_hops = run_walks_batch_arrays(
        snapshot.graph, spec, kernel, starts, query_ids, seed=SEED,
        stats=b_stats,
    )
    _assert_same_walks(b_paths, b_hops, j_paths, j_hops)
    _assert_stats_equal(b_stats, j_stats)
    for path, row, hops in zip(swap_results.paths, b_paths, b_hops):
        assert np.array_equal(path, row[: int(hops) + 1])


def test_serve_layer_reproduces_offline_replay():
    """``WalkService(engine="jit")`` serves the exact paths the offline
    replay oracle predicts for each ``(seed, query_id)``."""
    from repro.serve import ServeConfig, WalkService, replay_paths, run_open_loop

    graph = _graph()
    spec = _spec("DeepWalk")
    rng = np.random.default_rng(3)
    candidates = np.nonzero(graph.degrees() > 0)[0]
    starts = rng.choice(candidates, size=32, replace=True)
    oracle = replay_paths(
        graph, spec, {i: int(v) for i, v in enumerate(starts)}, seed=SEED
    )

    async def _drive():
        config = ServeConfig(max_batch=8, max_wait_ms=5.0, queue_depth=128)
        service = WalkService(graph, spec, engine="jit", seed=SEED,
                              config=config)
        async with service:
            return await run_open_loop(service, starts)

    report = asyncio.run(_drive())
    assert not report.dropped
    assert report.completed == len(starts)
    for query_id, expected in oracle.items():
        assert np.array_equal(report.paths[query_id], expected)


def test_parallel_workers_dispatch_jit_shards(monkeypatch):
    """``backend="jit"`` runs the fused core inside each pool worker,
    bit-identically to batch workers.  Forcing the availability flag in
    the parent keeps the backend from being downgraded, so the workers
    genuinely take the jit dispatch path (interpreted where numba is
    absent — same code, same bits)."""
    import repro.parallel.engine as parallel_engine

    monkeypatch.setattr(parallel_engine, "NUMBA_AVAILABLE", True)
    graph = _graph()
    spec = _spec("Node2Vec")
    queries, _, _ = _arrays()
    batch, _ = run_software_walks("batch", graph, spec, queries, seed=SEED)
    jit, _ = run_software_walks("parallel", graph, spec, queries, seed=SEED,
                                workers=2, backend="jit")
    assert batch.num_queries == jit.num_queries
    for a, b in zip(batch.paths, jit.paths):
        assert np.array_equal(a, b)
    assert batch.total_steps == jit.total_steps


def test_unknown_backend_rejected_naming_choices():
    from repro.graph import cycle_graph
    from repro.walks import Query, URWSpec

    with pytest.raises(WalkConfigError, match="backend") as excinfo:
        run_software_walks("parallel", cycle_graph(4), URWSpec(max_length=3),
                           [Query(0, 0)], seed=1, workers=1, backend="cuda")
    message = str(excinfo.value)
    assert "batch" in message and "jit" in message
    with pytest.raises(WalkConfigError, match="does not accept"):
        run_software_walks("jit", cycle_graph(4), URWSpec(max_length=3),
                           [Query(0, 0)], seed=1, backend="jit")


def test_agrees_with_reference_distribution():
    """One chi-square cell: the jit kernel's visit histogram matches the
    pure-Python oracle at an independent seed (Node2Vec — the hardest
    RNG consumer: rejection rounds + second-order probes)."""
    graph = _graph()
    spec = _spec("Node2Vec")
    queries, _, _ = _arrays()
    kernel = make_walk_kernel(spec.make_sampler(), "default")
    kernel.prepare(graph)
    state = jit_state_from_kernel(graph, spec, kernel)
    jit_results = run_walks_jit_prepared(graph, spec, state, queries, seed=SEED)
    oracle, _ = run_software_walks("reference", graph, spec, queries,
                                   seed=SEED + 1)
    p = chi_square_compare(
        jit_results.visit_counts(graph.num_vertices),
        oracle.visit_counts(graph.num_vertices),
    )
    assert p > CHI_SQUARE_ALPHA, (
        f"jit kernel diverges from the reference distribution (p={p:.5f})"
    )
