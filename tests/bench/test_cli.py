"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import cycle_graph, save_edge_list, save_npz


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_walk_defaults(self):
        args = build_parser().parse_args(["walk"])
        assert args.algorithm == "URW"
        assert args.dataset == "WG"
        assert args.engine == "sim"
        assert args.device is None  # resolved to U55C by the sim engine

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WG" in out and "URW" in out and "U55C" in out and "fig8a" in out

    def test_walk_on_dataset(self, capsys):
        code = main([
            "walk", "--dataset", "WG", "--scale", "0.05", "--pipelines", "2",
            "--queries", "24", "--length", "8", "--device", "U50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MStep/s" in out and "walk lengths" in out

    def test_walk_software_engines(self, capsys):
        for engine in ("batch", "parallel", "reference"):
            code = main([
                "walk", "--engine", engine, "--dataset", "WG", "--scale", "0.05",
                "--queries", "32", "--length", "8", "--algorithm", "PPR",
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert f"{engine} engine:" in out and "hops/s" in out
            assert "walk lengths" in out

    def test_walk_parallel_engine_with_workers(self, capsys):
        code = main([
            "walk", "--engine", "parallel", "--workers", "2", "--dataset", "WG",
            "--scale", "0.05", "--queries", "16", "--length", "6",
        ])
        assert code == 0
        assert "parallel engine:" in capsys.readouterr().out

    def test_workers_flag_rejected_for_other_engines(self, capsys):
        for engine in ("batch", "sim"):
            code = main([
                "walk", "--engine", engine, "--workers", "2",
                "--dataset", "WG", "--scale", "0.05", "--queries", "8",
            ])
            assert code == 1
            assert "--engine parallel" in capsys.readouterr().err

    def test_software_engine_rejects_sim_only_flags(self, capsys):
        code = main([
            "walk", "--engine", "batch", "--streaming",
            "--dataset", "WG", "--scale", "0.05", "--queries", "8",
        ])
        assert code == 1
        assert "--engine sim" in capsys.readouterr().err

    def test_walk_streaming_with_trace(self, capsys):
        code = main([
            "walk", "--dataset", "AS", "--scale", "0.05", "--pipelines", "2",
            "--queries", "48", "--length", "20", "--streaming", "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "steady state" in out and "pipe0.sp" in out

    def test_walk_on_graph_file(self, tmp_path, capsys):
        path = tmp_path / "ring.npz"
        save_npz(cycle_graph(64), path)
        code = main([
            "walk", "--dataset", str(path), "--pipelines", "2",
            "--queries", "16", "--length", "10",
        ])
        assert code == 0
        assert "MStep/s" in capsys.readouterr().out

    def test_walk_on_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "ring.txt"
        save_edge_list(cycle_graph(32), path)
        code = main([
            "walk", "--dataset", str(path), "--pipelines", "2",
            "--queries", "8", "--length", "5",
        ])
        assert code == 0

    def test_experiment_command(self, capsys):
        assert main(["experiment", "tab1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "reservoir" in out

    def test_error_reported_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "missing.npz"
        code = main(["walk", "--dataset", str(missing)])
        assert code == 1
        assert "error:" in capsys.readouterr().err
