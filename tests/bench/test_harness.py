"""Unit tests for the benchmark harness (reporting + fast experiments)."""

import os

import pytest

from repro.bench import (
    EXPERIMENTS,
    ExperimentResult,
    geometric_mean,
    make_rmat_workload,
    make_spec,
    make_workload,
    speedup,
)
from repro.bench.workloads import compensated_graph500_initiator
from repro.errors import BenchmarkError


class TestReporting:
    def result(self):
        r = ExperimentResult("test", "A test table")
        r.add_row(graph="WG", value=1.0)
        r.add_row(graph="LJ", value=2.5)
        r.add_note("a note")
        return r

    def test_column(self):
        assert self.result().column("value") == [1.0, 2.5]

    def test_column_missing_raises(self):
        with pytest.raises(BenchmarkError, match="missing"):
            self.result().column("nope")

    def test_row_for(self):
        assert self.result().row_for(graph="LJ")["value"] == 2.5

    def test_row_for_missing_raises(self):
        with pytest.raises(BenchmarkError, match="no row"):
            self.result().row_for(graph="XX")

    def test_to_table_renders(self):
        text = self.result().to_table()
        assert "WG" in text and "2.50" in text and "a note" in text

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("x", "t").to_table()

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(BenchmarkError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(BenchmarkError):
            geometric_mean([])
        with pytest.raises(BenchmarkError):
            geometric_mean([1.0, -1.0])


class TestWorkloads:
    def test_make_spec_all_algorithms(self):
        for algorithm in (
            "URW", "PPR", "DeepWalk", "Node2Vec", "Node2Vec-reservoir", "MetaPath"
        ):
            spec = make_spec(algorithm)
            assert spec.max_length == 80

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            make_spec("QuantumWalk")

    def test_metapath_workload_has_types(self):
        workload = make_workload("WG", "MetaPath")
        assert workload.graph.has_edge_types

    def test_deepwalk_workload_is_weighted(self):
        workload = make_workload("WG", "DeepWalk")
        assert workload.graph.is_weighted

    def test_rmat_workload_labels(self):
        workload = make_rmat_workload(16, 8, "balanced")
        assert workload.graph.num_vertices == 2**12  # SC16 -> sim scale 12
        assert "SC16-8" in workload.label

    def test_compensated_initiator_sums_to_one(self):
        probs = compensated_graph500_initiator(24, 14)
        assert sum(probs) == pytest.approx(1.0)
        # more skewed than nominal Graph500
        assert probs[0] > 0.57
        assert probs[3] < 0.05

    def test_registry_covers_every_paper_artifact(self):
        expected = {
            "fig3a", "fig8a", "fig8b", "fig8c", "fig8d", "fig9", "fig10",
            "fig11", "tab1", "tab2", "tab3", "tab4",
            "micro-depth", "micro-outstanding",
        }
        assert expected <= set(EXPERIMENTS)


class TestFastExperiments:
    """Cheap experiments run directly; the simulator-heavy ones are
    exercised by benchmarks/ (and by these same functions in fast mode)."""

    def test_tab1(self):
        result = EXPERIMENTS["tab1"]()
        assert len(result.rows) == 6
        assert all(r["sampler"] == r["expected_sampler"] for r in result.rows)

    def test_tab4(self):
        result = EXPERIMENTS["tab4"]()
        assert len(result.rows) == 4
        assert all(r["frequency_mhz"] == 320.0 for r in result.rows)

    def test_micro_depth(self):
        result = EXPERIMENTS["micro-depth"]()
        assert any(r["meets_theorem"] for r in result.rows)
        shallow = result.row_for(depth=1)["bubble_ratio"]
        deep = [r for r in result.rows if r["meets_theorem"]]
        assert all(r["bubble_ratio"] < shallow for r in deep)
