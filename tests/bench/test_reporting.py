"""The BENCH record writer stamps host identity into every record.

Committed ``BENCH_*.json`` files are only interpretable when they say
what machine produced them — core count, platform, interpreter and
numeric-stack versions, and whether numba (the jit engine's compiler)
was even present.  The stamp happens centrally in ``write_bench_json``
so no individual benchmark can forget it.
"""

import json

from repro.bench.reporting import host_metadata, write_bench_json


def test_host_block_stamped_into_every_record(tmp_path):
    path = tmp_path / "BENCH_x.json"
    write_bench_json(path, {"benchmark": "x", "hops_per_sec": {"batch": 1}})
    record = json.loads(path.read_text())
    host = record["host"]
    assert host["cpu_count"] >= 1
    for key in ("platform", "machine", "python", "numpy"):
        assert isinstance(host[key], str) and host[key]
    # numba is optional: a version string when importable, null when not
    # — either way the record says which kernels could have compiled.
    assert "numba" in host
    # The caller's payload is not mutated by the stamp.
    payload = {"benchmark": "y"}
    write_bench_json(tmp_path / "BENCH_y.json", payload)
    assert "host" not in payload


def test_explicit_host_block_wins(tmp_path):
    """A benchmark that records host facts itself keeps them verbatim."""
    path = tmp_path / "BENCH_z.json"
    write_bench_json(path, {"benchmark": "z", "host": {"cpu_count": 128}})
    assert json.loads(path.read_text())["host"] == {"cpu_count": 128}


def test_host_metadata_matches_this_host():
    import numpy

    host = host_metadata()
    assert host["numpy"] == numpy.__version__
