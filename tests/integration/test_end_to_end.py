"""End-to-end consistency checks across modes, algorithms, devices."""

import numpy as np
import pytest

from repro.core import RidgeWalker, RidgeWalkerConfig, run_ridgewalker
from repro.graph import load_dataset
from repro.graph.datasets import assign_metapath_schema
from repro.memory.spec import DDR4_U250, MemorySpec
from repro.walks import (
    DeepWalkSpec,
    MetaPathSpec,
    Node2VecSpec,
    PPRSpec,
    URWSpec,
    make_queries,
)

FAST_MEM = MemorySpec(
    "fast-test",
    num_channels=8,
    random_tx_rate_mhz=320.0,
    sequential_gbs=80.0,
    round_trip_cycles=8,
    max_outstanding=16,
)


def config(**kw):
    defaults = dict(num_pipelines=4, memory=FAST_MEM, recirculation_depth=48)
    defaults.update(kw)
    return RidgeWalkerConfig(**defaults)


ALL_MODES = [
    pytest.param(dict(), id="dynamic-async"),
    pytest.param(dict(dynamic_scheduling=False), id="static-async"),
    pytest.param(dict(async_memory=False), id="dynamic-sync"),
    pytest.param(
        dict(dynamic_scheduling=False, async_memory=False, bulk_synchronous=True),
        id="baseline-bulk",
    ),
]


class TestAllModesComplete:
    @pytest.mark.parametrize("overrides", ALL_MODES)
    def test_urw_completes_in_every_mode(self, overrides):
        g = load_dataset("WG", scale=0.05, seed=1)
        queries = make_queries(g, 48, seed=2)
        run = run_ridgewalker(
            g, URWSpec(max_length=15), queries, config=config(**overrides), seed=3
        )
        assert run.results.num_queries == 48
        for path in run.results.paths:
            for a, b in zip(path[:-1], path[1:]):
                assert g.has_edge(int(a), int(b))

    @pytest.mark.parametrize("overrides", ALL_MODES)
    def test_metapath_completes_in_every_mode(self, overrides):
        g = load_dataset("WG", scale=0.05, seed=1, weighted=True)
        g = assign_metapath_schema(g, num_types=3, seed=4)
        queries = make_queries(g, 32, seed=5)
        run = run_ridgewalker(
            g,
            MetaPathSpec(pattern=[0, 1, 2], max_length=9),
            queries,
            config=config(**overrides),
            seed=6,
        )
        assert run.results.num_queries == 32


class TestMetricsConsistency:
    def test_transaction_count_tracks_steps_urw(self):
        g = load_dataset("AS", scale=0.05, seed=1)
        queries = make_queries(g, 64, seed=2)
        run = run_ridgewalker(g, URWSpec(max_length=20), queries, config=config(), seed=3)
        # URW: exactly one row + one column transaction per hop, plus one
        # row access per terminal-dangling check.
        steps = run.metrics.total_steps
        assert steps <= run.metrics.random_transactions <= 2 * steps + len(queries) * 2

    def test_total_steps_equals_path_lengths(self):
        g = load_dataset("CP", scale=0.05, seed=1)
        queries = make_queries(g, 64, seed=2)
        run = run_ridgewalker(g, URWSpec(max_length=20), queries, config=config(), seed=3)
        assert run.metrics.total_steps == int(run.results.lengths().sum())

    def test_words_at_least_transactions(self):
        g = load_dataset("WG", scale=0.05, seed=1, weighted=True)
        queries = make_queries(g, 32, seed=2)
        run = run_ridgewalker(g, DeepWalkSpec(max_length=10), queries, config=config(), seed=3)
        assert run.metrics.words_transferred >= run.metrics.random_transactions

    def test_throughput_improves_with_pipelines(self):
        g = load_dataset("AS", scale=0.1, seed=1)
        queries = make_queries(g, 256, seed=2)
        spec = URWSpec(max_length=40)
        narrow = RidgeWalker(g, spec, config(num_pipelines=2), seed=3).run_streaming(
            queries, warmup_cycles=1500, measure_cycles=4000
        )
        wide = RidgeWalker(g, spec, config(num_pipelines=4), seed=3).run_streaming(
            queries, warmup_cycles=1500, measure_cycles=4000
        )
        assert wide.msteps_per_second() > 1.6 * narrow.msteps_per_second()


class TestDeviceConfigs:
    def test_ddr4_two_pipeline_machine(self):
        g = load_dataset("WG", scale=0.05, seed=1)
        queries = make_queries(g, 48, seed=2)
        cfg = RidgeWalkerConfig(num_pipelines=2, memory=DDR4_U250)
        run = run_ridgewalker(g, URWSpec(max_length=15), queries, config=cfg, seed=3)
        assert run.results.num_queries == 48

    def test_second_order_tasks_thread_prev_vertex_across_pipelines(self):
        # Node2Vec on a multi-pipeline dynamic machine: prev_vertex must
        # survive rescheduling (it travels inside the task tuple).
        g = load_dataset("AS", scale=0.04, seed=1)
        queries = make_queries(g, 48, seed=2)
        run = run_ridgewalker(
            g,
            Node2VecSpec(p=1e9, q=1.0, max_length=20),
            queries,
            config=config(num_pipelines=4),
            seed=3,
        )
        for path in run.results.paths:
            for i in range(2, path.size):
                # with p -> inf, never backtrack (unless degree-1 trap,
                # which AS's undirected structure avoids for degree >= 2)
                if g.degree(int(path[i - 1])) > 1:
                    assert path[i] != path[i - 2]

    def test_ppr_lengths_unaffected_by_mode(self):
        g = load_dataset("AS", scale=0.05, seed=1)
        queries = make_queries(g, 200, seed=2)
        spec = PPRSpec(alpha=0.25, max_length=60)
        means = []
        for overrides in (dict(), dict(dynamic_scheduling=False)):
            run = run_ridgewalker(g, spec, queries, config=config(**overrides), seed=3)
            means.append(run.results.lengths().mean())
        assert means[0] == pytest.approx(means[1], rel=0.2)
