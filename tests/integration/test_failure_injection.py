"""Failure injection: the simulator must *detect* broken hardware, not
silently produce wrong walks.

Three fault classes are injected into otherwise-correct machines:
task loss (a module eats tasks), task duplication (a module forges
copies), and wedged modules (a stage stops serving).  In each case the
consistency machinery — the recorder's exactly-once accounting and the
kernel's progress-based deadlock detector — must turn the fault into a
loud error.
"""

import pytest

from repro.core import RidgeWalkerConfig, Task, TaskStatus, WalkRecorder
from repro.core.accelerator import _Machine
from repro.errors import DeadlockError, SimulationError
from repro.graph import load_dataset
from repro.memory.spec import MemorySpec
from repro.sim import Module, SimulationKernel
from repro.walks import URWSpec, make_queries

FAST_MEM = MemorySpec(
    "fast-test",
    num_channels=8,
    random_tx_rate_mhz=320.0,
    sequential_gbs=80.0,
    round_trip_cycles=8,
    max_outstanding=16,
)


def build_machine(num_queries=24):
    g = load_dataset("WG", scale=0.05, seed=1)
    queries = make_queries(g, num_queries, seed=2)
    cfg = RidgeWalkerConfig(num_pipelines=2, memory=FAST_MEM, recirculation_depth=32)
    return _Machine(g, URWSpec(max_length=12), cfg, seed=3, queries=queries), queries


class TaskEater(Module):
    """Silently consumes every task in a FIFO (models a lost beat)."""

    def __init__(self, fifo, after: int = 5):
        super().__init__("eater")
        self._fifo = fifo
        self._after = after
        self.eaten = 0

    def tick(self, cycle):
        if self.eaten >= self._after:
            return
        task = self._fifo.try_pop()
        if task is not None:
            self.eaten += 1


class TaskForger(Module):
    """Injects a duplicate task for an already-running query."""

    def __init__(self, fifo, query_id: int, fire_at: int = 200):
        super().__init__("forger")
        self._fifo = fifo
        self._query_id = query_id
        self._fire_at = fire_at
        self.fired = False

    def tick(self, cycle):
        if not self.fired and cycle >= self._fire_at and not self._fifo.is_full():
            self._fifo.push(Task(query_id=self._query_id, vertex=0))
            self.fired = True


class TestTaskLoss:
    def test_lost_tasks_are_detected_as_deadlock(self):
        machine, queries = build_machine()
        # Eat tasks out of one pipeline's recirculation stream: those
        # queries can never finish, so progress stops and the kernel's
        # deadlock detector fires rather than hanging forever.
        recirc = next(f for f in machine.kernel.fifos if f.name == "recirc0")
        machine.kernel.add_module(TaskEater(recirc, after=5), prepend=True)
        with pytest.raises((DeadlockError, SimulationError)):
            machine.kernel.run_until(
                lambda: machine.writer.completed >= len(queries), max_cycles=50_000
            )


class TestTaskDuplication:
    def test_forged_task_trips_recorder(self):
        machine, queries = build_machine()
        loader_out = next(f for f in machine.kernel.fifos if f.name == "loader.out")
        machine.kernel.add_module(TaskForger(loader_out, query_id=0, fire_at=300))
        # The duplicate eventually produces a hop or finish for a query
        # whose path is already closed -> exactly-once accounting raises.
        with pytest.raises(SimulationError):
            machine.kernel.run_until(
                lambda: machine.writer.completed >= len(queries) + 1,
                max_cycles=50_000,
            )


class TestWedgedModule:
    def test_wedged_sampler_is_detected(self):
        machine, queries = build_machine()
        # Break one sampling module: it stops ticking (hard hang).
        broken = machine.pipelines[0].sampling
        broken.tick = lambda cycle: None
        with pytest.raises((DeadlockError, SimulationError)):
            machine.kernel.run_until(
                lambda: machine.writer.completed >= len(queries), max_cycles=80_000
            )


class TestRecorderGuards:
    def test_double_finish_is_loud(self):
        recorder = WalkRecorder()
        recorder.start_query(0, 1)
        recorder.finish_query(0)
        with pytest.raises(SimulationError):
            recorder.finish_query(0)

    def test_results_refuse_partial_state(self):
        recorder = WalkRecorder()
        recorder.start_query(0, 1)
        recorder.start_query(1, 2)
        recorder.finish_query(0)
        with pytest.raises(SimulationError, match="unfinished"):
            recorder.to_results()


class TestKernelGuards:
    def test_cycle_budget_is_enforced_with_live_traffic(self):
        # A machine making progress forever (endless loader) must still
        # respect the explicit cycle budget.
        g = load_dataset("WG", scale=0.05, seed=1)
        queries = make_queries(g, 8, seed=2)
        cfg = RidgeWalkerConfig(num_pipelines=2, memory=FAST_MEM)
        machine = _Machine(g, URWSpec(max_length=12), cfg, seed=3,
                           queries=queries, endless=True)
        with pytest.raises(SimulationError, match="exceeded"):
            machine.kernel.run_until(lambda: False, max_cycles=3000)
