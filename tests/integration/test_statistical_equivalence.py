"""Statistical equivalence: the accelerator vs the reference engine.

The paper's correctness claim is that out-of-order, rescheduled execution
does not change walk *statistics* (Markov property, Section III-C).  We
verify it: visit histograms and transition frequencies produced by the
cycle-level machine must be statistically indistinguishable from the
pure-software reference engine's.
"""

import numpy as np
import pytest
from stat_helpers import CHI_SQUARE_ALPHA, chi_square_compare

from repro.core import RidgeWalkerConfig, run_ridgewalker
from repro.graph import from_edges, load_dataset
from repro.memory.spec import MemorySpec
from repro.walks import (
    DeepWalkSpec,
    Node2VecSpec,
    PPRSpec,
    Query,
    URWSpec,
    make_queries,
    run_walks,
)

#: Heavy chi-square sweeps against the cycle simulator: full CI lane only.
pytestmark = pytest.mark.slow

FAST_MEM = MemorySpec(
    "fast-test",
    num_channels=8,
    random_tx_rate_mhz=320.0,
    sequential_gbs=80.0,
    round_trip_cycles=8,
    max_outstanding=16,
)


def config(**kw):
    defaults = dict(num_pipelines=4, memory=FAST_MEM, recirculation_depth=48)
    defaults.update(kw)
    return RidgeWalkerConfig(**defaults)


class TestVisitDistributions:
    def _compare(self, graph, spec, num_queries=400, seed=5):
        queries = make_queries(graph, num_queries, seed=seed)
        hw = run_ridgewalker(graph, spec, queries, config=config(), seed=seed + 1)
        sw = run_walks(graph, spec, queries, seed=seed + 2)
        p = chi_square_compare(
            hw.results.visit_counts(graph.num_vertices),
            sw.visit_counts(graph.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA, f"visit distributions diverge (p={p:.5f})"

    def test_urw_visits_match(self):
        self._compare(load_dataset("WG", scale=0.05, seed=1), URWSpec(max_length=30))

    def test_ppr_visits_match(self):
        self._compare(
            load_dataset("AS", scale=0.05, seed=1), PPRSpec(alpha=0.2, max_length=40)
        )

    def test_deepwalk_visits_match(self):
        self._compare(
            load_dataset("WG", scale=0.05, seed=1, weighted=True),
            DeepWalkSpec(max_length=25),
        )

    def test_node2vec_visits_match(self):
        self._compare(
            load_dataset("AS", scale=0.04, seed=1),
            Node2VecSpec(max_length=20),
            num_queries=300,
        )


class TestTransitionDistributions:
    def test_weighted_transitions_match_exact(self):
        # Tiny weighted graph: hardware transition frequencies from
        # vertex 0 must converge to the exact weighted distribution.
        g = from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 0)],
            weights=[1.0, 2.0, 5.0, 1.0, 1.0, 1.0],
            num_vertices=4,
        )
        queries = [Query(i, 0) for i in range(600)]
        hw = run_ridgewalker(g, DeepWalkSpec(max_length=2), queries, config=config(), seed=9)
        transitions = hw.results.transition_counts(4)[0]
        total = transitions[1:].sum()
        observed = transitions[1:] / total
        expected = np.array([1.0, 2.0, 5.0]) / 8.0
        assert np.allclose(observed, expected, atol=0.06), (observed, expected)

    def test_walk_length_distribution_matches_geometric(self):
        from repro.graph import cycle_graph

        g = cycle_graph(512)
        alpha = 0.25
        queries = [Query(i, i % 512) for i in range(800)]
        hw = run_ridgewalker(
            g, PPRSpec(alpha=alpha, max_length=200), queries, config=config(), seed=11
        )
        lengths = hw.results.lengths()
        assert lengths.mean() == pytest.approx(1 / alpha, rel=0.15)
        # Memorylessness: P(L > 8 | L > 4) ~ P(L > 4)
        p_gt4 = (lengths > 4).mean()
        p_gt8_given_gt4 = (lengths > 8).sum() / max(1, (lengths > 4).sum())
        assert abs(p_gt4 - p_gt8_given_gt4) < 0.12


class TestSchedulingInvariance:
    """Scheduling mode must not change statistics (only timing)."""

    def test_static_and_dynamic_agree(self):
        g = load_dataset("CP", scale=0.05, seed=1)
        queries = make_queries(g, 300, seed=3)
        spec = URWSpec(max_length=25)
        dynamic = run_ridgewalker(g, spec, queries, config=config(), seed=7)
        static = run_ridgewalker(
            g, spec, queries, config=config(dynamic_scheduling=False), seed=7
        )
        p = chi_square_compare(
            dynamic.results.visit_counts(g.num_vertices),
            static.results.visit_counts(g.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA

    def test_pipeline_count_does_not_change_statistics(self):
        g = load_dataset("WG", scale=0.05, seed=1)
        queries = make_queries(g, 300, seed=4)
        spec = URWSpec(max_length=25)
        narrow = run_ridgewalker(g, spec, queries, config=config(num_pipelines=2), seed=8)
        wide = run_ridgewalker(g, spec, queries, config=config(num_pipelines=4), seed=8)
        p = chi_square_compare(
            narrow.results.visit_counts(g.num_vertices),
            wide.results.visit_counts(g.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA
