"""Unit tests for the baseline performance models."""

import numpy as np
import pytest

from repro.baselines import (
    CPUModel,
    FastRWModel,
    GPUModel,
    LightRWModel,
    SuModel,
    WorkloadTrace,
    rng_words_per_step,
)
from repro.errors import SimulationError
from repro.graph import cycle_graph, load_dataset, powerlaw
from repro.walks import DeepWalkSpec, Node2VecSpec, PPRSpec, Query, URWSpec, make_queries


def workload(dataset="WG", scale=0.15, weighted=False, seed=1):
    g = load_dataset(dataset, scale=scale, seed=seed, weighted=weighted)
    return g, make_queries(g, 128, seed=2)


class TestWorkloadTrace:
    def test_lengths_and_steps(self):
        g = cycle_graph(50)
        queries = [Query(i, i % 50) for i in range(20)]
        trace = WorkloadTrace(g, URWSpec(max_length=30), queries, seed=1)
        assert trace.total_steps == 600
        assert np.all(trace.lengths == 30)

    def test_alive_per_round(self):
        g = cycle_graph(50)
        queries = [Query(i, i % 50) for i in range(10)]
        trace = WorkloadTrace(g, URWSpec(max_length=5), queries, seed=1)
        assert trace.alive_per_round().tolist() == [10] * 5

    def test_alive_decays_with_ppr(self):
        g = cycle_graph(500)
        queries = [Query(i, 0) for i in range(100)]
        trace = WorkloadTrace(g, PPRSpec(alpha=0.3, max_length=80), queries, seed=1)
        alive = trace.alive_per_round()
        assert alive[0] == 100
        assert alive[-1] < alive[0]
        assert np.all(np.diff(alive) <= 0)

    def test_mean_scan_words(self):
        g, queries = workload(weighted=True)
        trace = WorkloadTrace(g, DeepWalkSpec(max_length=10), queries, seed=1)
        assert trace.mean_scan_words_per_step() >= 1.0

    def test_rng_words_per_step(self):
        assert rng_words_per_step(URWSpec()) == 1
        assert rng_words_per_step(DeepWalkSpec()) == 2
        assert rng_words_per_step(Node2VecSpec(strategy="rejection")) == 2


class TestFastRWModel:
    def test_cache_cliff(self):
        model = FastRWModel(cache_bytes=64 * 1024)
        small = powerlaw(num_vertices=500, num_edges=3000, seed=1, name="small")
        large = powerlaw(num_vertices=60_000, num_edges=240_000, seed=2, name="large")
        spec = DeepWalkSpec(max_length=20)
        hit_small = model.cache_hit_rate(small, spec, None)
        hit_large = model.cache_hit_rate(large, spec, None)
        assert hit_small == 1.0
        assert hit_large < 0.75

    def test_throughput_drops_when_cache_spills(self):
        spec = DeepWalkSpec(max_length=20)
        model = FastRWModel(cache_bytes=32 * 1024)
        g_small, q_small = workload("WG", scale=0.05)
        g_large, q_large = workload("LJ", scale=0.4)
        fast = model.run(g_small.with_weights(np.ones(g_small.num_edges) + 1e-3), spec, q_small, seed=3)
        slow = model.run(g_large.with_weights(np.ones(g_large.num_edges) + 1e-3), spec, q_large, seed=3)
        assert fast.bandwidth_utilization() > slow.bandwidth_utilization()

    def test_metrics_sane(self):
        g, queries = workload(weighted=True)
        metrics = FastRWModel().run(g, DeepWalkSpec(max_length=20), queries, seed=3)
        assert metrics.total_steps > 0
        assert metrics.msteps_per_second() > 0
        assert 0 < metrics.bandwidth_utilization() <= 1.0

    def test_empty_queries_rejected(self):
        g, _ = workload()
        with pytest.raises(SimulationError):
            FastRWModel().run(g, URWSpec(), [], seed=1)


class TestLightRWModel:
    def test_bubbles_on_directed_graph(self):
        g, queries = workload("CP", scale=0.2, weighted=True)
        metrics = LightRWModel().run(g, Node2VecSpec(strategy="reservoir", max_length=40), queries)
        assert metrics.extra["bubble_ratio_slots"] > 0.1

    def test_no_bubbles_on_fixed_length_walks(self):
        g = cycle_graph(100).with_weights(np.ones(100))
        queries = [Query(i, i % 100) for i in range(64)]
        metrics = LightRWModel().run(g, DeepWalkSpec(max_length=20), queries)
        assert metrics.extra["bubble_ratio_slots"] == 0.0

    def test_scan_cost_reduces_throughput(self):
        # Reservoir sampling scans the neighbor list, so dense graphs
        # cost more per hop than degree-1 chains.
        sparse = cycle_graph(400).with_weights(np.ones(400))  # degree 1
        queries = [Query(i, i % 400) for i in range(64)]
        dense = powerlaw(num_vertices=400, num_edges=20_000, seed=3)
        dense = dense.with_weights(np.ones(dense.num_edges) * 2.0)
        spec = Node2VecSpec(strategy="reservoir", max_length=20)
        thin = LightRWModel().run(sparse, spec, queries)
        thick = LightRWModel().run(dense, spec, make_queries(dense, 64, seed=4))
        assert thin.msteps_per_second() > thick.msteps_per_second()


class TestSuModel:
    def test_latency_bound_dominates(self):
        g, queries = workload()
        metrics = SuModel().run(g, URWSpec(max_length=40), queries)
        chase = metrics.extra["chase_bound_steps_per_cycle"]
        bandwidth = metrics.extra["bandwidth_bound_steps_per_cycle"]
        assert chase < bandwidth  # pointer chase is the limiter

    def test_pool_width_scales_throughput(self):
        g, queries = workload()
        small = SuModel(walker_pool=2).run(g, URWSpec(max_length=40), queries)
        large = SuModel(walker_pool=8).run(g, URWSpec(max_length=40), queries)
        assert large.msteps_per_second() > 1.5 * small.msteps_per_second()


class TestGPUModel:
    def test_lockstep_efficiency_uniform(self):
        model = GPUModel()
        assert model.lockstep_efficiency(np.full(64, 80)) == pytest.approx(1.0)

    def test_lockstep_efficiency_skewed(self):
        model = GPUModel()
        lengths = np.full(64, 5)
        lengths[0] = 80  # one straggler per warp half
        lengths[32] = 80
        eff = model.lockstep_efficiency(lengths)
        assert eff == pytest.approx((5 * 62 + 160) / (2 * 80 * 32), rel=1e-6)

    def test_divergence_hurts_throughput(self):
        g = cycle_graph(1000)
        queries = [Query(i, i % 1000) for i in range(256)]
        uniform = GPUModel().run(g, URWSpec(max_length=40), queries)
        diverged = GPUModel().run(g, PPRSpec(alpha=0.3, max_length=40), queries)
        assert uniform.msteps_per_second() > 2 * diverged.msteps_per_second()

    def test_cache_factor_small_vs_large(self):
        model = GPUModel(full_scale_bytes=10 * 1024 * 1024)
        g, _ = workload()
        assert model.cache_factor(g) == pytest.approx(1.0)
        big = GPUModel(full_scale_bytes=5_000_000_000)
        assert big.cache_factor(g) < 0.6

    def test_batch_regime_is_memory_bound(self):
        g = cycle_graph(2000)
        queries = [Query(i, i % 2000) for i in range(512)]
        metrics = GPUModel(regime="batch").run(g, URWSpec(max_length=40), queries)
        assert metrics.msteps_per_second() == pytest.approx(
            metrics.extra["memory_bound_msteps"], rel=0.05
        )

    def test_alias_slower_than_uniform_in_real_regime(self):
        g, queries = workload(weighted=True)
        urw = GPUModel().run(g, URWSpec(max_length=30), queries)
        deepwalk = GPUModel().run(g, DeepWalkSpec(max_length=30), queries)
        assert urw.msteps_per_second() > 2 * deepwalk.msteps_per_second()

    def test_invalid_regime_rejected(self):
        with pytest.raises(SimulationError):
            GPUModel(regime="magic")


class TestCPUModel:
    def test_slower_than_gpu(self):
        g, queries = workload()
        cpu = CPUModel().run(g, URWSpec(max_length=30), queries)
        gpu = GPUModel().run(g, URWSpec(max_length=30), queries)
        assert cpu.msteps_per_second() < gpu.msteps_per_second()

    def test_thread_scaling(self):
        g, queries = workload()
        few = CPUModel(threads=8).run(g, URWSpec(max_length=30), queries)
        many = CPUModel(threads=128).run(g, URWSpec(max_length=30), queries)
        assert many.msteps_per_second() > few.msteps_per_second()
