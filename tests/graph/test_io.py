"""Unit tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    load_edge_list,
    load_npz,
    powerlaw,
    save_edge_list,
    save_npz,
)
from repro.graph.datasets import assign_metapath_schema


class TestNpzRoundTrip:
    def test_plain_graph(self, tmp_path):
        g = powerlaw(num_vertices=50, num_edges=200, seed=1, name="roundtrip")
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded.name == "roundtrip"
        assert np.array_equal(loaded.row_ptr, g.row_ptr)
        assert np.array_equal(loaded.col, g.col)
        assert loaded.weights is None

    def test_weighted_typed_graph(self, tmp_path):
        g = powerlaw(num_vertices=30, num_edges=100, seed=2)
        g = g.with_weights(np.linspace(1, 2, g.num_edges))
        g = assign_metapath_schema(g, num_types=3, seed=3)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert np.allclose(loaded.weights, g.weights)
        assert np.array_equal(loaded.edge_types, g.edge_types)
        assert np.array_equal(loaded.vertex_types, g.vertex_types)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_npz(tmp_path / "missing.npz")

    def test_corrupt_file_raises_format_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(GraphFormatError):
            load_npz(path)


class TestEdgeListRoundTrip:
    def test_unweighted(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(g.edges())

    def test_weighted(self, tmp_path):
        g = from_edges([(0, 1), (1, 0)], weights=[1.5, 2.5])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.is_weighted
        assert sorted(loaded.weights.tolist()) == [1.5, 2.5]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0\t1\n1\t2\n")
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == {(0, 1), (1, 2)}

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_mixed_weighted_unweighted_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n1 2\n")
        with pytest.raises(GraphFormatError, match="mixed"):
            load_edge_list(path)

    def test_name_from_filename(self, tmp_path):
        g = from_edges([(0, 1)])
        path = tmp_path / "mygraph.txt"
        save_edge_list(g, path)
        assert load_edge_list(path).name == "mygraph"
