"""Unit tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    load_edge_list,
    load_npz,
    powerlaw,
    save_edge_list,
    save_npz,
)
from repro.graph.datasets import assign_metapath_schema


class TestNpzRoundTrip:
    def test_plain_graph(self, tmp_path):
        g = powerlaw(num_vertices=50, num_edges=200, seed=1, name="roundtrip")
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded.name == "roundtrip"
        assert np.array_equal(loaded.row_ptr, g.row_ptr)
        assert np.array_equal(loaded.col, g.col)
        assert loaded.weights is None

    def test_weighted_typed_graph(self, tmp_path):
        g = powerlaw(num_vertices=30, num_edges=100, seed=2)
        g = g.with_weights(np.linspace(1, 2, g.num_edges))
        g = assign_metapath_schema(g, num_types=3, seed=3)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert np.allclose(loaded.weights, g.weights)
        assert np.array_equal(loaded.edge_types, g.edge_types)
        assert np.array_equal(loaded.vertex_types, g.vertex_types)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_npz(tmp_path / "missing.npz")

    def test_corrupt_file_raises_format_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(GraphFormatError):
            load_npz(path)


class TestRoundTripPreservesDerivedState:
    """save/load must hand back a graph whose *derived* facts — the
    ``cols_sorted`` fast-path flag, exact weights, metapath typing —
    are indistinguishable from the original's, because engines key
    behaviour (binary-searched ``has_edge``, alias tables, admissible
    hops) off them."""

    def test_npz_keeps_cols_sorted_flag(self, tmp_path):
        g = from_edges([(0, 2), (0, 1), (1, 0)], num_vertices=3)
        assert g.cols_sorted  # from_edges sorts neighbor lists by default
        path = tmp_path / "sorted.npz"
        save_npz(g, path)
        assert load_npz(path).cols_sorted

    def test_npz_keeps_unsorted_cols_unsorted(self, tmp_path):
        g = from_edges([(0, 2), (0, 1), (1, 0)], num_vertices=3,
                       sort_neighbors=False)
        assert not g.cols_sorted
        path = tmp_path / "unsorted.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        # Neither silently sorted nor mis-flagged: the exact column
        # order survives and the flag re-derives to False.
        assert not loaded.cols_sorted
        assert np.array_equal(loaded.col, g.col)

    def test_npz_weights_are_bit_exact(self, tmp_path):
        g = from_edges([(0, 1), (0, 2), (1, 2)], num_vertices=3,
                       weights=[0.1, 1 / 3, 7.25])
        path = tmp_path / "w.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        # npz is the lossless native format: bit equality, not allclose.
        assert np.array_equal(loaded.weights, g.weights)
        assert loaded.weights.dtype == g.weights.dtype

    def test_npz_keeps_metapath_assignments_usable(self, tmp_path):
        """A typed graph must keep working as a MetaPath workload after a
        round trip, not just carry equal arrays."""
        from repro.walks import MetaPathSpec, run_walks, make_queries

        g = powerlaw(num_vertices=40, num_edges=160, seed=5)
        g = g.with_weights(np.linspace(1, 2, g.num_edges))
        g = assign_metapath_schema(g, num_types=3, seed=6)
        path = tmp_path / "typed.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded.has_edge_types
        assert np.array_equal(loaded.edge_types, g.edge_types)
        assert np.array_equal(loaded.vertex_types, g.vertex_types)
        spec = MetaPathSpec(pattern=[0, 1, 2], max_length=8)
        queries = make_queries(loaded, 20, seed=7)
        original = run_walks(g, spec, queries, seed=8)
        reloaded = run_walks(loaded, spec, queries, seed=8)
        for a, b in zip(original.paths, reloaded.paths):
            assert np.array_equal(a, b)

    def test_edge_list_round_trip_keeps_sorted_flag_and_weights(self, tmp_path):
        g = from_edges([(0, 2), (0, 1), (1, 0)], num_vertices=3,
                       weights=[1.5, 2.5, 0.125])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.cols_sorted
        # Text serialization uses %.8g: exactly-representable weights
        # must survive verbatim (dyadic rationals are the honest bar for
        # a decimal text format).
        by_edge = dict(zip(g.edges(), g.weights))
        loaded_by_edge = dict(zip(loaded.edges(), loaded.weights))
        assert by_edge == loaded_by_edge


class TestEdgeListRoundTrip:
    def test_unweighted(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(g.edges())

    def test_weighted(self, tmp_path):
        g = from_edges([(0, 1), (1, 0)], weights=[1.5, 2.5])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.is_weighted
        assert sorted(loaded.weights.tolist()) == [1.5, 2.5]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0\t1\n1\t2\n")
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == {(0, 1), (1, 2)}

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_mixed_weighted_unweighted_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n1 2\n")
        with pytest.raises(GraphFormatError, match="mixed"):
            load_edge_list(path)

    def test_name_from_filename(self, tmp_path):
        g = from_edges([(0, 1)])
        path = tmp_path / "mygraph.txt"
        save_edge_list(g, path)
        assert load_edge_list(path).name == "mygraph"
