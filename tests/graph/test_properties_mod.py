"""Unit tests for graph structural statistics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    degree_statistics,
    estimate_diameter,
    gini_coefficient,
    largest_out_component_fraction,
    path_graph,
    powerlaw,
    star_graph,
    working_set_bytes,
)


class TestDegreeStatistics:
    def test_cycle_is_regular(self):
        stats = degree_statistics(cycle_graph(10))
        assert stats.minimum == stats.maximum == 1
        assert stats.gini == pytest.approx(0.0, abs=1e-9)
        assert stats.dangling_fraction == 0.0

    def test_star_is_skewed(self):
        stats = degree_statistics(star_graph(20))
        assert stats.maximum == 20
        assert stats.dangling_fraction == pytest.approx(20 / 21)
        assert stats.is_skewed()

    def test_empty_graph_rejected(self):
        g = CSRGraph(row_ptr=np.array([0]), col=np.array([], dtype=np.int64))
        with pytest.raises(GraphError):
            degree_statistics(g)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(50, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_single_holder_approaches_one(self):
        values = np.zeros(100)
        values[0] = 1000
        assert gini_coefficient(values) > 0.98

    def test_all_zero_is_zero(self):
        assert gini_coefficient(np.zeros(10)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            gini_coefficient(np.array([]))


class TestDiameter:
    def test_path_graph_diameter(self):
        # BFS from vertex 0 reaches depth n-1.
        assert estimate_diameter(path_graph(10), num_sources=10, seed=0) == 9

    def test_cycle_graph_diameter(self):
        assert estimate_diameter(cycle_graph(8), num_sources=8, seed=0) == 7

    def test_complete_graph_diameter(self):
        assert estimate_diameter(complete_graph(5), num_sources=5, seed=0) == 1

    def test_all_dangling_graph(self):
        g = CSRGraph(row_ptr=np.array([0, 0, 0]), col=np.array([], dtype=np.int64))
        assert estimate_diameter(g) == 0

    def test_is_lower_bound(self):
        g = powerlaw(num_vertices=300, num_edges=1500, seed=3)
        few = estimate_diameter(g, num_sources=1, seed=1)
        many = estimate_diameter(g, num_sources=16, seed=1)
        assert many >= few


class TestComponents:
    def test_complete_graph_fully_reachable(self):
        assert largest_out_component_fraction(complete_graph(6)) == 1.0

    def test_star_reaches_everything(self):
        assert largest_out_component_fraction(star_graph(5)) == 1.0

    def test_disconnected(self):
        # two cycles 0->1->0 and 2->3->2
        g = CSRGraph(row_ptr=np.array([0, 1, 2, 3, 4]), col=np.array([1, 0, 3, 2]))
        assert largest_out_component_fraction(g) == pytest.approx(0.5)


class TestWorkingSet:
    def test_matches_row_pointer_bytes(self):
        g = cycle_graph(100)
        assert working_set_bytes(g, 64) == g.row_pointer_bytes(64)
        assert working_set_bytes(g, 256) == 4 * working_set_bytes(g, 64)
