"""Unit tests for alias-table construction (Walker/Vose)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import (
    alias_expected_distribution,
    build_alias_slots,
    build_alias_table,
    from_edges,
)


def alias_exact_distribution(prob: np.ndarray, alias: np.ndarray) -> np.ndarray:
    """The exact distribution an alias table realizes.

    Slot i is hit with probability 1/n; it yields i with prob[i] and
    alias[i] otherwise.
    """
    n = prob.size
    out = np.zeros(n)
    for i in range(n):
        out[i] += prob[i] / n
        out[alias[i]] += (1.0 - prob[i]) / n
    return out


class TestBuildAliasSlots:
    def test_uniform_weights_all_accept(self):
        prob, alias = build_alias_slots(np.ones(4))
        assert np.allclose(prob, 1.0)

    def test_realizes_exact_distribution(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        prob, alias = build_alias_slots(weights)
        realized = alias_exact_distribution(prob, alias)
        assert np.allclose(realized, weights / weights.sum(), atol=1e-12)

    def test_single_item(self):
        prob, alias = build_alias_slots(np.array([7.0]))
        assert prob.tolist() == [1.0]
        assert alias.tolist() == [0]

    def test_extreme_skew(self):
        weights = np.array([1e-9, 1.0, 1e-9])
        prob, alias = build_alias_slots(weights)
        realized = alias_exact_distribution(prob, alias)
        assert np.allclose(realized, weights / weights.sum(), atol=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(SamplingError, match="empty"):
            build_alias_slots(np.array([]))

    def test_rejects_zero_weight(self):
        with pytest.raises(SamplingError, match="positive"):
            build_alias_slots(np.array([1.0, 0.0]))

    def test_rejects_nan(self):
        with pytest.raises(SamplingError, match="positive|finite"):
            build_alias_slots(np.array([1.0, np.nan]))

    def test_alias_indices_in_range(self):
        weights = np.array([5.0, 1.0, 1.0, 1.0, 10.0])
        _, alias = build_alias_slots(weights)
        assert alias.min() >= 0 and alias.max() < weights.size


class TestBuildAliasTable:
    def graph(self):
        return from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 0), (2, 0)],
            weights=[1.0, 2.0, 1.0, 4.0, 1.0],
            num_vertices=4,
        )

    def test_flat_layout_aligned_with_col(self):
        g = self.graph()
        table = build_alias_table(g)
        assert table.num_slots == g.num_edges

    def test_per_vertex_distribution(self):
        g = self.graph()
        table = build_alias_table(g)
        lo = int(g.row_ptr[0])
        d = g.degree(0)
        realized = alias_exact_distribution(
            np.asarray(table.prob[lo : lo + d]), np.asarray(table.alias[lo : lo + d])
        )
        expected = alias_expected_distribution(g, 0)
        assert np.allclose(realized, expected, atol=1e-12)

    def test_unweighted_graph_gets_uniform_tables(self):
        g = from_edges([(0, 1), (0, 2)], num_vertices=3)
        table = build_alias_table(g)
        assert np.allclose(np.asarray(table.prob), 1.0)

    def test_dangling_vertices_skipped(self):
        g = from_edges([(0, 1)], num_vertices=3)
        table = build_alias_table(g)  # must not raise on dangling 1, 2
        assert table.num_slots == 1

    def test_sample_index_statistics(self):
        g = self.graph()
        table = build_alias_table(g)
        rng = np.random.default_rng(0)
        lo, d = int(g.row_ptr[0]), g.degree(0)
        draws = np.zeros(d)
        n = 40_000
        for _ in range(n):
            draws[table.sample_index(lo, d, rng.random(), rng.random())] += 1
        expected = alias_expected_distribution(g, 0)
        assert np.allclose(draws / n, expected, atol=0.02)

    def test_sample_index_rejects_empty(self):
        g = self.graph()
        table = build_alias_table(g)
        with pytest.raises(SamplingError, match="empty"):
            table.sample_index(0, 0, 0.5, 0.5)

    def test_table_bytes(self):
        g = self.graph()
        table = build_alias_table(g)
        assert table.table_bytes(64) == g.num_edges * 8
