"""Unit tests for degree-distribution analysis helpers."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    cycle_graph,
    degree_ccdf,
    degree_histogram,
    fit_powerlaw_exponent,
    load_dataset,
    powerlaw,
    star_graph,
)


class TestDegreeHistogram:
    def test_regular_graph(self):
        hist = degree_histogram(cycle_graph(10))
        assert hist.tolist() == [0, 10]  # everyone has out-degree 1

    def test_star_graph(self):
        hist = degree_histogram(star_graph(5))
        assert hist[0] == 5 and hist[5] == 1

    def test_in_degree_option(self):
        g = star_graph(5)
        in_hist = degree_histogram(g, in_degree=True)
        assert in_hist[0] == 1  # the hub receives nothing
        assert in_hist[1] == 5


class TestCCDF:
    def test_monotone_decreasing(self):
        g = powerlaw(num_vertices=500, num_edges=2500, seed=1)
        degrees, ccdf = degree_ccdf(g)
        assert np.all(np.diff(ccdf) <= 1e-12)
        assert ccdf[0] <= 1.0

    def test_starts_at_total_mass(self):
        g = cycle_graph(10)
        degrees, ccdf = degree_ccdf(g)
        assert degrees.tolist() == [1]
        assert ccdf[0] == pytest.approx(1.0)


class TestPowerlawFit:
    def test_synthetic_tail_is_heavy(self):
        # Table II stand-ins must carry the catalog's heavy in-degree tail.
        for name in ("WG", "LJ"):
            g = load_dataset(name, scale=0.3, seed=1)
            alpha = fit_powerlaw_exponent(g, in_degree=True)
            assert 1.2 < alpha < 3.5, (name, alpha)

    def test_preferential_tail_heavier_than_uniform(self):
        # Preferential target selection produces a far heavier in-degree
        # tail than uniform selection; the CCDF reaches much deeper.
        pref = powerlaw(num_vertices=2000, num_edges=10_000, exponent=2.0,
                        preferential=True, seed=1, max_in_share=None)
        unif = powerlaw(num_vertices=2000, num_edges=10_000, exponent=2.0,
                        preferential=False, seed=1)
        d_pref, _ = degree_ccdf(pref, in_degree=True)
        d_unif, _ = degree_ccdf(unif, in_degree=True)
        assert d_pref.max() > 10 * d_unif.max()

    def test_insufficient_tail_rejected(self):
        with pytest.raises(GraphError, match="tail"):
            fit_powerlaw_exponent(cycle_graph(5), minimum_degree=10)

    def test_minimum_degree_validation(self):
        with pytest.raises(GraphError):
            fit_powerlaw_exponent(cycle_graph(5), minimum_degree=0)
