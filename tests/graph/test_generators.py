"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    BALANCED_INITIATOR,
    GRAPH500_INITIATOR,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    gini_coefficient,
    path_graph,
    powerlaw,
    rmat,
    star_graph,
)


class TestRmat:
    def test_vertex_count_is_power_of_scale(self):
        g = rmat(scale=6, edge_factor=4, seed=1)
        assert g.num_vertices == 64

    def test_deterministic_for_seed(self):
        a = rmat(scale=6, edge_factor=4, seed=42)
        b = rmat(scale=6, edge_factor=4, seed=42)
        assert a.num_edges == b.num_edges
        assert np.array_equal(a.col, b.col)

    def test_different_seeds_differ(self):
        a = rmat(scale=6, edge_factor=4, seed=1)
        b = rmat(scale=6, edge_factor=4, seed=2)
        assert a.num_edges != b.num_edges or not np.array_equal(a.col, b.col)

    def test_graph500_skew_exceeds_balanced(self):
        balanced = rmat(scale=9, edge_factor=8, initiator=BALANCED_INITIATOR, seed=3)
        skewed = rmat(scale=9, edge_factor=8, initiator=GRAPH500_INITIATOR, seed=3)
        gini_balanced = gini_coefficient(balanced.degrees())
        gini_skewed = gini_coefficient(skewed.degrees())
        assert gini_skewed > gini_balanced + 0.1

    def test_dedupe_false_keeps_all_edges(self):
        g = rmat(scale=5, edge_factor=8, seed=4, dedupe=False)
        assert g.num_edges == 8 * 32

    def test_undirected_has_symmetric_edges(self):
        g = rmat(scale=5, edge_factor=4, seed=5, directed=False)
        edges = set(g.edges())
        assert all((b, a) in edges for a, b in edges)

    def test_rejects_bad_initiator(self):
        with pytest.raises(GraphError, match="sum to 1"):
            rmat(scale=4, initiator=(0.5, 0.5, 0.5, 0.5))

    def test_rejects_bad_scale(self):
        with pytest.raises(GraphError, match="scale"):
            rmat(scale=0)

    def test_name_labels(self):
        g = rmat(scale=4, edge_factor=2, seed=0)
        assert g.name == "rmat-sc4-ef2"


class TestPowerlaw:
    def test_hits_edge_target(self):
        g = powerlaw(num_vertices=500, num_edges=2500, seed=1)
        assert g.num_edges == 2500

    def test_dangling_fraction_respected(self):
        g = powerlaw(num_vertices=1000, num_edges=5000, dangling_fraction=0.2, seed=2)
        assert g.dangling_fraction() == pytest.approx(0.2, abs=0.02)

    def test_zero_dangling_when_not_requested(self):
        g = powerlaw(num_vertices=500, num_edges=3000, dangling_fraction=0.0, seed=3)
        assert g.dangling_fraction() == pytest.approx(0.0, abs=0.02)

    def test_no_self_loops(self):
        g = powerlaw(num_vertices=200, num_edges=1000, seed=4)
        assert all(a != b for a, b in g.edges())

    def test_deterministic(self):
        a = powerlaw(num_vertices=300, num_edges=1500, seed=7)
        b = powerlaw(num_vertices=300, num_edges=1500, seed=7)
        assert np.array_equal(a.col, b.col)

    def test_preferential_more_skewed_in_degree(self):
        pref = powerlaw(num_vertices=800, num_edges=4000, preferential=True, seed=8)
        unif = powerlaw(num_vertices=800, num_edges=4000, preferential=False, seed=8)
        in_pref = np.bincount(pref.col, minlength=800)
        in_unif = np.bincount(unif.col, minlength=800)
        assert gini_coefficient(in_pref) > gini_coefficient(in_unif)

    def test_dangling_requires_directed(self):
        with pytest.raises(GraphError, match="directed"):
            powerlaw(num_vertices=100, num_edges=400, dangling_fraction=0.1, directed=False)

    def test_rejects_bad_exponent(self):
        with pytest.raises(GraphError, match="exponent"):
            powerlaw(num_vertices=100, num_edges=400, exponent=1.0)

    def test_saturation_on_tiny_graph_does_not_hang(self):
        # Target more edges than can exist: generator must stop gracefully.
        g = powerlaw(num_vertices=5, num_edges=1000, seed=9)
        assert g.num_edges <= 20  # 5*4 possible non-loop edges


class TestDeterministicGraphs:
    def test_cycle(self):
        g = cycle_graph(4)
        assert set(g.edges()) == {(0, 1), (1, 2), (2, 3), (3, 0)}

    def test_path_last_vertex_dangles(self):
        g = path_graph(3)
        assert g.degree(2) == 0
        assert set(g.edges()) == {(0, 1), (1, 2)}

    def test_star_leaves_dangle(self):
        g = star_graph(3)
        assert g.degree(0) == 3
        assert all(g.degree(v) == 0 for v in (1, 2, 3))

    def test_complete(self):
        g = complete_graph(3)
        assert g.num_edges == 6
        assert not any(a == b for a, b in g.edges())

    def test_erdos_renyi_edge_count_close(self):
        g = erdos_renyi(200, 1000, seed=1)
        assert 800 <= g.num_edges <= 1000

    def test_size_validation(self):
        for factory in (cycle_graph, path_graph, star_graph, complete_graph):
            with pytest.raises(GraphError):
                factory(0)
