"""Unit tests for the Table II dataset catalog."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    DATASET_ORDER,
    assign_metapath_schema,
    dataset_names,
    get_spec,
    load_dataset,
    thunderrw_weights,
)


class TestCatalog:
    def test_all_six_datasets_present(self):
        assert dataset_names() == ("WG", "CP", "AS", "LJ", "AB", "UK")

    def test_specs_echo_paper_table(self):
        wg = get_spec("WG")
        assert wg.long_name == "web-Google"
        assert wg.paper_vertices == 900_000
        assert wg.paper_diameter == 21
        assert get_spec("AB").paper_diameter == 133

    def test_order_matches_ascending_edges(self):
        edges = [get_spec(n).paper_edges for n in DATASET_ORDER]
        assert edges == sorted(edges)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(GraphError, match="unknown dataset"):
            get_spec("nope")


class TestLoadDataset:
    def test_scaled_size_targets(self):
        g = load_dataset("WG", scale=1.0, seed=0)
        spec = get_spec("WG")
        assert g.num_vertices == spec.scaled_vertices
        assert abs(g.num_edges - spec.scaled_edges) <= spec.scaled_edges * 0.05

    def test_deterministic(self):
        a = load_dataset("CP", scale=0.2, seed=5)
        b = load_dataset("CP", scale=0.2, seed=5)
        assert np.array_equal(a.col, b.col)

    def test_different_datasets_differ(self):
        a = load_dataset("WG", scale=0.2, seed=5)
        b = load_dataset("UK", scale=0.2, seed=5)
        assert a.num_vertices != b.num_vertices

    def test_dangling_fraction_tracks_spec(self):
        for name in ("WG", "CP", "UK"):
            g = load_dataset(name, scale=0.5, seed=2)
            assert g.dangling_fraction() == pytest.approx(
                get_spec(name).dangling_fraction, abs=0.03
            )

    def test_undirected_datasets_have_symmetric_edges(self):
        g = load_dataset("AS", scale=0.1, seed=1)
        edges = set(g.edges())
        assert all((b, a) in edges for a, b in edges)

    def test_weighted_load(self):
        g = load_dataset("WG", scale=0.1, seed=1, weighted=True)
        assert g.is_weighted
        assert g.weights.min() >= 1.0
        assert g.weights.max() < 64.0

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(GraphError, match="scale"):
            load_dataset("WG", scale=0.0)


class TestThunderrwWeights:
    def test_range_and_determinism(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        w1 = thunderrw_weights(g, seed=3)
        w2 = thunderrw_weights(g, seed=3)
        assert np.array_equal(w1, w2)
        assert w1.size == g.num_edges
        assert w1.min() >= 1.0 and w1.max() < 64.0

    def test_seed_changes_weights(self):
        g = load_dataset("WG", scale=0.1, seed=1)
        assert not np.array_equal(thunderrw_weights(g, seed=1), thunderrw_weights(g, seed=2))


class TestMetapathSchema:
    def test_types_assigned(self):
        g = assign_metapath_schema(load_dataset("WG", scale=0.1, seed=1), num_types=4, seed=9)
        assert g.vertex_types is not None and g.edge_types is not None
        assert set(np.unique(g.vertex_types)) <= set(range(4))

    def test_edge_type_is_destination_type(self):
        g = assign_metapath_schema(load_dataset("WG", scale=0.1, seed=1), num_types=3, seed=9)
        for v in range(min(50, g.num_vertices)):
            neighbors = g.neighbors(v)
            if neighbors.size:
                types = g.neighbor_edge_types(v)
                assert np.array_equal(types, g.vertex_types[neighbors])

    def test_rejects_zero_types(self):
        with pytest.raises(GraphError, match="num_types"):
            assign_metapath_schema(load_dataset("WG", scale=0.1, seed=1), num_types=0)
