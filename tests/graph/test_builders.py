"""Unit tests for graph builders."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import from_adjacency, from_adjacency_dict, from_edges
from repro.graph.builders import validate_edge_weights


class TestEdgeWeightValidation:
    """Bad weights must fail loudly at build time, naming the edge —
    not surface later as corrupt alias tables."""

    @pytest.mark.parametrize("bad", [-1.0, 0.0, float("nan"), float("inf"),
                                     float("-inf")])
    def test_bad_weight_rejected_with_edge_context(self, bad):
        with pytest.raises(GraphError, match=r"edge 1 \(1 -> 2\)"):
            from_edges([(0, 1), (1, 2)], weights=[1.0, bad])

    def test_message_names_the_constraint(self):
        with pytest.raises(GraphError, match="strictly positive and finite"):
            from_edges([(0, 1)], weights=[-3.0])

    def test_nan_rejected_despite_comparison_semantics(self):
        # NaN compares False to everything; the finite check must catch it.
        with pytest.raises(GraphError, match="edge 0"):
            from_edges([(0, 1)], weights=[float("nan")])

    def test_undirected_build_validates_before_mirroring(self):
        # The reported index is the input edge's, not the mirrored copy's.
        with pytest.raises(GraphError, match=r"edge 1 \(2 -> 0\)"):
            from_edges([(0, 1), (2, 0)], weights=[1.0, -1.0], directed=False)

    def test_valid_weights_pass(self):
        g = from_edges([(0, 1), (1, 2)], weights=[0.5, 2.0])
        assert g.is_weighted

    def test_helper_accepts_empty(self):
        validate_edge_weights(np.empty(0))

    def test_helper_without_edge_context(self):
        with pytest.raises(GraphError, match="edge 2 has"):
            validate_edge_weights(np.array([1.0, 2.0, -5.0]))


class TestFromEdges:
    def test_simple(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        assert g.num_vertices == 3
        assert set(g.edges()) == {(0, 1), (1, 2), (0, 2)}

    def test_neighbor_lists_sorted(self):
        g = from_edges([(0, 2), (0, 1), (0, 3)])
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_explicit_vertex_count_allows_isolated(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_vertex_count_too_small_rejected(self):
        with pytest.raises(GraphError, match="exceeds num_vertices"):
            from_edges([(0, 9)], num_vertices=5)

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            from_edges([(-1, 0)])

    def test_empty_edges(self):
        g = from_edges([], num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_undirected_mirrors_edges(self):
        g = from_edges([(0, 1)], directed=False)
        assert set(g.edges()) == {(0, 1), (1, 0)}

    def test_undirected_mirrors_weights(self):
        g = from_edges([(0, 1)], weights=[5.0], directed=False)
        assert g.weights.tolist() == [5.0, 5.0]

    def test_dedupe_keeps_one_copy(self):
        g = from_edges([(0, 1), (0, 1), (0, 1)], dedupe=True)
        assert g.num_edges == 1

    def test_without_dedupe_parallel_edges_remain(self):
        g = from_edges([(0, 1), (0, 1)])
        assert g.num_edges == 2

    def test_weights_preserved_under_sorting(self):
        g = from_edges([(0, 2), (0, 1)], weights=[2.0, 1.0])
        # after sorting neighbors ascending, weights must follow their edge
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbor_weights(0).tolist() == [1.0, 2.0]

    def test_misaligned_weights_rejected(self):
        with pytest.raises(GraphError, match="align"):
            from_edges([(0, 1)], weights=[1.0, 2.0])

    def test_edge_types_follow_edges(self):
        g = from_edges([(0, 2), (0, 1)], edge_types=[7, 3])
        assert g.neighbor_edge_types(0).tolist() == [3, 7]

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError, match="pairs"):
            from_edges([(0, 1, 2)])


class TestFromAdjacency:
    def test_binary_matrix_is_unweighted(self):
        m = np.array([[0, 1], [1, 0]])
        g = from_adjacency(m)
        assert not g.is_weighted
        assert set(g.edges()) == {(0, 1), (1, 0)}

    def test_valued_matrix_becomes_weighted(self):
        m = np.array([[0.0, 2.5], [0.0, 0.0]])
        g = from_adjacency(m)
        assert g.is_weighted
        assert g.neighbor_weights(0).tolist() == [2.5]

    def test_non_square_rejected(self):
        with pytest.raises(GraphError, match="square"):
            from_adjacency(np.zeros((2, 3)))


class TestFromAdjacencyDict:
    def test_round_trip(self):
        g = from_adjacency_dict({0: [1, 2], 1: [], 2: [0]})
        assert set(g.edges()) == {(0, 1), (0, 2), (2, 0)}

    def test_infers_vertex_count_from_values(self):
        g = from_adjacency_dict({0: [5]})
        assert g.num_vertices == 6
