"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, from_adjacency_dict, paper_example_graph


def make_simple() -> CSRGraph:
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {} (dangling)
    return CSRGraph(row_ptr=np.array([0, 2, 3, 3]), col=np.array([1, 2, 2]))


class TestConstruction:
    def test_basic_shape(self):
        g = make_simple()
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = CSRGraph(row_ptr=np.array([0]), col=np.array([], dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_single_vertex_no_edges(self):
        g = CSRGraph(row_ptr=np.array([0, 0]), col=np.array([], dtype=np.int64))
        assert g.num_vertices == 1
        assert g.degree(0) == 0

    def test_rejects_nonzero_first_pointer(self):
        with pytest.raises(GraphError, match="row_ptr\\[0\\]"):
            CSRGraph(row_ptr=np.array([1, 2]), col=np.array([0, 0]))

    def test_rejects_decreasing_row_ptr(self):
        with pytest.raises(GraphError, match="monotonically"):
            CSRGraph(row_ptr=np.array([0, 2, 1]), col=np.array([0, 1]))

    def test_rejects_mismatched_edge_count(self):
        with pytest.raises(GraphError, match="number of"):
            CSRGraph(row_ptr=np.array([0, 1]), col=np.array([0, 0]))

    def test_rejects_out_of_range_column(self):
        with pytest.raises(GraphError, match="column indices"):
            CSRGraph(row_ptr=np.array([0, 1]), col=np.array([5]))

    def test_rejects_negative_column(self):
        with pytest.raises(GraphError, match="column indices"):
            CSRGraph(row_ptr=np.array([0, 1]), col=np.array([-1]))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(GraphError, match="positive"):
            CSRGraph(
                row_ptr=np.array([0, 1]), col=np.array([0]), weights=np.array([0.0])
            )

    def test_rejects_nan_weights(self):
        with pytest.raises(GraphError, match="finite"):
            CSRGraph(
                row_ptr=np.array([0, 1]), col=np.array([0]), weights=np.array([np.nan])
            )

    def test_rejects_misaligned_weights(self):
        with pytest.raises(GraphError, match="align"):
            CSRGraph(
                row_ptr=np.array([0, 2]),
                col=np.array([0, 0]),
                weights=np.array([1.0]),
            )

    def test_rejects_misaligned_vertex_types(self):
        with pytest.raises(GraphError, match="per vertex"):
            CSRGraph(
                row_ptr=np.array([0, 1]),
                col=np.array([0]),
                vertex_types=np.array([1, 2], dtype=np.int16),
            )

    def test_arrays_are_read_only(self):
        g = make_simple()
        with pytest.raises(ValueError):
            g.col[0] = 9


class TestQueries:
    def test_degree(self):
        g = make_simple()
        assert [g.degree(v) for v in range(3)] == [2, 1, 0]

    def test_degrees_vector(self):
        g = make_simple()
        assert g.degrees().tolist() == [2, 1, 0]

    def test_neighbors(self):
        g = make_simple()
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(2).tolist() == []

    def test_degree_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            make_simple().degree(3)

    def test_neighbor_weights_unweighted_defaults_to_ones(self):
        g = make_simple()
        assert g.neighbor_weights(0).tolist() == [1.0, 1.0]

    def test_neighbor_weights_weighted(self):
        g = make_simple().with_weights([3.0, 1.0, 2.0])
        assert g.neighbor_weights(0).tolist() == [3.0, 1.0]

    def test_has_edge(self):
        g = make_simple()
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(2, 0)

    def test_cols_sorted_detected(self):
        assert make_simple().cols_sorted
        # Descents *between* neighbor lists don't break sortedness.
        g = CSRGraph(row_ptr=np.array([0, 2, 4, 4, 4]), col=np.array([2, 3, 0, 1]))
        assert g.cols_sorted

    def test_cols_unsorted_detected_and_has_edge_still_correct(self):
        g = CSRGraph(row_ptr=np.array([0, 3, 3, 3]), col=np.array([2, 0, 1]))
        assert not g.cols_sorted
        assert g.has_edge(0, 0) and g.has_edge(0, 1) and g.has_edge(0, 2)
        assert not g.has_edge(1, 0)

    def test_has_edge_binary_search_agrees_with_scan(self):
        rng = np.random.default_rng(5)
        from repro.graph import rmat

        g = rmat(7, edge_factor=4, seed=3)
        assert g.cols_sorted
        for _ in range(200):
            src = int(rng.integers(0, g.num_vertices))
            dst = int(rng.integers(0, g.num_vertices))
            assert g.has_edge(src, dst) == bool(np.any(g.neighbors(src) == dst))

    def test_dangling_vertices(self):
        g = make_simple()
        assert g.dangling_vertices().tolist() == [2]
        assert g.dangling_fraction() == pytest.approx(1 / 3)

    def test_edges_iterator(self):
        g = make_simple()
        assert list(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_neighbor_edge_types_requires_types(self):
        with pytest.raises(GraphError, match="edge types"):
            make_simple().neighbor_edge_types(0)


class TestDerived:
    def test_with_weights_roundtrip(self):
        g = make_simple().with_weights([1.0, 2.0, 3.0])
        assert g.is_weighted
        assert g.weights.tolist() == [1.0, 2.0, 3.0]

    def test_with_name(self):
        g = make_simple().with_name("renamed")
        assert g.name == "renamed"

    def test_reverse_swaps_edges(self):
        g = make_simple()
        r = g.reverse()
        assert set(r.edges()) == {(1, 0), (2, 0), (2, 1)}

    def test_reverse_twice_is_identity(self):
        g = make_simple()
        rr = g.reverse().reverse()
        assert set(rr.edges()) == set(g.edges())

    def test_reverse_carries_weights(self):
        g = make_simple().with_weights([1.0, 2.0, 3.0])
        r = g.reverse()
        # edge 0->2 had weight 2.0; reversed edge 2->0 must carry it
        idx = list(r.edges()).index((2, 0))
        assert r.weights[idx] == 2.0


class TestSizeAccounting:
    def test_row_pointer_bytes(self):
        g = make_simple()
        assert g.row_pointer_bytes(64) == 3 * 8
        assert g.row_pointer_bytes(256) == 3 * 32

    def test_column_list_bytes(self):
        g = make_simple()
        assert g.column_list_bytes(64) == 3 * 8

    def test_total_bytes(self):
        g = make_simple()
        assert g.total_bytes() == g.row_pointer_bytes() + g.column_list_bytes()

    def test_rejects_non_byte_width(self):
        with pytest.raises(GraphError, match="multiple of 8"):
            make_simple().row_pointer_bytes(65)


class TestPaperExample:
    def test_shape_matches_figure_2(self):
        g = paper_example_graph()
        assert g.num_vertices == 5
        assert g.degree(2) == 0  # v3 has no outgoing edges
        assert g.neighbors(0).tolist() == [1, 3, 4]  # v1 -> v2, v4, v5

    def test_adjacency_dict_equivalence(self):
        g = from_adjacency_dict({0: [1], 1: [0]})
        assert set(g.edges()) == {(0, 1), (1, 0)}
