"""Test-suite root conftest: make shared helpers importable.

The suite uses pytest's rootdir-based (no ``__init__.py``) layout, where
only each test file's own directory lands on ``sys.path``; adding this
directory explicitly lets every suite import shared helpers such as
``stat_helpers`` without packaging the tests.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
