"""Unit tests for the hybrid selection layer: cost model, guards, scalar twin.

The property sweep (``test_hybrid_properties.py``) proves the vectorized
dispatch contracts; this file covers the row-local cost model's decision
table, every guard/error branch, and the scalar :class:`HybridSampler`
the reference engine runs in auto mode — held to the same exact per-hop
distributions as the base samplers via the shared chi-square helper.
"""

import numpy as np
import pytest
from stat_helpers import CHI_SQUARE_ALPHA, assert_chi_square_fit, chi_square_compare

from repro.errors import SamplingError
from repro.graph import from_edges
from repro.graph.datasets import assign_metapath_schema
from repro.sampling import (
    AliasSampler,
    BiasedScanKernel,
    HybridConfig,
    HybridKernel,
    HybridSampler,
    NumpyRandomSource,
    QueryStreams,
    RejectionSampler,
    ReservoirSampler,
    StepContext,
    UniformSampler,
    exact_distribution,
    make_walk_kernel,
    make_walk_sampler,
    resolve_strategy_codes,
    select_row_strategy,
    select_strategies,
)
from repro.sampling.hybrid import (
    STRATEGY_ALIAS,
    STRATEGY_HEAVY,
    STRATEGY_ITS,
    STRATEGY_ONE,
    STRATEGY_REJECTION,
    STRATEGY_RESERVOIR,
    STRATEGY_UNIFORM,
)
from repro.sampling.vectorized import UniformKernel, make_kernel
from repro.walks import MetaPathSpec, Node2VecSpec, make_queries, run_walks, run_walks_batch
from repro.walks.node2vec import exact_step_distribution


class TestCostModel:
    def test_degenerate_rows_take_the_single_neighbor(self):
        assert select_row_strategy(0, None) == (STRATEGY_ONE, STRATEGY_ONE)
        assert select_row_strategy(1, np.array([7.0])) == (
            STRATEGY_ONE, STRATEGY_ONE,
        )

    def test_equal_weights_take_uniform(self):
        first, second = select_row_strategy(20, np.full(20, 3.5))
        assert first == STRATEGY_UNIFORM
        assert second == STRATEGY_HEAVY

    def test_small_rows_take_its(self):
        first, second = select_row_strategy(4, np.array([1.0, 5.0, 2.0, 9.0]))
        assert first == STRATEGY_ITS
        assert second == STRATEGY_ITS

    def test_dominant_first_edge_takes_its_at_high_degree(self):
        weights = np.array([1000.0] + [0.01] * 29)
        first, second = select_row_strategy(30, weights)
        assert first == STRATEGY_ITS      # expected scan depth ~1
        assert second == STRATEGY_HEAVY

    def test_dominant_last_edge_takes_alias(self):
        weights = np.array([0.01] * 29 + [1000.0])
        first, _ = select_row_strategy(30, weights)
        assert first == STRATEGY_ALIAS    # expected scan depth ~30

    def test_update_rate_widens_the_its_budget(self):
        weights = np.concatenate([np.full(10, 10.0), np.full(20, 0.2)])
        static_first, _ = select_row_strategy(30, weights)
        churny = HybridConfig(update_rate=1.0)
        churny_first, _ = select_row_strategy(30, weights, churny)
        assert static_first == STRATEGY_ALIAS
        assert churny_first == STRATEGY_ITS

    def test_unweighted_graph_first_order_is_uniform_or_degenerate(self):
        graph = from_edges([(0, 1), (0, 2), (1, 0)], num_vertices=3)
        codes = select_strategies(graph)
        assert codes[0, 0] == STRATEGY_UNIFORM      # degree 2
        assert codes[1, 0] == STRATEGY_ONE          # degree 1
        assert codes[2, 0] == STRATEGY_ONE          # degree 0 (never sampled)

    def test_config_validation(self):
        with pytest.raises(SamplingError, match="small_degree"):
            HybridConfig(small_degree=0)
        with pytest.raises(SamplingError, match="its_max_expected_reads"):
            HybridConfig(its_max_expected_reads=0.0)
        with pytest.raises(SamplingError, match="non-negative"):
            HybridConfig(update_rate=-1.0)


class TestResolveStrategyCodes:
    def _codes(self, n=4):
        codes = np.zeros((n, 2), dtype=np.int8)
        codes[:, 1] = STRATEGY_HEAVY
        return codes

    def test_heavy_resolves_per_base(self):
        codes = self._codes()
        rejection = resolve_strategy_codes(RejectionSampler(p=2, q=0.5), codes)
        reservoir = resolve_strategy_codes(ReservoirSampler(p=2.0, q=0.5), codes)
        assert set(rejection.tolist()) == {STRATEGY_REJECTION}
        assert set(reservoir.tolist()) == {STRATEGY_RESERVOIR}

    def test_edge_types_pin_reservoir_everywhere(self):
        codes = self._codes()
        codes[:, 1] = STRATEGY_ITS
        resolved = resolve_strategy_codes(
            ReservoirSampler(), codes, has_edge_types=True
        )
        assert set(resolved.tolist()) == {STRATEGY_RESERVOIR}

    def test_uniform_base_is_all_uniform(self):
        resolved = resolve_strategy_codes(UniformSampler(), self._codes())
        assert set(resolved.tolist()) == {STRATEGY_UNIFORM}

    def test_bad_shape_rejected(self):
        with pytest.raises(SamplingError, match="shape"):
            resolve_strategy_codes(UniformSampler(), np.zeros(4, dtype=np.int8))


def weighted_graph():
    rng = np.random.default_rng(7)
    edges, weights = [], []
    n = 16
    for v in range(n):
        degree = int(rng.integers(1, 12))
        dsts = rng.choice([u for u in range(n) if u != v], size=degree,
                          replace=False)
        for dst in dsts:
            edges.append((v, int(dst)))
            weights.append(float(rng.uniform(0.1, 10.0)))
    return from_edges(edges, num_vertices=n, weights=weights)


class TestHybridKernelGuards:
    def test_sample_before_prepare_rejected(self):
        kernel = HybridKernel(AliasSampler())
        with pytest.raises(SamplingError, match="prepare"):
            kernel.sample(weighted_graph(), np.array([0]), np.array([-1]),
                          None, QueryStreams(0, [0]), np.array([0]))

    def test_state_export_before_prepare_rejected(self):
        with pytest.raises(SamplingError, match="prepare"):
            HybridKernel(AliasSampler()).state_arrays()
        with pytest.raises(SamplingError, match="prepare"):
            HybridKernel(AliasSampler()).strategy_counts()

    def test_forced_map_must_match_vertex_count(self):
        kernel = HybridKernel(AliasSampler(),
                              selection=np.zeros(3, dtype=np.int8))
        with pytest.raises(SamplingError, match="entries"):
            kernel.prepare(weighted_graph())

    def test_forced_map_with_foreign_strategy_rejected(self):
        with pytest.raises(SamplingError, match="cannot dispatch"):
            HybridKernel(AliasSampler(),
                         selection=np.full(16, STRATEGY_REJECTION, dtype=np.int8))

    def test_unknown_base_sampler_rejected(self):
        from repro.sampling.base import SampleOutcome, Sampler

        class Bespoke(Sampler):
            name = "bespoke"

            def sample(self, graph, context, random_source):
                return SampleOutcome(index=0)

        with pytest.raises(SamplingError, match="default"):
            HybridKernel(Bespoke())
        with pytest.raises(SamplingError, match="default"):
            HybridSampler(Bespoke())

    def test_factories_map_modes(self):
        assert isinstance(make_walk_kernel(UniformSampler(), "default"),
                          UniformKernel)
        assert isinstance(make_walk_kernel(UniformSampler(), "auto"), HybridKernel)
        base = UniformSampler()
        assert make_walk_sampler(base, "default") is base
        assert isinstance(make_walk_sampler(base, "auto"), HybridSampler)


class TestBiasedScanKernel:
    def test_rejects_admissible_type(self):
        graph = weighted_graph()
        kernel = BiasedScanKernel(p=2.0, q=0.5)
        kernel.prepare(graph)
        with pytest.raises(SamplingError, match="admissib"):
            kernel.sample(graph, np.array([0]), np.array([-1]), 1,
                          QueryStreams(0, [0]), np.array([0]))

    def test_parameter_validation(self):
        with pytest.raises(SamplingError, match="together"):
            BiasedScanKernel(p=2.0)
        with pytest.raises(SamplingError, match="positive"):
            BiasedScanKernel(p=-1.0, q=0.5)

    def test_first_order_holds_no_state(self):
        kernel = BiasedScanKernel()
        kernel.prepare(weighted_graph())
        assert kernel.state_arrays() == {}

    def test_second_order_guards_state(self):
        kernel = BiasedScanKernel(p=2.0, q=0.5)
        with pytest.raises(SamplingError, match="prepare"):
            kernel.state_arrays()
        with pytest.raises(SamplingError, match="prepare"):
            kernel.sample(weighted_graph(), np.array([0]), np.array([1]),
                          None, QueryStreams(0, [0]), np.array([0]))

    def test_rejection_base_scan_ignores_weights(self):
        """Rejection's law is structural bias only; its scan stand-in must
        realize the same distribution even when the graph carries weights
        — otherwise auto mode would sample an inconsistent per-row
        mixture of two different laws."""
        graph = weighted_graph()
        spec = Node2VecSpec(p=8.0, q=8.0, strategy="rejection", max_length=10)
        forced_scan = np.full(graph.num_vertices, STRATEGY_ITS, dtype=np.int8)
        forced_rej = np.full(graph.num_vertices, STRATEGY_REJECTION, dtype=np.int8)
        scan = HybridKernel(spec.make_sampler(), selection=forced_scan)
        scan.prepare(graph)
        rej = HybridKernel(spec.make_sampler(), selection=forced_rej)
        rej.prepare(graph)
        queries = make_queries(graph, 400, seed=2)
        a = run_walks_batch(graph, spec, queries, seed=3, kernel=scan)
        b = run_walks_batch(graph, spec, queries, seed=4, kernel=rej)
        p = chi_square_compare(
            a.visit_counts(graph.num_vertices),
            b.visit_counts(graph.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA, (
            f"scan and rejection strategies realize different laws on a "
            f"weighted graph (p={p:.5f})"
        )

    def test_matches_exact_node2vec_distribution(self):
        """The scan strategy must realize the same exact law rejection
        and reservoir sampling converge to."""
        edges = [(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (1, 4), (2, 1),
                 (3, 1), (4, 1)]
        graph = from_edges(edges, num_vertices=5)
        kernel = BiasedScanKernel(p=4.0, q=0.25)
        kernel.prepare(graph)
        n = 40_000
        streams = QueryStreams(5, np.arange(n))
        batch = kernel.sample(
            graph,
            np.full(n, 1, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            None,
            streams,
            np.arange(n),
        )
        counts = np.bincount(batch.choice, minlength=graph.degree(1))
        assert_chi_square_fit(
            counts, exact_step_distribution(graph, 1, 0, 4.0, 0.25),
            label="biased-scan kernel",
        )


class TestHubAdjacency:
    """The hub-row bitmap accelerator must be invisible except in speed."""

    def _hub_graph(self, seed=11, n=96):
        rng = np.random.default_rng(seed)
        edges = []
        for v in range(6):  # hub rows well above the bitmap threshold
            dsts = rng.choice([u for u in range(n) if u != v],
                              size=int(rng.integers(40, 70)), replace=False)
            edges.extend((v, int(d)) for d in dsts)
        for v in range(6, n):
            dsts = rng.choice([u for u in range(n) if u != v],
                              size=int(rng.integers(1, 6)), replace=False)
            edges.extend((v, int(d)) for d in dsts)
        return from_edges(edges, num_vertices=n)

    def test_probe_matches_has_edge_exactly(self):
        from repro.sampling.vectorized import HubAdjacency

        graph = self._hub_graph()
        hub = HubAdjacency.build(graph, min_degree=32, max_bytes=1 << 20)
        assert hub is not None
        rng = np.random.default_rng(3)
        src = rng.integers(0, 6, size=500)      # bitmap-covered rows
        dst = rng.integers(0, graph.num_vertices, size=500)
        got = hub.probe_ranked(hub.rank[src], dst)
        expected = np.array([graph.has_edge(int(s), int(d))
                             for s, d in zip(src, dst)])
        assert np.array_equal(got, expected)

    def test_byte_budget_keeps_heaviest_rows(self):
        from repro.sampling.vectorized import HubAdjacency

        graph = self._hub_graph()
        words = (graph.num_vertices + 63) // 64
        hub = HubAdjacency.build(graph, min_degree=32, max_bytes=2 * words * 8)
        assert hub is not None
        kept = np.nonzero(hub.rank >= 0)[0]
        assert kept.size == 2
        degrees = graph.degrees()
        assert set(degrees[kept]) <= set(np.sort(degrees)[-2:])

    def test_disabled_cases_return_none(self):
        from repro.sampling.vectorized import HubAdjacency

        graph = self._hub_graph()
        assert HubAdjacency.build(graph, min_degree=32, max_bytes=0) is None
        assert HubAdjacency.build(graph, min_degree=1000, max_bytes=1 << 20) is None

    def test_churn_config_disables_the_bitmap(self):
        assert HybridConfig().hub_bitmap_budget > 0
        assert HybridConfig(update_rate=0.5).hub_bitmap_budget == 0

    def test_rejection_kernel_bit_identical_with_and_without_bitmap(self):
        from repro.sampling.vectorized import HubAdjacency, RejectionKernel
        from repro.walks import Query

        graph = self._hub_graph()
        spec = Node2VecSpec(p=2.0, q=0.5, max_length=15)
        queries = [Query(i, i % 6) for i in range(40)]
        plain = RejectionKernel(p=2.0, q=0.5)
        plain.prepare(graph)
        accelerated = RejectionKernel(p=2.0, q=0.5)
        accelerated.prepare(graph)
        accelerated.attach_hub_adjacency(
            HubAdjacency.build(graph, min_degree=32, max_bytes=1 << 20)
        )
        a = run_walks_batch(graph, spec, queries, seed=9, kernel=plain)
        b = run_walks_batch(graph, spec, queries, seed=9, kernel=accelerated)
        for pa, pb in zip(a.paths, b.paths):
            assert np.array_equal(pa, pb)

    def test_bitmap_survives_state_round_trip(self):
        from repro.sampling.vectorized import RejectionKernel

        graph = self._hub_graph()
        kernel = make_walk_kernel(RejectionSampler(p=2.0, q=0.5), "auto",
                                  config=HybridConfig(hub_bitmap_min_degree=32))
        kernel.prepare(graph)
        arrays = kernel.state_arrays()
        assert "hub_bits" in arrays and "hub_rank" in arrays
        clone = make_walk_kernel(RejectionSampler(p=2.0, q=0.5), "auto")
        clone.load_state(arrays)
        sub = clone._kernels[STRATEGY_REJECTION]
        assert isinstance(sub, RejectionKernel)
        assert sub._hub_adjacency is not None


class TestHybridSamplerScalar:
    """The reference engine's auto mode: every dispatch arm, exact laws."""

    def test_sample_before_prepare_rejected(self):
        sampler = HybridSampler(AliasSampler())
        with pytest.raises(SamplingError, match="prepare"):
            sampler.sample(weighted_graph(), StepContext(vertex=0),
                           NumpyRandomSource(np.random.default_rng(0)))

    @pytest.mark.parametrize("code,label", [
        (STRATEGY_UNIFORM, "uniform"),
        (STRATEGY_ALIAS, "alias"),
        (STRATEGY_ITS, "its"),
    ])
    def test_first_order_arms_fit_exact_distribution(self, code, label):
        graph = from_edges([(0, d) for d in range(1, 7)],
                           weights=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
                           if code != STRATEGY_UNIFORM else [2.0] * 6,
                           num_vertices=7)
        forced = np.full(7, code, dtype=np.int8)
        sampler = HybridSampler(AliasSampler(), selection=forced)
        sampler.prepare(graph)
        source = NumpyRandomSource(np.random.default_rng(13))
        counts = np.zeros(6)
        for _ in range(12_000):
            counts[sampler.sample(graph, StepContext(vertex=0), source).index] += 1
        assert_chi_square_fit(counts, exact_distribution(graph, 0),
                              label=f"scalar hybrid {label}")

    def test_second_order_scan_arm_fits_exact_distribution(self):
        edges = [(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (1, 4), (2, 1),
                 (3, 1), (4, 1)]
        graph = from_edges(edges, num_vertices=5)
        forced = np.full(5, STRATEGY_ITS, dtype=np.int8)
        sampler = HybridSampler(RejectionSampler(p=0.5, q=2.0), selection=forced)
        sampler.prepare(graph)
        source = NumpyRandomSource(np.random.default_rng(23))
        context = StepContext(vertex=1, prev_vertex=0)
        counts = np.zeros(graph.degree(1))
        for _ in range(12_000):
            counts[sampler.sample(graph, context, source).index] += 1
        assert_chi_square_fit(
            counts, exact_step_distribution(graph, 1, 0, 0.5, 2.0),
            label="scalar hybrid second-order scan",
        )

    def test_reference_auto_matches_batch_auto_distribution(self):
        graph = weighted_graph()
        spec = Node2VecSpec(p=2.0, q=0.5, strategy="reservoir", max_length=10)
        queries = make_queries(graph, 300, seed=3)
        reference = run_walks(graph, spec, queries, seed=4, sampler="auto")
        batch = run_walks_batch(graph, spec, queries, seed=5, sampler="auto")
        p = chi_square_compare(
            reference.visit_counts(graph.num_vertices),
            batch.visit_counts(graph.num_vertices),
        )
        assert p > CHI_SQUARE_ALPHA, f"auto engines diverge (p={p:.5f})"

    def test_metapath_auto_runs_and_follows_pattern(self):
        graph = weighted_graph()
        graph = assign_metapath_schema(graph, num_types=3, seed=2)
        spec = MetaPathSpec(pattern=[0, 1, 2], max_length=9)
        kernel = make_walk_kernel(spec.make_sampler(), "auto")
        kernel.prepare(graph)
        # Edge types pin every row to the reservoir strategy.
        assert kernel.strategy_counts() == {"reservoir": graph.num_vertices}
        results = run_walks_batch(graph, spec, make_queries(graph, 40, seed=6),
                                  seed=7, kernel=kernel)
        for path in results.paths:
            for hop, dst in enumerate(path[1:]):
                assert int(graph.vertex_types[int(dst)]) == [0, 1, 2][hop % 3]
