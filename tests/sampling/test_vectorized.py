"""Unit tests for the vectorized sampling primitives."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import from_edges, rmat
from repro.sampling import (
    AliasSampler,
    QueryStreams,
    RejectionSampler,
    ReservoirSampler,
    UniformSampler,
    make_kernel,
)
from repro.sampling.its import InverseTransformSampler
from repro.sampling.vectorized import (
    AliasKernel,
    ITSKernel,
    RejectionKernel,
    ReservoirKernel,
    UniformKernel,
    build_edge_keys,
    edges_exist,
    seed_sequence_states,
)


class TestSeedSequenceStates:
    """The batched derivation must be bit-exact SeedSequence((seed, qid))."""

    def _oracle(self, seed, query_ids):
        return np.array(
            [np.random.SeedSequence((seed, int(q))).generate_state(1, dtype=np.uint64)[0]
             for q in query_ids],
            dtype=np.uint64,
        )

    @pytest.mark.parametrize("seed", [0, 1, 12345, 2**32 - 1, 2**32, 2**63 - 1, 2**64 - 1])
    def test_bit_exact_vs_seed_sequence(self, seed):
        ids = [0, 1, 2, 1000, 2**31, 2**32 - 1, 2**32, 2**32 + 7, 2**48, 2**63 - 1]
        assert np.array_equal(seed_sequence_states(seed, ids), self._oracle(seed, ids))

    def test_bit_exact_on_random_ids(self):
        rng = np.random.default_rng(9)
        ids = np.concatenate([
            rng.integers(0, 2**32, 200), rng.integers(2**32, 2**63, 50)
        ]).astype(np.uint64)
        assert np.array_equal(seed_sequence_states(7, ids), self._oracle(7, ids))

    def test_empty(self):
        assert seed_sequence_states(1, []).size == 0

    def test_negative_seed_normalized_not_hung(self):
        # Regression: a negative seed must be masked like normalize_seed
        # does (a raw negative int would loop forever in word coercion).
        masked = (-3) & (2**64 - 1)
        assert np.array_equal(
            seed_sequence_states(-3, [0, 5]), seed_sequence_states(masked, [0, 5])
        )

    def test_negative_ids_rejected(self):
        with pytest.raises(SamplingError, match="non-negative"):
            seed_sequence_states(1, [-1])


class TestQueryStreams:
    def test_deterministic(self):
        a = QueryStreams(1, [0, 1, 2])
        b = QueryStreams(1, [0, 1, 2])
        idx = np.arange(3)
        assert np.array_equal(a.uniforms(idx), b.uniforms(idx))

    def test_streams_keyed_by_query_id_not_position(self):
        a = QueryStreams(1, [0, 1, 2])
        b = QueryStreams(1, [2, 1, 0])
        ua = a.uniforms(np.arange(3))
        ub = b.uniforms(np.arange(3))
        assert np.array_equal(ua, ub[::-1])

    def test_uniforms_in_unit_interval_and_uniform(self):
        streams = QueryStreams(3, list(range(64)))
        draws = np.concatenate([streams.uniforms(np.arange(64)) for _ in range(400)])
        assert draws.min() >= 0.0 and draws.max() < 1.0
        assert abs(draws.mean() - 0.5) < 0.01
        assert abs(np.var(draws) - 1 / 12) < 0.005

    def test_randints_respect_bounds(self):
        streams = QueryStreams(0, list(range(16)))
        bounds = np.arange(1, 17)
        for _ in range(200):
            draw = streams.randints(bounds, np.arange(16))
            assert np.all(draw >= 0) and np.all(draw < bounds)

    def test_element_uniforms_shape_and_range(self):
        streams = QueryStreams(0, [0, 1, 2])
        counts = np.array([3, 1, 5])
        flat = streams.element_uniforms(np.arange(3), counts)
        assert flat.shape == (9,)
        assert flat.min() >= 0.0 and flat.max() < 1.0

    def test_from_states_resumes_bit_identically(self):
        # The forwarding contract: draws, a state hand-off, then more
        # draws must equal one uninterrupted stream.
        oracle = QueryStreams(5, [3, 7, 11])
        live = QueryStreams(5, [3, 7, 11])
        idx = np.arange(3)
        oracle.uniforms(idx)
        live.uniforms(idx)
        resumed = QueryStreams.from_states(live.states().copy())
        assert np.array_equal(oracle.uniforms(idx), resumed.uniforms(idx))

    def test_from_states_wraps_by_reference(self):
        # Zero-copy: draws through the wrapper advance the caller's
        # array in place, so a shard's walker table IS the RNG state.
        carried = QueryStreams(1, [0, 1]).states().copy()
        before = carried.copy()
        streams = QueryStreams.from_states(carried)
        assert streams.states() is carried
        streams.uniforms(np.arange(2))
        assert not np.array_equal(carried, before)

    def test_from_states_permutation_matches_reseeding(self):
        # Forwarding reorders walkers arbitrarily; a permuted slice of
        # the state array must behave as streams for the permuted ids.
        states = seed_sequence_states(9, [0, 1, 2, 3])
        perm = np.array([2, 0, 3, 1])
        shuffled = QueryStreams.from_states(states[perm].copy())
        direct = QueryStreams(9, [2, 0, 3, 1])
        idx = np.arange(4)
        assert np.array_equal(shuffled.uniforms(idx), direct.uniforms(idx))

    def test_from_states_validates_dtype_and_shape(self):
        with pytest.raises(SamplingError, match="1-D uint64"):
            QueryStreams.from_states(np.zeros(3, dtype=np.int64))
        with pytest.raises(SamplingError, match="1-D uint64"):
            QueryStreams.from_states(np.zeros((2, 2), dtype=np.uint64))


class TestEdgeKeys:
    def test_matches_has_edge_everywhere(self):
        g = rmat(6, edge_factor=3, seed=2)
        keys = build_edge_keys(g)
        n = g.num_vertices
        src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        exists = edges_exist(keys, n, src.ravel(), dst.ravel()).reshape(n, n)
        for v in range(n):
            for u in range(n):
                assert exists[v, u] == g.has_edge(v, u)

    def test_empty_graph(self):
        g = from_edges([], num_vertices=4)
        keys = build_edge_keys(g)
        assert not edges_exist(keys, 4, np.array([0]), np.array([1]))[0]


def empirical_kernel(kernel, graph, vertex, prev=None, admissible=None, rounds=20_000):
    """Empirical within-neighborhood choice distribution of one kernel."""
    streams = QueryStreams(0, list(range(rounds)))
    current = np.full(rounds, vertex, dtype=np.int64)
    previous = np.full(rounds, -1 if prev is None else prev, dtype=np.int64)
    batch = kernel.sample(graph, current, previous, admissible, streams, np.arange(rounds))
    degree = graph.degree(vertex)
    counts = np.bincount(batch.choice[batch.choice >= 0], minlength=degree)
    return counts / max(1, batch.choice.size)


def weighted_fan():
    return from_edges(
        [(0, 1), (0, 2), (0, 3), (0, 4)],
        weights=[1.0, 2.0, 3.0, 4.0],
        num_vertices=5,
    )


class TestKernelDistributions:
    def test_uniform_kernel(self):
        g = weighted_fan()
        dist = empirical_kernel(UniformKernel(), g, 0)
        assert np.allclose(dist, 0.25, atol=0.02)

    def test_alias_kernel_weighted(self):
        g = weighted_fan()
        kernel = AliasKernel()
        kernel.prepare(g)
        dist = empirical_kernel(kernel, g, 0)
        assert np.allclose(dist, np.array([1, 2, 3, 4]) / 10.0, atol=0.02)

    def test_rejection_kernel_second_order(self):
        from repro.walks.node2vec import exact_step_distribution

        g = from_edges(
            [(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (2, 0), (3, 1)],
            num_vertices=4,
        )
        kernel = RejectionKernel(p=2.0, q=0.5)
        kernel.prepare(g)
        dist = empirical_kernel(kernel, g, 1, prev=0)
        expected = exact_step_distribution(g, current=1, previous=0, p=2.0, q=0.5)
        assert np.allclose(dist, expected, atol=0.02)

    def test_reservoir_kernel_weighted(self):
        g = weighted_fan()
        kernel = ReservoirKernel()
        kernel.prepare(g)
        dist = empirical_kernel(kernel, g, 0)
        assert np.allclose(dist, np.array([1, 2, 3, 4]) / 10.0, atol=0.02)

    def test_reservoir_kernel_type_filter(self):
        g = from_edges(
            [(0, 1), (0, 2), (0, 3)],
            edge_types=[0, 1, 0],
            num_vertices=4,
        )
        kernel = ReservoirKernel()
        kernel.prepare(g)
        dist = empirical_kernel(kernel, g, 0, admissible=0, rounds=6000)
        assert dist[1] == 0.0
        assert np.allclose(dist[[0, 2]], 0.5, atol=0.03)

    def test_reservoir_kernel_no_admissible_terminates(self):
        g = from_edges([(0, 1)], edge_types=[0], num_vertices=2)
        kernel = ReservoirKernel()
        kernel.prepare(g)
        streams = QueryStreams(0, [0])
        batch = kernel.sample(
            g, np.array([0]), np.array([-1]), 5, streams, np.array([0])
        )
        assert batch.choice[0] == -1


class TestKernelFactory:
    def test_maps_all_table_one_samplers(self):
        assert isinstance(make_kernel(UniformSampler()), UniformKernel)
        assert isinstance(make_kernel(AliasSampler()), AliasKernel)
        assert isinstance(make_kernel(InverseTransformSampler()), ITSKernel)
        assert isinstance(make_kernel(RejectionSampler(p=2, q=0.5)), RejectionKernel)
        reservoir = make_kernel(ReservoirSampler(p=2.0, q=0.5))
        assert isinstance(reservoir, ReservoirKernel)
        assert reservoir.second_order

    def test_unknown_sampler_rejected(self):
        """An unmapped sampler must fail loudly *and* tell the user where
        to go: the reference engine runs any scalar sampler."""
        from repro.sampling.base import SampleOutcome, Sampler

        class NovelSampler(Sampler):
            name = "novel"
            rp_entry_bits = 64

            def sample(self, graph, context, random_source):
                return SampleOutcome(index=0, proposals=1, neighbor_reads=1)

        with pytest.raises(SamplingError, match="reference engine") as excinfo:
            make_kernel(NovelSampler())
        # The message names the offending sampler so the error is
        # actionable from a CLI stack trace.
        assert "novel" in str(excinfo.value)

    def test_unknown_sampler_subclass_rejected(self):
        """The factory keys on known types, not hasattr duck-typing: a
        novel Sampler subclass (no kernel written yet) is rejected with
        the same pointer at the reference engine."""
        from repro.sampling.base import SampleOutcome, Sampler

        class BespokeSampler(Sampler):
            name = "bespoke"
            rp_entry_bits = 64

            def sample(self, graph, context, random_source):
                return SampleOutcome(index=0, proposals=1, neighbor_reads=1)

        with pytest.raises(SamplingError, match="reference engine"):
            make_kernel(BespokeSampler())
