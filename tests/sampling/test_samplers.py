"""Unit tests for all Table I samplers.

Each sampler is checked against the exact neighbor distribution it must
realize, plus its cost-counter contract and error handling.
"""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import from_edges
from repro.sampling import (
    AliasSampler,
    InverseTransformSampler,
    NumpyRandomSource,
    RejectionSampler,
    ReservoirSampler,
    StepContext,
    UniformSampler,
    exact_distribution,
)
from repro.walks.node2vec import exact_step_distribution

SAMPLES = 30_000
TOLERANCE = 0.02


def rng_source(seed=0):
    return NumpyRandomSource(np.random.default_rng(seed))


def weighted_fan():
    """Vertex 0 with weighted out-edges to 1..4."""
    return from_edges(
        [(0, 1), (0, 2), (0, 3), (0, 4)],
        weights=[1.0, 2.0, 3.0, 4.0],
        num_vertices=5,
    )


def empirical(sampler, graph, context, seed=0, samples=SAMPLES):
    source = rng_source(seed)
    degree = graph.degree(context.vertex)
    counts = np.zeros(degree)
    for _ in range(samples):
        outcome = sampler.sample(graph, context, source)
        counts[outcome.index] += 1
    return counts / samples


class TestUniformSampler:
    def test_uniform_distribution(self):
        g = weighted_fan()
        dist = empirical(UniformSampler(), g, StepContext(vertex=0))
        assert np.allclose(dist, 0.25, atol=TOLERANCE)

    def test_cost_counters(self):
        g = weighted_fan()
        outcome = UniformSampler().sample(g, StepContext(vertex=0), rng_source())
        assert outcome.proposals == 1
        assert outcome.neighbor_reads == 1

    def test_dangling_vertex_rejected(self):
        g = from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(SamplingError, match="dangling"):
            UniformSampler().sample(g, StepContext(vertex=1), rng_source())

    def test_rp_entry_bits(self):
        assert UniformSampler().rp_entry_bits == 64


class TestAliasSampler:
    def test_requires_prepare(self):
        g = weighted_fan()
        with pytest.raises(SamplingError, match="prepare"):
            AliasSampler().sample(g, StepContext(vertex=0), rng_source())

    def test_weighted_distribution(self):
        g = weighted_fan()
        sampler = AliasSampler()
        sampler.prepare(g)
        dist = empirical(sampler, g, StepContext(vertex=0))
        assert np.allclose(dist, exact_distribution(g, 0), atol=TOLERANCE)

    def test_unweighted_degenerates_to_uniform(self):
        g = from_edges([(0, 1), (0, 2), (0, 3)], num_vertices=4)
        sampler = AliasSampler()
        sampler.prepare(g)
        dist = empirical(sampler, g, StepContext(vertex=0))
        assert np.allclose(dist, 1 / 3, atol=TOLERANCE)

    def test_constant_cost(self):
        g = weighted_fan()
        sampler = AliasSampler()
        sampler.prepare(g)
        outcome = sampler.sample(g, StepContext(vertex=0), rng_source())
        assert outcome.neighbor_reads == 2  # alias slot + chosen neighbor

    def test_rp_entry_bits_is_256(self):
        assert AliasSampler().rp_entry_bits == 256


class TestRejectionSampler:
    def diamond(self):
        # 0 <-> 1, 1 -> {0, 2, 3}, 2 adjacent to 0, 3 not.
        return from_edges(
            [(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (2, 0), (3, 1)],
            num_vertices=4,
        )

    def test_first_hop_is_uniform(self):
        g = self.diamond()
        dist = empirical(RejectionSampler(p=2, q=0.5), g, StepContext(vertex=1))
        assert np.allclose(dist, 1 / 3, atol=TOLERANCE)

    def test_second_order_matches_exact(self):
        g = self.diamond()
        p, q = 2.0, 0.5
        context = StepContext(vertex=1, prev_vertex=0)
        dist = empirical(RejectionSampler(p=p, q=q), g, context)
        expected = exact_step_distribution(g, current=1, previous=0, p=p, q=q)
        assert np.allclose(dist, expected, atol=TOLERANCE)

    def test_extreme_p_suppresses_return(self):
        g = self.diamond()
        context = StepContext(vertex=1, prev_vertex=0)
        dist = empirical(RejectionSampler(p=1000.0, q=1.0), g, context, samples=5000)
        # neighbor 0 (the return edge) should almost never be chosen
        return_index = list(g.neighbors(1)).index(0)
        assert dist[return_index] < 0.01

    def test_first_hop_accepts_immediately(self):
        # Regression: the degenerate-uniform first hop (bias 1.0 for every
        # candidate) used to accept with probability 1/max_bias, spinning
        # through rejected proposals and inflating the cost counters.
        g = self.diamond()
        sampler = RejectionSampler(p=100.0, q=0.001)  # max_bias = 1000
        source = rng_source(7)
        for _ in range(50):
            outcome = sampler.sample(g, StepContext(vertex=1), source)
            assert outcome.proposals == 1
            assert outcome.neighbor_reads == 1

    def test_proposals_counted(self):
        g = self.diamond()
        context = StepContext(vertex=1, prev_vertex=0)
        sampler = RejectionSampler(p=10.0, q=10.0)
        total = 0
        source = rng_source(3)
        for _ in range(200):
            total += sampler.sample(g, context, source).proposals
        assert total > 200  # some rejections must occur with strong bias

    def test_rejects_bad_parameters(self):
        with pytest.raises(SamplingError):
            RejectionSampler(p=0.0, q=1.0)
        with pytest.raises(SamplingError):
            RejectionSampler(p=1.0, q=-2.0)


class TestReservoirSampler:
    def test_weighted_distribution(self):
        g = weighted_fan()
        dist = empirical(ReservoirSampler(), g, StepContext(vertex=0))
        assert np.allclose(dist, exact_distribution(g, 0), atol=TOLERANCE)

    def test_unweighted_uniform(self):
        g = from_edges([(0, 1), (0, 2)], num_vertices=3)
        dist = empirical(ReservoirSampler(), g, StepContext(vertex=0))
        assert np.allclose(dist, 0.5, atol=TOLERANCE)

    def test_node2vec_bias_matches_exact(self):
        g = from_edges(
            [(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (2, 0), (3, 1)],
            num_vertices=4,
        )
        p, q = 2.0, 0.5
        context = StepContext(vertex=1, prev_vertex=0)
        dist = empirical(ReservoirSampler(p=p, q=q), g, context)
        expected = exact_step_distribution(g, current=1, previous=0, p=p, q=q)
        assert np.allclose(dist, expected, atol=TOLERANCE)

    def test_type_filter_restricts_choices(self):
        g = from_edges(
            [(0, 1), (0, 2), (0, 3)],
            edge_types=[0, 1, 0],
            num_vertices=4,
        )
        context = StepContext(vertex=0, admissible_type=0)
        dist = empirical(ReservoirSampler(), g, context, samples=4000)
        assert dist[1] == 0.0  # type-1 edge never taken
        assert np.allclose(dist[[0, 2]], 0.5, atol=0.03)

    def test_no_admissible_neighbor_terminates(self):
        g = from_edges([(0, 1)], edge_types=[0], num_vertices=2)
        outcome = ReservoirSampler().sample(
            g, StepContext(vertex=0, admissible_type=5), rng_source()
        )
        assert outcome.terminated

    def test_type_filter_without_types_rejected(self):
        g = from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(SamplingError, match="edge types"):
            ReservoirSampler().sample(
                g, StepContext(vertex=0, admissible_type=0), rng_source()
            )

    def test_reads_whole_list(self):
        g = weighted_fan()
        outcome = ReservoirSampler().sample(g, StepContext(vertex=0), rng_source())
        assert outcome.neighbor_reads == g.degree(0)

    def test_p_and_q_must_come_together(self):
        with pytest.raises(SamplingError, match="together"):
            ReservoirSampler(p=2.0)


class TestInverseTransformSampler:
    def test_matches_exact_distribution(self):
        g = weighted_fan()
        dist = empirical(InverseTransformSampler(), g, StepContext(vertex=0))
        assert np.allclose(dist, exact_distribution(g, 0), atol=TOLERANCE)

    def test_agrees_with_alias_sampler(self):
        g = weighted_fan()
        alias = AliasSampler()
        alias.prepare(g)
        d_alias = empirical(alias, g, StepContext(vertex=0), seed=1)
        d_its = empirical(InverseTransformSampler(), g, StepContext(vertex=0), seed=2)
        assert np.allclose(d_alias, d_its, atol=2 * TOLERANCE)

    def test_single_neighbor(self):
        g = from_edges([(0, 1)], num_vertices=2)
        outcome = InverseTransformSampler().sample(g, StepContext(vertex=0), rng_source())
        assert outcome.index == 0

    @pytest.mark.parametrize("degree", [4, 200])
    @pytest.mark.parametrize("weighted", [True, False],
                             ids=["weighted", "unweighted"])
    def test_prepared_path_bit_identical_to_unprepared(self, degree, weighted):
        """prepare() (flat CDF rows + pairwise row totals) must reproduce
        the per-draw cumsum path exactly: same index, same reads, for the
        same uniform stream.  Degree 200 exercises the last-ulp gap
        between pairwise and sequential totals."""
        weight_rng = np.random.default_rng(degree)
        g = from_edges(
            [(0, 1 + i) for i in range(degree)] + [(1, 0)],
            weights=(np.concatenate([
                weight_rng.uniform(0.1, 3.0, size=degree), [1.0]])
                if weighted else None),
            num_vertices=degree + 1,
        )
        plain = InverseTransformSampler()
        prepared = InverseTransformSampler()
        prepared.prepare(g)
        source_a, source_b = rng_source(3), rng_source(3)
        for _ in range(2_000):
            a = plain.sample(g, StepContext(vertex=0), source_a)
            b = prepared.sample(g, StepContext(vertex=0), source_b)
            assert a.index == b.index
            assert a.neighbor_reads == b.neighbor_reads

    def test_prepared_state_ignored_on_other_graph(self):
        """State prepared for one graph must not leak onto another."""
        g1, g2 = weighted_fan(), weighted_fan().reverse().reverse()
        sampler = InverseTransformSampler()
        sampler.prepare(g1)
        # Sampling on a different graph object falls back cleanly.
        dist = empirical(sampler, g2, StepContext(vertex=0), samples=2_000)
        assert np.isclose(dist.sum(), 1.0)

    @pytest.mark.parametrize("degree", [4, 200])
    def test_matches_scalar_scan_bit_for_bit(self, degree):
        """The cumsum+searchsorted fast path must reproduce the original
        sequential CDF scan exactly — same index, same reads — for the
        same uniform draw, including the round-off fallback.  The
        degree-200 case matters: there NumPy's pairwise ``weights.sum()``
        differs from the sequential running total in the last ulp, and
        the target must keep using the former (as the scalar loop did)
        or boundary draws flip."""

        def scalar_scan(weights, target):
            cumulative = 0.0
            for i, w in enumerate(weights):
                cumulative += float(w)
                if target < cumulative:
                    return i, i + 1
            return len(weights) - 1, len(weights)

        weight_rng = np.random.default_rng(degree)
        g = from_edges(
            [(0, 1 + i) for i in range(degree)],
            weights=weight_rng.uniform(0.1, 3.0, size=degree),
            num_vertices=degree + 1,
        )
        weights = g.neighbor_weights(0)
        sampler = InverseTransformSampler()
        rng = np.random.default_rng(11)
        for _ in range(2_000):
            u = float(rng.random())

            class FixedSource:
                def uniform(self_inner):
                    return u

            outcome = sampler.sample(g, StepContext(vertex=0), FixedSource())
            index, reads = scalar_scan(weights, u * float(weights.sum()))
            assert outcome.index == index
            assert outcome.neighbor_reads == reads

    def test_neighbor_reads_follow_chosen_index(self):
        """Accounting semantics: a scan that stops at index i has read
        i + 1 weights — the O(d) cost the baseline models charge."""
        g = weighted_fan()
        sampler = InverseTransformSampler()
        source = rng_source(3)
        for _ in range(500):
            outcome = sampler.sample(g, StepContext(vertex=0), source)
            assert outcome.neighbor_reads == outcome.index + 1
            assert outcome.proposals == 1

    def test_roundoff_target_takes_last_neighbor(self):
        """A uniform draw of exactly 1.0-epsilon scaled to the total can
        land past the final prefix sum; the sampler must clamp to the
        last neighbor after a full-degree read, like the scalar scan."""

        class TopSource:
            # Out-of-contract 1.0 forces target == total exactly, the
            # worst case round-off can produce.
            def uniform(self):
                return 1.0

        g = from_edges([(0, 1), (0, 2), (0, 3)],
                       weights=[0.1, 0.1, 0.1], num_vertices=4)
        outcome = InverseTransformSampler().sample(g, StepContext(vertex=0), TopSource())
        assert outcome.index == g.degree(0) - 1
        assert outcome.neighbor_reads == g.degree(0)
