"""Statistical-coverage fills: rejection under skewed p/q, ITS flat-CDF.

Two gaps this suite closes with the shared chi-square goodness-of-fit
helper (``stat_helpers.assert_chi_square_fit`` — one critical-value
floor for the whole statistical tier, no per-file thresholds):

* the **rejection sampler** was only ever exercised at the paper's
  ``p=2, q=0.5``; acceptance-probability skew is worst at extreme p/q,
  where a biased retry loop would hide.  Both the scalar sampler and the
  vectorized kernel are held to Node2Vec's exact one-hop distribution
  across skewed parameter corners.
* the **ITS flat-CDF fast path** (prepared rows) vs the per-draw
  ``cumsum`` path: bit-identical draws on a shared stream, and both —
  plus the vectorized :class:`ITSKernel` — fitting the exact weighted
  distribution on skewed rows.

All seeds are pinned; the sample-heavy scalar loops carry the ``slow``
marker and run only in the full CI lane.
"""

import numpy as np
import pytest
from stat_helpers import assert_chi_square_fit

from repro.graph import from_edges
from repro.sampling import (
    InverseTransformSampler,
    NumpyRandomSource,
    QueryStreams,
    RejectionSampler,
    StepContext,
    exact_distribution,
)
from repro.sampling.vectorized import ITSKernel, RejectionKernel
from repro.walks.node2vec import exact_step_distribution

#: Skewed Node2Vec corners: return-averse, return-seeking, explore-averse.
PQ_CORNERS = ((0.25, 4.0), (4.0, 0.25), (2.0, 0.5), (10.0, 10.0))

SCALAR_SAMPLES = 20_000
KERNEL_SAMPLES = 40_000


def node2vec_graph():
    """Previous vertex 0, current vertex 1, and a neighbor mix covering
    all three bias classes: return (0), adjacent (2, 3), explore (4, 5)."""
    edges = [
        (0, 1), (0, 2), (0, 3),
        (1, 0), (1, 2), (1, 3), (1, 4), (1, 5),
        (2, 1), (3, 1), (4, 1), (5, 1),
    ]
    return from_edges(edges, num_vertices=6)


def skewed_weighted_row():
    """One row with a dominant edge and a long light tail."""
    degree = 8
    weights = [50.0, 0.5, 4.0, 0.25, 1.0, 8.0, 0.125, 2.0]
    edges = [(0, dst) for dst in range(1, degree + 1)]
    return from_edges(edges, num_vertices=degree + 1, weights=weights)


@pytest.mark.slow
@pytest.mark.parametrize("p,q", PQ_CORNERS)
def test_scalar_rejection_fits_exact_distribution_under_skew(p, q):
    graph = node2vec_graph()
    sampler = RejectionSampler(p=p, q=q)
    source = NumpyRandomSource(np.random.default_rng((hash((p, q)) & 0xFFFF, 71)))
    context = StepContext(vertex=1, prev_vertex=0)
    counts = np.zeros(graph.degree(1))
    for _ in range(SCALAR_SAMPLES):
        counts[sampler.sample(graph, context, source).index] += 1
    assert_chi_square_fit(
        counts,
        exact_step_distribution(graph, 1, 0, p, q),
        label=f"scalar rejection p={p} q={q}",
    )


@pytest.mark.parametrize("p,q", PQ_CORNERS)
def test_rejection_kernel_fits_exact_distribution_under_skew(p, q):
    graph = node2vec_graph()
    kernel = RejectionKernel(p=p, q=q)
    kernel.prepare(graph)
    streams = QueryStreams(int(p * 100 + q), np.arange(KERNEL_SAMPLES))
    batch = kernel.sample(
        graph,
        np.full(KERNEL_SAMPLES, 1, dtype=np.int64),
        np.zeros(KERNEL_SAMPLES, dtype=np.int64),
        None,
        streams,
        np.arange(KERNEL_SAMPLES),
    )
    counts = np.bincount(batch.choice, minlength=graph.degree(1))
    assert_chi_square_fit(
        counts,
        exact_step_distribution(graph, 1, 0, p, q),
        label=f"rejection kernel p={p} q={q}",
    )


class TestITSFlatCDF:
    def test_prepared_and_unprepared_draws_bit_identical(self):
        """Same stream, same graph: the flat-CDF fast path must pick the
        same index with the same read accounting as the per-draw cumsum."""
        graph = skewed_weighted_row()
        prepared = InverseTransformSampler()
        prepared.prepare(graph)
        unprepared = InverseTransformSampler()
        src_a = NumpyRandomSource(np.random.default_rng(5))
        src_b = NumpyRandomSource(np.random.default_rng(5))
        context = StepContext(vertex=0)
        for _ in range(2_000):
            a = prepared.sample(graph, context, src_a)
            b = unprepared.sample(graph, context, src_b)
            assert (a.index, a.proposals, a.neighbor_reads) == (
                b.index, b.proposals, b.neighbor_reads,
            )

    @pytest.mark.slow
    @pytest.mark.parametrize("path", ("flat-cdf", "per-draw-cumsum"))
    def test_scalar_paths_fit_exact_distribution(self, path):
        graph = skewed_weighted_row()
        sampler = InverseTransformSampler()
        if path == "flat-cdf":
            sampler.prepare(graph)
        source = NumpyRandomSource(np.random.default_rng(31))
        context = StepContext(vertex=0)
        counts = np.zeros(graph.degree(0))
        for _ in range(SCALAR_SAMPLES):
            counts[sampler.sample(graph, context, source).index] += 1
        assert_chi_square_fit(
            counts, exact_distribution(graph, 0), label=f"ITS {path}",
        )

    def test_its_kernel_fits_exact_distribution(self):
        graph = skewed_weighted_row()
        kernel = ITSKernel()
        kernel.prepare(graph)
        streams = QueryStreams(17, np.arange(KERNEL_SAMPLES))
        batch = kernel.sample(
            graph,
            np.zeros(KERNEL_SAMPLES, dtype=np.int64),
            np.full(KERNEL_SAMPLES, -1, dtype=np.int64),
            None,
            streams,
            np.arange(KERNEL_SAMPLES),
        )
        counts = np.bincount(batch.choice, minlength=graph.degree(0))
        assert_chi_square_fit(
            counts, exact_distribution(graph, 0), label="ITS kernel",
        )

    def test_its_kernel_read_accounting_matches_scalar(self):
        """The vectorized kernel must charge the sequential-scan cost
        (``index + 1`` reads per draw), like the scalar sampler."""
        graph = skewed_weighted_row()
        kernel = ITSKernel()
        kernel.prepare(graph)
        n = 512
        streams = QueryStreams(3, np.arange(n))
        batch = kernel.sample(
            graph,
            np.zeros(n, dtype=np.int64),
            np.full(n, -1, dtype=np.int64),
            None,
            streams,
            np.arange(n),
        )
        assert batch.proposals == n
        assert batch.neighbor_reads == int(batch.choice.sum()) + n
