"""Property-based conformance sweep for the hybrid sampling backend.

The hybrid contract under test, per the determinism guarantees in
:mod:`repro.sampling.hybrid`:

1. **Fixed selection maps are bit-identical to the single-strategy
   kernel.**  Forcing every row onto one strategy must reproduce that
   strategy's standalone kernel exactly — paths *and* ``EngineStats``.
2. **Grouped dispatch equals per-row dispatch.**  A mixed-strategy
   frontier grouped per strategy must match running every query alone
   (each walker's draws depend only on its own substream).
3. **Selection maps are stable under snapshot round-trips.**  A dynamic
   graph's incrementally maintained strategy map must equal from-scratch
   selection on the same logical graph, through dirty rows, degree
   collapses, re-adds and forced compactions.
4. **Auto mode is bit-identical across batch / parallel / serve-replay**
   and survives a dynamic sliding-window run.

Each seed builds an *adversarial* weighted graph stacking the rows the
cost model branches on: a skewed hub (alias), dominant-first-edge rows
(ITS at high degree), dominant-last-edge rows (alias), all-equal-weight
rows (uniform), degree-1 rows, a dangling vertex, and a spray of small
weighted rows (ITS).
"""

import asyncio

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, SamplerState
from repro.engines import prepare_engine
from repro.graph import from_edges
from repro.sampling import (
    AliasSampler,
    BiasedScanKernel,
    HybridKernel,
    RejectionSampler,
    select_strategies,
)
from repro.sampling.hybrid import (
    STRATEGY_ALIAS,
    STRATEGY_ITS,
    STRATEGY_ONE,
    STRATEGY_REJECTION,
    STRATEGY_UNIFORM,
)
from repro.sampling.vectorized import AliasKernel, ITSKernel, RejectionKernel, UniformKernel
from repro.walks import DeepWalkSpec, EngineStats, Node2VecSpec, make_queries, run_walks_batch

#: The sweep's seed universe (satellite requirement: >= 24).
SEEDS = tuple(range(24))

NUM_QUERIES = 30
WALK_LENGTH = 8


def adversarial_graph(seed, weighted=True):
    """A graph stacking every row archetype the cost model branches on."""
    rng = np.random.default_rng((seed, 0xAD))
    n = 24
    edges, weights = [], []

    def add_row(src, dsts, row_weights):
        for dst, w in zip(dsts, row_weights):
            edges.append((src, int(dst)))
            weights.append(float(w))

    others = np.arange(1, n)
    # Vertex 0: skewed hub — tail-heavy weights force the alias strategy.
    dsts = rng.choice(others, size=20, replace=False)
    add_row(0, dsts, np.arange(1, 21, dtype=float))
    # Vertex 1: one dominant *first* edge — expected scan depth ~1 => ITS
    # even at a degree the small-row rule would not cover.
    dsts = rng.choice(others[others != 1], size=12, replace=False)
    add_row(1, dsts, [1000.0] + [0.01] * 11)
    # Vertex 2: one dominant *last* edge — expected scan depth ~degree => alias.
    dsts = rng.choice(others[others != 2], size=12, replace=False)
    add_row(2, dsts, [0.01] * 11 + [1000.0])
    # Vertex 3: all-equal weights — the weighted draw degenerates to uniform.
    dsts = rng.choice(others[others != 3], size=6, replace=False)
    add_row(3, dsts, [2.5] * 6)
    # Vertex 4: degree 1.
    add_row(4, [int(rng.integers(5, n))], [3.0])
    # Vertex 5: dangling (degree 0) — walks terminate, sampler never called.
    # Vertices 6..: small weighted rows (ITS) pointing anywhere.
    for v in range(6, n):
        degree = int(rng.integers(2, 7))
        candidates = others[others != v]
        dsts = rng.choice(candidates, size=degree, replace=False)
        add_row(v, dsts, rng.uniform(0.5, 4.0, size=degree))

    return from_edges(edges, num_vertices=n,
                      weights=weights if weighted else None,
                      name=f"adversarial-{seed}")


def run_pair(graph, spec, queries, seed, kernel_a, kernel_b):
    """Run both kernels and assert bit-identical paths and EngineStats."""
    stats_a, stats_b = EngineStats(), EngineStats()
    a = run_walks_batch(graph, spec, queries, seed=seed, stats=stats_a, kernel=kernel_a)
    b = run_walks_batch(graph, spec, queries, seed=seed, stats=stats_b, kernel=kernel_b)
    assert a.num_queries == b.num_queries
    for pa, pb in zip(a.paths, b.paths):
        assert np.array_equal(pa, pb)
    assert stats_a.__dict__ == stats_b.__dict__


@pytest.mark.parametrize("seed", SEEDS)
class TestFixedMapConformance:
    """Forced single-strategy maps vs the standalone kernels (contract 1)."""

    def _queries(self, graph, seed):
        return make_queries(graph, NUM_QUERIES, seed=seed + 1,
                            require_outgoing=False)

    def test_first_order_fixed_maps(self, seed):
        graph = adversarial_graph(seed)
        spec = DeepWalkSpec(max_length=WALK_LENGTH)
        queries = self._queries(graph, seed)
        singles = {
            STRATEGY_UNIFORM: UniformKernel(),
            STRATEGY_ALIAS: AliasKernel(),
            STRATEGY_ITS: ITSKernel(),
        }
        for code, single in singles.items():
            forced = np.full(graph.num_vertices, code, dtype=np.int8)
            hybrid = HybridKernel(AliasSampler(), selection=forced)
            hybrid.prepare(graph)
            single.prepare(graph)
            run_pair(graph, spec, queries, seed + 2, hybrid, single)

    def test_second_order_fixed_maps(self, seed):
        graph = adversarial_graph(seed, weighted=False)
        spec = Node2VecSpec(p=2.0, q=0.5, max_length=WALK_LENGTH)
        queries = self._queries(graph, seed)
        singles = {
            STRATEGY_REJECTION: RejectionKernel(p=2.0, q=0.5),
            STRATEGY_ITS: BiasedScanKernel(p=2.0, q=0.5),
        }
        for code, single in singles.items():
            forced = np.full(graph.num_vertices, code, dtype=np.int8)
            hybrid = HybridKernel(RejectionSampler(p=2.0, q=0.5), selection=forced)
            hybrid.prepare(graph)
            single.prepare(graph)
            run_pair(graph, spec, queries, seed + 2, hybrid, single)


@pytest.mark.parametrize("seed", SEEDS)
class TestGroupedDispatchEqualsPerRow:
    """Mixed maps: batch grouping vs one-query-at-a-time (contract 2)."""

    def _check(self, graph, spec, seed):
        kernel = HybridKernel(spec.make_sampler())
        kernel.prepare(graph)
        queries = make_queries(graph, NUM_QUERIES, seed=seed + 1,
                               require_outgoing=False)
        batch = run_walks_batch(graph, spec, queries, seed=seed + 2, kernel=kernel)
        # The auto map on an adversarial graph is genuinely mixed —
        # otherwise this test collapses into the fixed-map one.
        assert len(kernel.strategy_counts()) >= 3
        for position, query in enumerate(queries):
            alone = run_walks_batch(graph, spec, [query], seed=seed + 2,
                                    kernel=kernel)
            assert np.array_equal(alone.path_of(0), batch.paths[position])

    def test_first_order_auto(self, seed):
        self._check(adversarial_graph(seed), DeepWalkSpec(max_length=WALK_LENGTH), seed)

    def test_second_order_auto(self, seed):
        # Retry-hostile p/q: rejection expects ~q rounds per hop on a
        # sparse graph, so the cost model routes small rows to the exact
        # scan and the selection map is genuinely three-way.
        self._check(adversarial_graph(seed, weighted=False),
                    Node2VecSpec(p=8.0, q=8.0, max_length=WALK_LENGTH), seed)

    def test_second_order_auto_collapses_at_accepting_pq(self, seed):
        """At the paper's p=2, q=0.5 rejection accepts almost every
        proposal; the cost model must *not* pay the scan there."""
        graph = adversarial_graph(seed, weighted=False)
        spec = Node2VecSpec(p=2.0, q=0.5, max_length=WALK_LENGTH)
        kernel = HybridKernel(spec.make_sampler())
        kernel.prepare(graph)
        assert "its" not in kernel.strategy_counts()


@pytest.mark.parametrize("seed", SEEDS)
def test_selection_map_stable_under_snapshot_round_trip(seed):
    """Contract 3: incremental strategy maintenance == from-scratch
    selection through adversarial updates and a forced compaction."""
    rng = np.random.default_rng((seed, 0x5E))
    base = adversarial_graph(seed)
    dynamic = DynamicGraph(base, min_compaction_edges=1 << 30)
    snapshot = dynamic.snapshot()
    assert np.array_equal(snapshot.sampler_state.strategy, select_strategies(base))

    # Dirty the archetypes: collapse the dominant-first row to uniform
    # weights, strip a small row to degree 0, re-add one edge, give the
    # dangling vertex a row, and churn a random row's weights.
    dominant = dynamic.neighbors(1)
    dynamic.update_weights([(1, int(d)) for d in dominant],
                           [1.0] * dominant.size)
    victim = 6
    dynamic.remove_edges([(victim, int(d)) for d in dynamic.neighbors(victim)])
    dynamic.add_edges([(victim, 0)], [2.0])
    dynamic.add_edges([(5, 1), (5, 2), (5, 3)], [9.0, 0.01, 0.01])
    churn = int(rng.integers(7, base.num_vertices))
    for dst in dynamic.neighbors(churn):
        dynamic.update_weights([(churn, int(dst))],
                               [float(rng.uniform(0.1, 10.0))])

    snapshot = dynamic.snapshot()
    edges, weights = dynamic.logical_edges()
    rebuilt = from_edges(edges, num_vertices=base.num_vertices, weights=weights)
    assert np.array_equal(snapshot.sampler_state.strategy,
                          select_strategies(rebuilt))
    assert np.array_equal(snapshot.sampler_state.strategy,
                          SamplerState.full_build(rebuilt).strategy)

    # A compaction is representational only: same epoch, same strategy map.
    dynamic.compact()
    recompacted = dynamic.snapshot()
    assert recompacted.epoch == snapshot.epoch
    assert np.array_equal(recompacted.sampler_state.strategy,
                          snapshot.sampler_state.strategy)

    # And the row archetypes actually moved where the cost model says:
    strategy = np.asarray(snapshot.sampler_state.strategy)
    assert strategy[1, 0] == STRATEGY_UNIFORM     # equalized weights
    assert strategy[victim, 0] == STRATEGY_ONE    # degree 1 now
    assert strategy[5, 0] == STRATEGY_ITS          # dominant-first row


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS[:4])
def test_auto_bit_identical_across_batch_parallel_serve_replay(seed):
    """Contract 4: the acceptance criterion's engine triangle."""
    from repro.serve import ServeConfig, WalkService, replay_paths

    graph = adversarial_graph(seed)
    spec = DeepWalkSpec(max_length=WALK_LENGTH)
    queries = make_queries(graph, NUM_QUERIES, seed=seed + 1)
    run_seed = seed + 2

    batch = run_walks_batch(graph, spec, queries, seed=run_seed, sampler="auto")
    with prepare_engine("parallel", graph, spec, workers=2,
                        sampler="auto") as parallel:
        par = parallel.run(queries, seed=run_seed)
    for a, b in zip(batch.paths, par.paths):
        assert np.array_equal(a, b)

    requests = {q.query_id: q.start_vertex for q in queries}
    oracle = replay_paths(graph, spec, requests, seed=run_seed)
    for position, query in enumerate(queries):
        assert np.array_equal(oracle[query.query_id], batch.paths[position])

    async def _serve():
        config = ServeConfig(max_batch=7, max_wait_ms=20.0,
                             queue_depth=4 * NUM_QUERIES)
        served = {}
        async with WalkService(graph, spec, engine="batch", seed=run_seed,
                               config=config) as service:
            futures = {
                q.query_id: service.try_submit(q.start_vertex, query_id=q.query_id)
                for q in queries
            }
            for query_id, future in futures.items():
                served[query_id] = (await future).path_of(0)
        return served

    served = asyncio.run(_serve())
    for query_id, path in served.items():
        assert np.array_equal(path, oracle[query_id])


@pytest.mark.slow
def test_auto_survives_dynamic_sliding_window():
    """Contract 4, dynamic half: an auto-prepared engine swapped across a
    sliding-window trace stays bit-identical to a fresh auto engine on a
    from-scratch build of every epoch's logical graph."""
    from repro.dynamic import make_trace, apply_batch
    from repro.dynamic.bench import fresh_static_build

    trace = make_trace("window", 8, edge_factor=6, batch_size=150,
                      num_batches=5, seed=3, weighted=True)
    dynamic = trace.build_dynamic(compaction_threshold=0.25)
    spec = DeepWalkSpec(max_length=10)
    snapshot = dynamic.snapshot()
    engine = prepare_engine("batch", snapshot.graph, spec, sampler="auto")
    queries = make_queries(snapshot.graph, 64, seed=11)
    for batch in trace.batches:
        apply_batch(dynamic, batch)
        snapshot = dynamic.snapshot()
        engine.swap_snapshot(snapshot)
        swapped = engine.run(queries, seed=17)
        static_graph, _ = fresh_static_build(dynamic)
        fresh = run_walks_batch(static_graph, spec, queries, seed=17,
                                sampler="auto")
        for a, b in zip(swapped.paths, fresh.paths):
            assert np.array_equal(a, b)
