"""Acceptance: walks on a snapshot == walks on a fresh static build.

After an arbitrary update trace, ``DynamicGraph.snapshot()`` must be
indistinguishable from a ``CSRGraph`` freshly built from the same
logical edge set — not statistically, but bit-for-bit: identical paths
and identical ``EngineStats``, for both the batch and parallel engines,
whether the engine is built on the snapshot or *swapped* onto it
mid-life (``PreparedEngine.swap_snapshot``).  The parallel engine must
survive the swap without respawning its worker pool.
"""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    apply_batch,
    fresh_static_build,
    sliding_window_trace,
)
from repro.engines import prepare_engine, run_software_walks
from repro.errors import WalkConfigError
from repro.walks import DeepWalkSpec, EngineStats, URWSpec, make_queries


def mutated_dynamic_graph():
    """A dynamic graph driven through a real insert+delete trace."""
    trace = sliding_window_trace(7, edge_factor=4, batch_size=120,
                                 num_batches=3, weighted=True, seed=11)
    graph = trace.build_dynamic()
    graph.snapshot()
    for batch in trace.batches:
        apply_batch(graph, batch)
        graph.snapshot()
    return graph


def assert_stats_equal(a: EngineStats, b: EngineStats):
    assert a.total_hops == b.total_hops
    assert a.sampling_proposals == b.sampling_proposals
    assert a.neighbor_reads == b.neighbor_reads
    assert a.early_terminations == b.early_terminations
    assert a.dangling_terminations == b.dangling_terminations
    assert a.probabilistic_terminations == b.probabilistic_terminations
    assert a.length_terminations == b.length_terminations
    assert a.per_query_hops == b.per_query_hops


@pytest.fixture(scope="module")
def state():
    graph = mutated_dynamic_graph()
    snapshot = graph.snapshot()
    static_graph, _ = fresh_static_build(graph)
    spec = DeepWalkSpec(max_length=12)
    queries = make_queries(static_graph, 48, seed=5)
    return snapshot, static_graph, spec, queries


@pytest.mark.parametrize("engine,options", [("batch", {}),
                                            ("parallel", {"workers": 2})])
def test_walks_bit_identical_on_snapshot(state, engine, options):
    snapshot, static_graph, spec, queries = state
    dyn_stats, static_stats = EngineStats(), EngineStats()
    dyn_results, _ = run_software_walks(
        engine, snapshot.graph, spec, queries, seed=3, stats=dyn_stats, **options
    )
    static_results, _ = run_software_walks(
        engine, static_graph, spec, queries, seed=3, stats=static_stats, **options
    )
    assert len(dyn_results.paths) == len(queries)
    for a, b in zip(dyn_results.paths, static_results.paths):
        assert np.array_equal(a, b)
    assert_stats_equal(dyn_stats, static_stats)


@pytest.mark.parametrize("engine,options", [("batch", {}),
                                            ("reference", {}),
                                            ("parallel", {"workers": 2})])
def test_swapped_engine_matches_fresh_engine(state, engine, options):
    snapshot, static_graph, spec, queries = state
    trace_base = sliding_window_trace(7, edge_factor=4, batch_size=120,
                                      num_batches=3, weighted=True,
                                      seed=11).build_dynamic()
    with prepare_engine(engine, trace_base.snapshot().graph, spec,
                        **options) as swapped:
        if engine == "parallel":
            pids_before = sorted(p.pid for p in swapped._engine._pool._pool)
        swapped.swap_snapshot(snapshot)
        if engine == "parallel":
            # The worker pool must survive the swap: same processes.
            assert sorted(p.pid for p in swapped._engine._pool._pool) == pids_before
        swap_stats = EngineStats()
        swap_results = swapped.run(queries, seed=3, stats=swap_stats)
    with prepare_engine(engine, static_graph, spec, **options) as fresh:
        fresh_stats = EngineStats()
        fresh_results = fresh.run(queries, seed=3, stats=fresh_stats)
    for a, b in zip(swap_results.paths, fresh_results.paths):
        assert np.array_equal(a, b)
    assert_stats_equal(swap_stats, fresh_stats)


def test_swap_accepts_bare_csr_graph(state):
    snapshot, static_graph, spec, queries = state
    with prepare_engine("batch", snapshot.graph, spec) as engine:
        engine.swap_snapshot(static_graph)  # plain CSRGraph, no state
        results = engine.run(queries, seed=3)
    baseline, _ = run_software_walks("batch", static_graph, spec, queries, seed=3)
    for a, b in zip(results.paths, baseline.paths):
        assert np.array_equal(a, b)


def test_swap_rejects_non_graphs(state):
    snapshot, _, spec, _ = state
    with prepare_engine("batch", snapshot.graph, spec) as engine:
        with pytest.raises(WalkConfigError, match="expected a CSRGraph"):
            engine.swap_snapshot(object())


def test_parallel_swap_rejects_changed_vertex_count(state):
    snapshot, _, _, _ = state
    spec = URWSpec(max_length=5)
    from repro.graph import cycle_graph

    with prepare_engine("parallel", snapshot.graph, spec, workers=2) as engine:
        with pytest.raises(WalkConfigError, match="vertices"):
            engine.swap_snapshot(cycle_graph(3))


def test_its_sampler_loaded_from_snapshot_state(state):
    """The incrementally maintained ITS CDF rows must drive the actual
    scalar sampler bit-identically to a sampler freshly prepared on a
    from-scratch static build."""
    from repro.sampling import InverseTransformSampler, NumpyRandomSource

    snapshot, static_graph, _, _ = state
    handed_over = InverseTransformSampler()
    snapshot.sampler_state.load_its_sampler(handed_over, snapshot.graph)
    fresh = InverseTransformSampler()
    fresh.prepare(static_graph)

    from repro.sampling import StepContext

    source_a = NumpyRandomSource(np.random.default_rng(21))
    source_b = NumpyRandomSource(np.random.default_rng(21))
    starts = [int(v) for v in np.nonzero(static_graph.degrees() > 0)[0][:16]]
    for vertex in starts:
        for _ in range(50):
            a = handed_over.sample(snapshot.graph, StepContext(vertex=vertex),
                                   source_a)
            b = fresh.sample(static_graph, StepContext(vertex=vertex), source_b)
            assert a.index == b.index
            assert a.neighbor_reads == b.neighbor_reads


def test_uniform_kernel_swap_needs_no_state(state):
    """URW's kernel has no prepared state; swapping stays bit-identical."""
    snapshot, static_graph, _, queries = state
    spec = URWSpec(max_length=8)
    with prepare_engine("batch", static_graph, spec) as engine:
        engine.swap_snapshot(snapshot)
        results = engine.run(queries, seed=9)
    baseline, _ = run_software_walks("batch", snapshot.graph, spec, queries,
                                     seed=9)
    for a, b in zip(results.paths, baseline.paths):
        assert np.array_equal(a, b)
