"""Property sweep: incremental maintenance == from-scratch build, bit for bit.

For >= 20 seeds, a random insert/delete/reweight sequence (with forced
degenerate cases: vertices dropping to degree 0, duplicate inserts,
remove-then-readd) is streamed into a ``DynamicGraph``; after every
batch the published snapshot — CSR arrays *and* every prepared sampler
structure (alias tables, ITS CDF rows, edge keys) — must equal a
from-scratch build of the same logical edge set computed with the
repo's own builders (``from_edges``, ``build_alias_table``,
``build_edge_keys``), bit-identically.  This is the invariant the
engine-swap and serving layers rely on.
"""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, SamplerState
from repro.graph import from_edges

NUM_SEEDS = 24
NUM_VERTICES = 24
BATCHES_PER_SEED = 5


def random_base(rng, weighted):
    edges = [
        (s, d)
        for s in range(NUM_VERTICES)
        for d in range(NUM_VERTICES)
        if s != d and rng.random() < 0.18
    ]
    weights = rng.uniform(0.5, 2.0, size=len(edges)) if weighted else None
    return from_edges(edges, num_vertices=NUM_VERTICES, weights=weights,
                      name="prop")


def fresh_build(graph: DynamicGraph):
    edges, weights = graph.logical_edges()
    rebuilt = from_edges(edges, num_vertices=graph.num_vertices,
                         weights=weights, name="prop")
    return rebuilt, SamplerState.full_build(rebuilt)


def assert_snapshot_matches(snapshot, graph: DynamicGraph, context: str):
    rebuilt, state = fresh_build(graph)
    assert np.array_equal(snapshot.graph.row_ptr, rebuilt.row_ptr), context
    assert np.array_equal(snapshot.graph.col, rebuilt.col), context
    if rebuilt.is_weighted:
        assert np.array_equal(snapshot.graph.weights, rebuilt.weights), context
    else:
        assert snapshot.graph.weights is None, context
    for name, expected in state.arrays().items():
        actual = snapshot.sampler_state.arrays()[name]
        assert np.array_equal(actual, expected), f"{context}: {name}"


def random_mutation(rng, graph: DynamicGraph, weighted):
    """One random batch of ops, biased to hit degenerate paths."""
    present = {tuple(int(x) for x in e) for e in graph.logical_edges()[0]}
    absent = [
        (s, d)
        for s in range(NUM_VERTICES)
        for d in range(NUM_VERTICES)
        if s != d and (s, d) not in present
    ]
    kind = rng.integers(0, 5)
    if kind == 0 and absent:  # plain inserts
        picks = [absent[i] for i in rng.choice(len(absent),
                                               size=min(6, len(absent)),
                                               replace=False)]
        graph.add_edges(picks, weights=(
            rng.uniform(0.5, 2.0, size=len(picks)) if weighted else None))
    elif kind == 1 and present:  # plain deletes
        pool = sorted(present)
        picks = [pool[i] for i in rng.choice(len(pool),
                                             size=min(6, len(pool)),
                                             replace=False)]
        graph.remove_edges(picks)
    elif kind == 2 and present and weighted:  # reweights
        pool = sorted(present)
        picks = [pool[i] for i in rng.choice(len(pool),
                                             size=min(6, len(pool)),
                                             replace=False)]
        graph.update_weights(picks, rng.uniform(0.5, 2.0, size=len(picks)))
    elif kind == 3 and present:  # drop one vertex to degree 0, then readd
        vertex = int(sorted({s for s, _ in present})[
            rng.integers(0, len({s for s, _ in present}))])
        row = [(vertex, int(d)) for d in graph.neighbors(vertex)]
        graph.remove_edges(row)
        assert graph.degree(vertex) == 0
        readd = row[: max(1, len(row) // 2)]
        graph.add_edges(readd, weights=(
            rng.uniform(0.5, 2.0, size=len(readd)) if weighted else None))
    elif present:  # duplicate inserts (weight overwrite / no-op)
        pool = sorted(present)
        picks = [pool[i] for i in rng.choice(len(pool),
                                             size=min(4, len(pool)),
                                             replace=False)]
        graph.add_edges(picks, weights=(
            rng.uniform(0.5, 2.0, size=len(picks)) if weighted else None))


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
@pytest.mark.parametrize("weighted", [True, False],
                         ids=["weighted", "unweighted"])
def test_incremental_rebuild_bit_identical(seed, weighted):
    rng = np.random.default_rng((seed, 17, weighted))
    graph = DynamicGraph(random_base(rng, weighted))
    assert_snapshot_matches(graph.snapshot(), graph, f"seed {seed} epoch 0")
    for batch in range(BATCHES_PER_SEED):
        random_mutation(rng, graph, weighted)
        snapshot = graph.snapshot()
        assert_snapshot_matches(
            snapshot, graph, f"seed {seed} batch {batch} (epoch {snapshot.epoch})"
        )


@pytest.mark.parametrize("seed", range(0, NUM_SEEDS, 4))
def test_incremental_rebuild_survives_forced_compaction(seed):
    """Same invariant with a compaction interleaved mid-sequence."""
    rng = np.random.default_rng((seed, 23))
    graph = DynamicGraph(random_base(rng, True))
    graph.snapshot()
    for batch in range(BATCHES_PER_SEED):
        random_mutation(rng, graph, True)
        if batch == 2:
            graph.compact()
        assert_snapshot_matches(graph.snapshot(), graph,
                                f"seed {seed} batch {batch} (compacting)")
    assert graph.compactions >= 1
