"""The mutate-bench harness itself: report integrity on a tiny trace.

``run_mutate_bench`` is the measurement path behind ``repro
mutate-bench`` and the CI dynamic smoke; a bug here (mis-foldeed
counters, a broken equivalence check) would silently invalidate the
benchmark gate, so the harness gets direct test coverage on a trace
small enough for the tier-1 suite.
"""

import numpy as np
import pytest

from repro.bench.workloads import make_spec
from repro.dynamic import make_trace, run_mutate_bench
from repro.dynamic.bench import (
    fresh_static_build,
    rebuild_from_edge_set,
    snapshot_matches_static,
)


@pytest.fixture(scope="module")
def report():
    trace = make_trace("window", 7, edge_factor=6, batch_size=80,
                       num_batches=4, seed=2, weighted=True)
    spec = make_spec("DeepWalk")
    spec.max_length = 16
    return trace, run_mutate_bench(trace, spec, seed=2, walk_queries=64,
                                   full_rebuild_samples=2)


def test_report_accounts_for_the_whole_trace(report):
    trace, result = report
    assert result.num_batches == len(trace.batches)
    assert result.ops_applied == trace.total_ops
    assert result.final_epoch >= 1
    assert result.full_rebuild_samples == 2
    assert result.updates_per_second > 0
    assert result.dynamic_hops_per_second > 0
    assert result.walk_retention > 0


def test_snapshot_equivalence_holds_and_detects_divergence(report):
    trace, result = report
    assert result.snapshot_equivalent
    # The checker must actually be able to say "no": perturb one prepared
    # array of a fresh build and require a mismatch.
    dynamic = trace.build_dynamic()
    snapshot = dynamic.snapshot()
    graph, state = fresh_static_build(dynamic)
    assert snapshot_matches_static(snapshot, graph, state)
    doctored = state.its_cdf.copy()
    doctored[0] += 1.0
    tampered = type(state)(
        alias_prob=state.alias_prob,
        alias_index=state.alias_index,
        its_cdf=doctored,
        its_row_totals=state.its_row_totals,
        edge_keys=state.edge_keys,
        strategy=state.strategy,
    )
    assert not snapshot_matches_static(snapshot, graph, tampered)


def test_strategy_divergence_fails_equivalence(report):
    """The strategy map is part of the bit-identity contract."""
    trace, _ = report
    dynamic = trace.build_dynamic()
    snapshot = dynamic.snapshot()
    graph, state = fresh_static_build(dynamic)
    flipped = np.array(state.strategy)
    flipped[0, 0] = (flipped[0, 0] + 1) % 3
    tampered = type(state)(
        alias_prob=state.alias_prob,
        alias_index=state.alias_index,
        its_cdf=state.its_cdf,
        its_row_totals=state.its_row_totals,
        edge_keys=state.edge_keys,
        strategy=flipped,
    )
    assert not snapshot_matches_static(snapshot, graph, tampered)


def test_rebuild_baseline_matches_logical_edges(report):
    trace, _ = report
    dynamic = trace.build_dynamic()
    edges, weights = dynamic.logical_edges()
    graph, state = rebuild_from_edge_set(edges, weights, dynamic.num_vertices,
                                         dynamic.name)
    assert graph.num_edges == dynamic.num_edges
    assert state.num_slots == graph.num_edges


def test_summary_renders(report):
    _, result = report
    text = result.summary()
    assert "retention" in text and "speedup" in text.lower()
