"""Update-trace generators: determinism and structural invariants."""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    apply_batch,
    grow_only_trace,
    make_trace,
    sliding_window_trace,
    weight_churn_trace,
)
from repro.errors import DynamicGraphError


def replay(trace):
    graph = trace.build_dynamic()
    for batch in trace.batches:
        apply_batch(graph, batch)
    return graph


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["grow", "window", "churn"])
    def test_same_seed_same_trace(self, kind):
        a = make_trace(kind, 6, edge_factor=4, batch_size=50, num_batches=4,
                       seed=9)
        b = make_trace(kind, 6, edge_factor=4, batch_size=50, num_batches=4,
                       seed=9)
        assert np.array_equal(a.base_edges, b.base_edges)
        assert len(a.batches) == len(b.batches)
        for x, y in zip(a.batches, b.batches):
            assert np.array_equal(x.add, y.add)
            assert np.array_equal(x.remove, y.remove)
            assert np.array_equal(x.reweight, y.reweight)

    def test_different_seed_differs(self):
        a = grow_only_trace(6, edge_factor=4, batch_size=50, seed=1)
        b = grow_only_trace(6, edge_factor=4, batch_size=50, seed=2)
        assert not np.array_equal(a.base_edges, b.base_edges)


class TestGrowOnly:
    def test_batches_only_insert(self):
        trace = grow_only_trace(6, edge_factor=4, batch_size=50, seed=3)
        assert all(
            b.remove.shape[0] == 0 and b.reweight.shape[0] == 0
            for b in trace.batches
        )

    def test_replays_cleanly_and_grows(self):
        trace = grow_only_trace(6, edge_factor=4, batch_size=50, seed=3)
        graph = replay(trace)
        assert graph.num_edges == trace.base_edges.shape[0] + sum(
            b.add.shape[0] for b in trace.batches
        )

    def test_unweighted_variant(self):
        trace = grow_only_trace(6, edge_factor=4, batch_size=50, seed=3,
                                weighted=False)
        assert trace.base_weights is None
        graph = replay(trace)
        assert not graph.is_weighted


class TestSlidingWindow:
    def test_window_keeps_edge_count_stable(self):
        trace = sliding_window_trace(6, edge_factor=4, batch_size=40, seed=4)
        graph = trace.build_dynamic()
        start_edges = graph.num_edges
        for batch in trace.batches:
            apply_batch(graph, batch)
            # adds == removes per batch, so |E| never drifts
            assert graph.num_edges == start_edges

    def test_snapshot_after_full_replay_is_consistent(self):
        trace = sliding_window_trace(6, edge_factor=4, batch_size=40, seed=4)
        graph = replay(trace)
        snapshot = graph.snapshot()
        assert snapshot.graph.num_edges == graph.num_edges


class TestWeightChurn:
    def test_topology_is_fixed(self):
        trace = weight_churn_trace(6, edge_factor=4, batch_size=30,
                                   num_batches=4, seed=5)
        graph = trace.build_dynamic()
        before = graph.num_edges
        for batch in trace.batches:
            assert batch.add.shape[0] == 0 and batch.remove.shape[0] == 0
            apply_batch(graph, batch)
        assert graph.num_edges == before

    def test_weights_actually_churn(self):
        trace = weight_churn_trace(6, edge_factor=4, batch_size=30,
                                   num_batches=2, seed=5)
        graph = trace.build_dynamic()
        graph.snapshot()
        before = graph.snapshot().graph.weights.copy()
        for batch in trace.batches:
            apply_batch(graph, batch)
        after = graph.snapshot().graph.weights
        assert not np.array_equal(before, after)


class TestMakeTrace:
    def test_unknown_kind_rejected(self):
        with pytest.raises(DynamicGraphError, match="unknown trace kind"):
            make_trace("shrink", 6)

    def test_build_dynamic_returns_dynamic_graph(self):
        trace = make_trace("grow", 6, edge_factor=4, batch_size=50, seed=1)
        assert isinstance(trace.build_dynamic(), DynamicGraph)
