"""DynamicGraph update semantics, validation, epochs and compaction."""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph
from repro.errors import DynamicGraphError, GraphError
from repro.graph import from_edges
from repro.graph.datasets import assign_metapath_schema


def weighted_graph():
    return from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3)],
        num_vertices=5,
        weights=[1.0, 2.0, 3.0, 4.0, 5.0],
    )


def unweighted_graph():
    return from_edges([(0, 1), (0, 2), (1, 2), (2, 0)], num_vertices=4)


class TestConstruction:
    def test_rejects_edge_typed_base(self):
        typed = assign_metapath_schema(unweighted_graph(), num_types=2, seed=0)
        with pytest.raises(DynamicGraphError, match="edge/vertex types"):
            DynamicGraph(typed)

    def test_rejects_unsorted_neighbor_lists(self):
        unsorted = from_edges([(0, 2), (0, 1)], sort_neighbors=False)
        with pytest.raises(DynamicGraphError, match="sorted neighbor lists"):
            DynamicGraph(unsorted)

    def test_rejects_bad_threshold(self):
        with pytest.raises(DynamicGraphError, match="compaction_threshold"):
            DynamicGraph(unweighted_graph(), compaction_threshold=0.0)


class TestReadApi:
    def test_mirrors_base_before_updates(self):
        g = DynamicGraph(weighted_graph())
        assert g.num_vertices == 5
        assert g.num_edges == 5
        assert g.degree(2) == 2
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbor_weights(2).tolist() == [4.0, 5.0]
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_reads_see_pending_updates(self):
        g = DynamicGraph(weighted_graph())
        g.add_edges([(1, 0)], weights=[7.0])
        g.remove_edges([(0, 2)])
        assert g.has_edge(1, 0) and not g.has_edge(0, 2)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0, 2]
        assert g.neighbor_weights(1).tolist() == [7.0, 3.0]
        assert g.num_edges == 5

    def test_unweighted_neighbor_weights_are_ones(self):
        g = DynamicGraph(unweighted_graph())
        g.add_edges([(3, 0)])
        assert g.neighbor_weights(3).tolist() == [1.0]


class TestUpdateSemantics:
    def test_duplicate_insert_updates_weight_in_place(self):
        g = DynamicGraph(weighted_graph())
        assert g.add_edges([(0, 1)], weights=[9.0]) == 0
        assert g.num_edges == 5
        assert g.neighbor_weights(0).tolist() == [9.0, 2.0]

    def test_duplicate_insert_unweighted_is_noop(self):
        g = DynamicGraph(unweighted_graph())
        assert g.add_edges([(0, 1)]) == 0
        assert g.num_edges == 4

    def test_remove_missing_edge_raises(self):
        g = DynamicGraph(weighted_graph())
        with pytest.raises(DynamicGraphError, match="does not exist"):
            g.remove_edges([(1, 0)])

    def test_remove_then_readd(self):
        g = DynamicGraph(weighted_graph())
        g.remove_edges([(0, 1)])
        assert not g.has_edge(0, 1)
        assert g.add_edges([(0, 1)], weights=[8.0]) == 1
        assert g.neighbor_weights(0).tolist() == [8.0, 2.0]
        assert g.num_edges == 5

    def test_vertex_drops_to_degree_zero(self):
        g = DynamicGraph(weighted_graph())
        g.remove_edges([(2, 0), (2, 3)])
        assert g.degree(2) == 0
        assert g.neighbors(2).size == 0
        snap = g.snapshot()
        assert snap.graph.degree(2) == 0

    def test_update_weights_requires_existing_edge(self):
        g = DynamicGraph(weighted_graph())
        with pytest.raises(DynamicGraphError, match="re-weight"):
            g.update_weights([(3, 0)], weights=[1.0])

    def test_update_weights_on_unweighted_rejected(self):
        g = DynamicGraph(unweighted_graph())
        with pytest.raises(DynamicGraphError, match="unweighted"):
            g.update_weights([(0, 1)], weights=[2.0])

    def test_weighted_updates_require_weights(self):
        g = DynamicGraph(weighted_graph())
        with pytest.raises(DynamicGraphError, match="must carry weights"):
            g.add_edges([(3, 0)])

    def test_unweighted_updates_reject_weights(self):
        g = DynamicGraph(unweighted_graph())
        with pytest.raises(DynamicGraphError, match="do not accept"):
            g.add_edges([(3, 0)], weights=[1.0])

    def test_bad_weight_rejected_before_any_mutation(self):
        g = DynamicGraph(weighted_graph())
        with pytest.raises(GraphError, match="positive and finite"):
            g.add_edges([(3, 0), (3, 1)], weights=[1.0, -2.0])
        # Array-level validation runs before the first edge applies.
        assert not g.has_edge(3, 0)

    def test_vertex_set_is_fixed(self):
        g = DynamicGraph(unweighted_graph())
        with pytest.raises(DynamicGraphError, match="fixed at construction"):
            g.add_edges([(0, 99)])


class TestSnapshots:
    def test_epoch_zero_and_caching(self):
        g = DynamicGraph(weighted_graph())
        first = g.snapshot()
        assert first.epoch == 0
        assert g.snapshot() is first

    def test_updates_advance_the_epoch(self):
        g = DynamicGraph(weighted_graph())
        g.snapshot()
        g.add_edges([(3, 0)], weights=[1.0])
        assert g.snapshot().epoch == 1
        g.remove_edges([(3, 0)])
        assert g.snapshot().epoch == 2
        assert g.epoch == 2

    def test_snapshots_are_immutable_versions(self):
        g = DynamicGraph(weighted_graph())
        before = g.snapshot()
        g.remove_edges([(0, 1)])
        after = g.snapshot()
        assert before.graph.has_edge(0, 1)
        assert not after.graph.has_edge(0, 1)
        assert not before.graph.col.flags.writeable
        assert not before.sampler_state.alias_prob.flags.writeable

    def test_logical_edges_roundtrip(self):
        g = DynamicGraph(weighted_graph())
        g.add_edges([(4, 0)], weights=[2.5])
        g.remove_edges([(1, 2)])
        edges, weights = g.logical_edges()
        rebuilt = from_edges(edges, num_vertices=5, weights=weights)
        snap = g.snapshot()
        assert np.array_equal(rebuilt.row_ptr, snap.graph.row_ptr)
        assert np.array_equal(rebuilt.col, snap.graph.col)
        assert np.array_equal(rebuilt.weights, snap.graph.weights)


class TestCompaction:
    def test_threshold_triggers_compaction(self):
        g = DynamicGraph(unweighted_graph(), compaction_threshold=0.5,
                         min_compaction_edges=2)
        g.snapshot()
        g.add_edges([(0, 3), (1, 0), (1, 3), (3, 0), (3, 1)])
        assert g.compactions >= 1
        assert g.delta_edges == 0

    def test_compaction_preserves_snapshot_identity(self):
        g1 = DynamicGraph(weighted_graph(), min_compaction_edges=10**9)
        g2 = DynamicGraph(weighted_graph(), min_compaction_edges=10**9)
        for g in (g1, g2):
            g.snapshot()
            g.add_edges([(3, 0), (4, 3)], weights=[1.5, 2.5])
            g.remove_edges([(0, 1)])
        g1.compact()  # explicit compaction on one of the twins only
        assert g1.compactions == 1 and g2.compactions == 0
        s1, s2 = g1.snapshot(), g2.snapshot()
        assert np.array_equal(s1.graph.col, s2.graph.col)
        assert np.array_equal(s1.graph.weights, s2.graph.weights)
        assert np.array_equal(s1.sampler_state.alias_prob,
                              s2.sampler_state.alias_prob)
        assert s1.epoch == s2.epoch == 1
