"""Unit tests for the device catalog and resource model (Tables III/IV)."""

import pytest

from repro.errors import ResourceModelError
from repro.resources import (
    ALVEO_U50,
    ALVEO_U55C,
    DEVICE_CATALOG,
    ResourceVector,
    estimate_kernel,
    get_device,
    scheduler_resources,
    scheduler_units,
    table4_row,
)
from repro.walks import DeepWalkSpec, Node2VecSpec, PPRSpec, URWSpec


class TestDevices:
    def test_catalog_complete(self):
        assert set(DEVICE_CATALOG) == {"U250", "VCK5000", "U50", "U55C", "U280"}

    def test_max_pipelines(self):
        assert ALVEO_U55C.max_pipelines == 16
        assert get_device("U250").max_pipelines == 2

    def test_unknown_device(self):
        with pytest.raises(ResourceModelError, match="unknown device"):
            get_device("U9999")


class TestResourceVector:
    def test_add_and_scale(self):
        a = ResourceVector(luts=10, registers=20, bram36=1, dsp=2)
        b = a + a.scaled(2)
        assert b.luts == 30 and b.dsp == 6

    def test_utilization_and_fits(self):
        small = ResourceVector(luts=1000, registers=1000, bram36=1, dsp=1)
        util = small.utilization(ALVEO_U55C)
        assert 0 < util["LUTs"] < 0.01
        assert small.fits(ALVEO_U55C)
        huge = ResourceVector(luts=10**8, registers=0, bram36=0, dsp=0)
        assert not huge.fits(ALVEO_U55C)


class TestSchedulerModel:
    def test_unit_count_formula(self):
        # 2*N*log2(N) + (N-1) + N
        assert scheduler_units(16) == 2 * 16 * 4 + 15 + 16
        assert scheduler_units(4) == 2 * 4 * 2 + 3 + 4
        assert scheduler_units(1) == 1

    def test_paper_standalone_figure(self):
        # ~1.8% of U55C LUTs for the 16-wide scheduler (Section VIII-F).
        pct = scheduler_resources(16).luts / ALVEO_U55C.luts * 100
        assert 1.4 < pct < 2.2

    def test_validation(self):
        with pytest.raises(ResourceModelError):
            scheduler_units(0)


class TestTable4:
    def paper(self):
        return {
            "PPR": (61.1, 29.8, 19.5, 2.2),
            "URW": (50.1, 24.0, 19.5, 2.2),
            "DeepWalk": (67.5, 32.3, 39.1, 4.4),
            "Node2Vec": (79.1, 41.6, 36.0, 7.3),
        }

    def specs(self):
        return {
            "PPR": PPRSpec(),
            "URW": URWSpec(),
            "DeepWalk": DeepWalkSpec(),
            "Node2Vec": Node2VecSpec(strategy="reservoir"),
        }

    def test_every_cell_within_six_points(self):
        for name, spec in self.specs().items():
            row = table4_row(spec)
            expected = self.paper()[name]
            got = (row["LUTs"], row["REGs"], row["BRAMs"], row["DSPs"])
            for g, e in zip(got, expected):
                assert abs(g - e) < 6.0, (name, got, expected)

    def test_kernel_ordering(self):
        rows = {name: table4_row(spec) for name, spec in self.specs().items()}
        assert rows["Node2Vec"]["LUTs"] > rows["DeepWalk"]["LUTs"] > rows["URW"]["LUTs"]
        assert rows["DeepWalk"]["BRAMs"] > rows["URW"]["BRAMs"]

    def test_every_kernel_fits_u55c(self):
        for spec in self.specs().values():
            assert estimate_kernel(spec, num_pipelines=16).fits(ALVEO_U55C)

    def test_scaling_with_pipelines(self):
        small = estimate_kernel(URWSpec(), num_pipelines=4)
        large = estimate_kernel(URWSpec(), num_pipelines=16)
        assert large.luts > small.luts
        # Sub-linear total growth: the shell is shared.
        assert large.luts < 4 * small.luts

    def test_u50_tighter_than_u55c(self):
        usage = estimate_kernel(DeepWalkSpec(), num_pipelines=16)
        assert usage.utilization(ALVEO_U50)["LUTs"] > usage.utilization(ALVEO_U55C)["LUTs"]

    def test_unknown_sampler_rejected(self):
        class WeirdSpec(URWSpec):
            def make_sampler(self):
                sampler = super().make_sampler()
                sampler.name = "quantum"
                return sampler

        with pytest.raises(ResourceModelError, match="quantum"):
            estimate_kernel(WeirdSpec())
