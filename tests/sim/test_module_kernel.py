"""Unit tests for pipelined modules, the kernel, and run metrics."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import (
    Module,
    PipelinedModule,
    RunMetrics,
    SimulationKernel,
    StreamFifo,
)


class Doubler(PipelinedModule):
    def process(self, item, cycle):
        return item * 2


class DropOdd(PipelinedModule):
    def process(self, item, cycle):
        return item if item % 2 == 0 else None


def pump(kernel, fifo, items):
    for item in items:
        fifo.push(item)
    fifo.commit()
    # fifo already registered with kernel; commit once manually to seed


class TestPipelinedModule:
    def run_through(self, module_cls, items, latency=1, cycles=50):
        kernel = SimulationKernel()
        src = kernel.make_fifo(16, "src")
        dst = kernel.make_fifo(16, "dst")
        kernel.add_module(module_cls("m", src, dst, latency=latency))
        for item in items:
            src.push(item)
        for _ in range(cycles):
            kernel.step()
        out = []
        while not dst.is_empty():
            out.append(dst.pop())
        return out

    def test_transform(self):
        assert self.run_through(Doubler, [1, 2, 3]) == [2, 4, 6]

    def test_filter_drops_but_counts(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(16, "src")
        dst = kernel.make_fifo(16, "dst")
        mod = DropOdd("m", src, dst)
        kernel.add_module(mod)
        for item in (1, 2, 3, 4):
            src.push(item)
        for _ in range(20):
            kernel.step()
        assert mod.stats.items_processed == 4

    def test_latency_is_respected(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(4, "src")
        dst = kernel.make_fifo(4, "dst")
        kernel.add_module(Doubler("m", src, dst, latency=5))
        src.push(7)
        for cycle in range(5):
            kernel.step()
            assert dst.is_empty(), f"output too early at cycle {cycle}"
        for _ in range(3):
            kernel.step()
        assert dst.pop() == 14

    def test_ii_one_throughput(self):
        # latency 3, II=1: N items take ~N + latency cycles, not 3N.
        kernel = SimulationKernel()
        src = kernel.make_fifo(64, "src")
        dst = kernel.make_fifo(64, "dst")
        kernel.add_module(Doubler("m", src, dst, latency=3))
        for i in range(20):
            src.push(i)
        cycles = 0
        while dst.occupancy() < 20 and cycles < 100:
            kernel.step()
            cycles += 1
        assert cycles < 20 + 3 + 5

    def test_backpressure_blocks(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(16, "src")
        dst = kernel.make_fifo(1, "dst")  # tiny output
        mod = Doubler("m", src, dst)
        kernel.add_module(mod)
        for i in range(8):
            src.push(i)
        for _ in range(20):
            kernel.step()
        assert mod.stats.blocked_cycles > 0
        assert dst.occupancy() == 1

    def test_starvation_counted(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(4, "src")
        dst = kernel.make_fifo(4, "dst")
        mod = Doubler("m", src, dst)
        kernel.add_module(mod)
        for _ in range(10):
            kernel.step()
        assert mod.stats.starved_cycles == 10
        assert mod.stats.bubble_ratio() == 1.0

    def test_latency_validation(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(4, "src")
        dst = kernel.make_fifo(4, "dst")
        with pytest.raises(SimulationError):
            Doubler("m", src, dst, latency=0)


class TestKernel:
    def test_run_until_condition(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(8, "src")
        dst = kernel.make_fifo(8, "dst")
        kernel.add_module(Doubler("m", src, dst))
        for i in range(4):
            src.push(i)
        kernel.run_until(lambda: dst.occupancy() == 4, max_cycles=100)
        assert kernel.cycle < 100

    def test_cycle_budget_enforced(self):
        kernel = SimulationKernel()
        kernel.make_fifo(2, "unused")
        with pytest.raises(SimulationError, match="exceeded"):
            kernel.run_until(lambda: False, max_cycles=10)

    def test_deadlock_detected(self):
        # A module blocked forever on a full output with items waiting.
        kernel = SimulationKernel()
        src = kernel.make_fifo(8, "src")
        dst = kernel.make_fifo(1, "dst")  # never drained
        kernel.add_module(Doubler("m", src, dst))
        for i in range(5):
            src.push(i)
        with pytest.raises(DeadlockError) as err:
            kernel.run_until(lambda: False, max_cycles=100_000)
        assert err.value.in_flight > 0

    def test_elapsed_seconds(self):
        kernel = SimulationKernel(core_mhz=320.0)
        for _ in range(320):
            kernel.step()
        assert kernel.elapsed_seconds() == pytest.approx(1e-6)

    def test_core_mhz_validation(self):
        with pytest.raises(SimulationError):
            SimulationKernel(core_mhz=0)


class TestRunMetrics:
    def metrics(self, **kw):
        defaults = dict(
            total_steps=1000,
            cycles=2000,
            core_mhz=320.0,
            random_transactions=2000,
            words_transferred=2000,
            peak_random_tx_per_cycle=2.0,
            bubble_cycles=100,
            pipeline_cycles=1000,
        )
        defaults.update(kw)
        return RunMetrics(**defaults)

    def test_msteps(self):
        m = self.metrics()
        # 1000 steps / (2000 / 320e6) s = 160 MStep/s
        assert m.msteps_per_second() == pytest.approx(160.0)

    def test_bandwidth(self):
        m = self.metrics()
        # 2000 words * 8B / 6.25us = 2.56 GB/s
        assert m.effective_bandwidth_gbs() == pytest.approx(2.56)

    def test_utilization(self):
        m = self.metrics()
        # peak = 2 words/cycle * 320e6 * 8B = 5.12 GB/s -> 50%
        assert m.bandwidth_utilization() == pytest.approx(0.5)

    def test_bubble_ratio(self):
        assert self.metrics().bubble_ratio() == pytest.approx(0.1)

    def test_steps_per_cycle(self):
        assert self.metrics().steps_per_cycle() == pytest.approx(0.5)

    def test_summary_contains_key_numbers(self):
        text = self.metrics().summary()
        assert "MStep/s" in text and "GB/s" in text

    def test_validation(self):
        with pytest.raises(SimulationError):
            self.metrics(cycles=0)
        with pytest.raises(SimulationError):
            self.metrics(total_steps=-1)
        with pytest.raises(SimulationError):
            self.metrics(peak_random_tx_per_cycle=0).bandwidth_utilization()
