"""Unit tests for registered stream FIFOs."""

import pytest

from repro.errors import SimulationError
from repro.sim import StreamFifo


class TestRegisteredSemantics:
    def test_push_invisible_until_commit(self):
        f = StreamFifo(4)
        f.push("a")
        assert f.is_empty()
        f.commit()
        assert not f.is_empty()
        assert f.front() == "a"

    def test_pop_applied_at_commit(self):
        f = StreamFifo(4)
        f.push("a")
        f.commit()
        assert f.pop() == "a"
        # occupancy drops only at commit
        assert f.occupancy() == 1
        f.commit()
        assert f.occupancy() == 0

    def test_fifo_order(self):
        f = StreamFifo(8)
        for x in range(5):
            f.push(x)
        f.commit()
        out = [f.pop() for _ in range(3)]
        f.commit()
        out += [f.pop() for _ in range(2)]
        f.commit()
        assert out == [0, 1, 2, 3, 4]

    def test_same_cycle_push_pop_different_items(self):
        f = StreamFifo(4)
        f.push("old")
        f.commit()
        # consumer pops the old item while producer pushes a new one
        assert f.pop() == "old"
        f.push("new")
        f.commit()
        assert f.pop() == "new"


class TestCapacity:
    def test_full_counts_staged(self):
        f = StreamFifo(2)
        f.push(1)
        f.push(2)
        assert f.is_full()
        with pytest.raises(SimulationError, match="full"):
            f.push(3)

    def test_try_push(self):
        f = StreamFifo(1)
        assert f.try_push(1)
        assert not f.try_push(2)

    def test_full_is_registered_not_pop_aware(self):
        # Popping this cycle does NOT free space this cycle (hardware
        # full flags are registered).
        f = StreamFifo(1)
        f.push(1)
        f.commit()
        f.pop()
        assert f.is_full()
        f.commit()
        assert not f.is_full()

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            StreamFifo(0)


class TestConsumerSide:
    def test_multiple_pops_per_cycle_supported(self):
        f = StreamFifo(4)
        for x in (1, 2, 3):
            f.push(x)
        f.commit()
        assert f.pop() == 1
        assert f.pop() == 2
        assert f.try_pop() == 3
        assert f.try_pop() is None

    def test_front_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            StreamFifo(2).front()

    def test_in_flight_counts_staged_and_committed(self):
        f = StreamFifo(4)
        f.push(1)
        assert f.in_flight() == 1
        f.commit()
        f.push(2)
        assert f.in_flight() == 2
        f.pop()
        assert f.in_flight() == 1


class TestAccounting:
    def test_counters(self):
        f = StreamFifo(4)
        f.push(1)
        f.push(2)
        f.commit()
        f.pop()
        f.commit()
        assert f.total_pushed == 2
        assert f.total_popped == 1
        assert f.peak_occupancy == 2
