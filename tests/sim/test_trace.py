"""Unit tests for the utilization tracer and timeline rendering."""

import pytest

from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.errors import SimulationError
from repro.graph import cycle_graph, load_dataset
from repro.memory.spec import MemorySpec
from repro.sim import (
    PipelinedModule,
    SimulationKernel,
    TraceSeries,
    UtilizationTracer,
    render_dashboard,
    render_timeline,
)
from repro.walks import URWSpec, make_queries


class Identity(PipelinedModule):
    pass


class TestTracer:
    def test_module_activity_sampled(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(64, "src")
        dst = kernel.make_fifo(64, "dst")
        module = Identity("m", src, dst)
        kernel.add_module(module)
        tracer = UtilizationTracer(window=10)
        series = tracer.watch_module(module)
        for i in range(30):
            src.push(i)
        for _ in range(30):
            kernel.step()
            tracer.sample(kernel.cycle)
        assert len(series.values) == 3
        assert series.mean() > 0.5  # busy most of the time

    def test_idle_module_traces_zero(self):
        kernel = SimulationKernel()
        src = kernel.make_fifo(4, "src")
        dst = kernel.make_fifo(4, "dst")
        module = Identity("m", src, dst)
        kernel.add_module(module)
        tracer = UtilizationTracer(window=5)
        series = tracer.watch_module(module)
        for _ in range(20):
            kernel.step()
            tracer.sample(kernel.cycle)
        assert series.mean() == 0.0

    def test_fifo_occupancy_sampled(self):
        kernel = SimulationKernel()
        fifo = kernel.make_fifo(4, "f")
        tracer = UtilizationTracer(window=2)
        series = tracer.watch_fifo(fifo)
        fifo.push(1)
        fifo.push(2)
        fifo.commit()
        for _ in range(4):
            kernel.step()
            tracer.sample(kernel.cycle)
        assert series.peak() == pytest.approx(0.5)

    def test_series_lookup(self):
        kernel = SimulationKernel()
        fifo = kernel.make_fifo(4, "watched")
        tracer = UtilizationTracer()
        tracer.watch_fifo(fifo)
        assert tracer.series("watched").name == "watched"
        with pytest.raises(SimulationError, match="no traced series"):
            tracer.series("nope")

    def test_window_validation(self):
        with pytest.raises(SimulationError):
            UtilizationTracer(window=0)


class TestRendering:
    def test_render_resamples_to_width(self):
        series = TraceSeries(name="s", window=8, values=[0.0, 0.5, 1.0] * 10)
        text = render_timeline(series, width=12)
        assert "|" in text and "s" in text
        assert len(text.split("|")[1]) == 12

    def test_render_empty(self):
        assert "no samples" in render_timeline(TraceSeries("s", 8))

    def test_dashboard_lists_all(self):
        tracer = UtilizationTracer(window=4)
        kernel = SimulationKernel()
        tracer.watch_fifo(kernel.make_fifo(4, "a"))
        tracer.watch_fifo(kernel.make_fifo(4, "b"))
        for _ in range(8):
            kernel.step()
            tracer.sample(kernel.cycle)
        dashboard = render_dashboard(tracer)
        assert "a" in dashboard and "b" in dashboard


class TestAcceleratorIntegration:
    def test_streaming_with_tracer(self):
        memory = MemorySpec(
            "fast", num_channels=4, random_tx_rate_mhz=320, sequential_gbs=20,
            round_trip_cycles=8, max_outstanding=8,
        )
        g = load_dataset("AS", scale=0.05, seed=1)
        queries = make_queries(g, 64, seed=2)
        config = RidgeWalkerConfig(num_pipelines=2, memory=memory)
        tracer = UtilizationTracer(window=64)
        RidgeWalker(g, URWSpec(max_length=40), config, seed=3).run_streaming(
            queries, warmup_cycles=500, measure_cycles=2000, tracer=tracer
        )
        names = [s.name for s in tracer.all_series()]
        assert "pipe0.sp" in names and "pipe1.sp" in names
        assert any(n.startswith("sched.pipe_in") for n in names)
        assert tracer.series("pipe0.sp").mean() > 0.1
