"""Trace a flash crowd: telemetry from a multi-tenant cached serve run.

Drives a two-tenant flash-crowd workload (a steady premium stream plus
a best-effort burst dense enough to shed) against the async walk
service with the hot-walk cache enabled, with span tracing on.  Writes

* ``flash_crowd_trace.json`` — Chrome ``trace_event`` JSON: open
  https://ui.perfetto.dev and drag the file in to see the
  coalesce→admit→execute→respond cascade, shed markers, and cache
  pool fills on real thread tracks;
* ``flash_crowd_metrics.prom`` — a Prometheus text snapshot of the
  service's exported metrics (tenant ledgers, cache counters, gauges);

then verifies the exported counters against the in-memory per-tenant
ledgers — the accounting identity ``offered == completed + dropped +
failed`` holds exactly on the exported values.

Run:  PYTHONPATH=src python examples/trace_flash_crowd.py
"""

import asyncio

import numpy as np

from repro.graph import powerlaw
from repro.obs import render_prometheus, tracing, write_chrome_trace, write_prometheus
from repro.serve import (
    HotWalkCache,
    ServeConfig,
    TenantSpec,
    TenantTrace,
    WalkService,
    flash_crowd_gaps,
    run_tenant_traces,
)
from repro.walks import DeepWalkSpec

REQUESTS_PER_TENANT = 300
TRACE_OUT = "flash_crowd_trace.json"
METRICS_OUT = "flash_crowd_metrics.prom"


def build_workload():
    """A small powerlaw graph, two tenants, and their arrival traces."""
    graph = powerlaw(num_vertices=2000, num_edges=16000, seed=2,
                     name="flash-crowd-demo")
    spec = DeepWalkSpec(max_length=20)
    rng = np.random.default_rng(4)
    candidates = np.nonzero(graph.degrees() > 0)[0]
    # Few distinct hot vertices so the cache crosses its fill threshold
    # and starts serving pool hits mid-run.
    hot = rng.choice(candidates, size=8, replace=False)
    tenants = [
        TenantSpec("premium", weight=8,
                   queue_depth=4 * REQUESTS_PER_TENANT),
        # A shallow gate for the stressor: the burst must shed here, and
        # only here — premium rides out the crowd untouched.
        TenantSpec("besteffort", weight=1, queue_depth=16),
    ]
    config = ServeConfig(max_batch=32, max_wait_ms=2.0,
                         queue_depth=4 * REQUESTS_PER_TENANT)
    traces = [
        TenantTrace(
            "premium",
            rng.choice(hot, size=REQUESTS_PER_TENANT, replace=True),
            np.full(REQUESTS_PER_TENANT, 1e-4),
            use_cache=True,
        ),
        TenantTrace(
            "besteffort",
            rng.choice(hot, size=REQUESTS_PER_TENANT, replace=True),
            flash_crowd_gaps(REQUESTS_PER_TENANT, 200000.0, seed=6),
            use_cache=True,
        ),
    ]
    return graph, spec, tenants, config, traces


async def drive(graph, spec, tenants, config, traces):
    service = WalkService(
        graph, spec, engine="batch", seed=11, config=config,
        tenants=tenants, cache=HotWalkCache(pool_size=8, hot_threshold=3),
    )
    async with service:
        reports = await run_tenant_traces(service, traces)
    return service, reports


def main() -> None:
    graph, spec, tenants, config, traces = build_workload()
    print(f"graph: {graph}")

    # Trace the whole run.  tracing() enables the global tracer for the
    # duration and restores the prior (disabled) state on exit; the
    # buffered spans survive the guard for export below.
    with tracing(capacity=200_000) as tracer:
        service, reports = asyncio.run(
            drive(graph, spec, tenants, config, traces)
        )

    print("\nper-tenant ledgers:")
    for tenant, ledger in service.tenant_stats.items():
        print(f"  {tenant:<10} offered {ledger.offered:>4}  "
              f"completed {ledger.completed:>4}  "
              f"dropped {ledger.dropped:>4}  failed {ledger.failed:>4}")
    print(f"cache: {service.cache.hits} hits / "
          f"{service.cache.misses} misses "
          f"({service.cache.pools_built} pools built)")

    # Export 1: the Chrome trace.  Every span the serve path recorded —
    # coalesce windows, batch execution, responds, shed instants.
    events = write_chrome_trace(TRACE_OUT, tracer)
    print(f"\ntrace: {events} events ({tracer.dropped} dropped) "
          f"-> {TRACE_OUT}  (load at https://ui.perfetto.dev)")

    # Export 2: the Prometheus snapshot of the service's metrics.
    registry = service.snapshot_metrics()
    samples = write_prometheus(METRICS_OUT, registry)
    print(f"metrics: {samples} samples -> {METRICS_OUT}")

    # Verify: exported counters == in-memory ledgers, exactly, and the
    # accounting identity holds on the exported values per tenant.
    requests = registry.get("repro_serve_requests_total")
    for tenant, ledger in service.tenant_stats.items():
        exported = {
            outcome: requests.value(outcome=outcome, tenant=tenant)
            for outcome in ("completed", "dropped", "failed")
        }
        assert exported["completed"] == ledger.completed == reports[tenant].completed
        assert exported["dropped"] == ledger.dropped
        assert sum(exported.values()) == ledger.offered, tenant
    assert requests.value(outcome="dropped", tenant="besteffort") > 0, \
        "the flash crowd should have shed against the 16-deep gate"
    assert requests.value(outcome="dropped", tenant="premium") == 0, \
        "premium should ride out the crowd untouched"
    print("\nexported counters match the ledgers; "
          "offered == completed + dropped + failed per tenant  [OK]")

    # A taste of the exposition format.
    text = render_prometheus(registry)
    preview = [line for line in text.splitlines()
               if line.startswith("repro_serve_requests_total")]
    print("\nrequests_total series:")
    for line in preview:
        print(f"  {line}")


if __name__ == "__main__":
    main()
