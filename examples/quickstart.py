"""Quickstart: run random walks on the simulated RidgeWalker accelerator.

Builds a scaled stand-in of the paper's web-Google dataset, runs a batch
of uniform random walks on a 4-pipeline RidgeWalker, checks the paths
against the pure-software reference engine, and prints the performance
counters the paper's evaluation is built from.

Run:  python examples/quickstart.py
"""

from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.graph import degree_statistics, load_dataset
from repro.memory.spec import HBM2_U55C
from repro.walks import URWSpec, make_queries, run_walks


def main() -> None:
    # 1. A graph.  Table II datasets are regenerated as scaled synthetic
    #    stand-ins with the same structural character (see DESIGN.md).
    graph = load_dataset("WG", seed=1)
    stats = degree_statistics(graph)
    print(f"graph: {graph}")
    print(
        f"  mean degree {stats.mean:.1f}, max {stats.maximum}, "
        f"{stats.dangling_fraction * 100:.0f}% dangling vertices"
    )

    # 2. A walk specification: uniform random walks, the paper's length.
    spec = URWSpec(max_length=80)

    # 3. A query batch (random start vertices with outgoing edges).
    queries = make_queries(graph, 256, seed=2)

    # 4. The accelerator: 4 asynchronous pipelines on U55C-class HBM.
    config = RidgeWalkerConfig(num_pipelines=4, memory=HBM2_U55C)
    engine = RidgeWalker(graph, spec, config, seed=3)
    run = engine.run(queries)

    print("\naccelerator run:")
    print(f"  {run.metrics.summary()}")
    print(f"  bandwidth utilization: {run.metrics.bandwidth_utilization() * 100:.0f}%")
    print(f"  first path: {run.results.path_of(0).tolist()[:12]} ...")

    # 5. Cross-check against the software reference engine: same spec,
    #    same queries — statistically interchangeable results.
    reference = run_walks(graph, spec, queries, seed=4)
    print("\nreference engine (software):")
    print(f"  mean walk length: {reference.lengths().mean():.1f} hops")
    print(f"  accelerator mean: {run.results.lengths().mean():.1f} hops")

    # 6. Steady-state throughput, measured the way the paper measures it:
    #    a continuous query stream and a fixed observation window.
    metrics = RidgeWalker(graph, spec, config, seed=3).run_streaming(
        queries, warmup_cycles=2000, measure_cycles=8000
    )
    print("\nsteady-state (streaming) throughput:")
    print(f"  {metrics.msteps_per_second():.0f} MStep/s at {config.core_mhz:.0f} MHz")


if __name__ == "__main__":
    main()
