"""DeepWalk walk corpus for graph embeddings.

The dominant GRW workload in graph learning (the paper's DeepWalk rows):
fixed-length weighted walks whose sliding windows feed a skip-gram
model.  This example generates the corpus — by default on the vectorized
batch engine, the high-throughput software path; ``--engine sim`` runs
the cycle-level RidgeWalker model instead — then builds a co-occurrence
PPMI matrix plus truncated-SVD embeddings (no ML framework needed), and
sanity-checks that embedding similarity reflects graph proximity.

Run:  python examples/deepwalk_embeddings.py [--engine {batch,parallel,reference,sim}]
"""

import argparse

import numpy as np

from common import add_engine_arguments, run_with_engine
from repro.graph import load_dataset
from repro.walks import DeepWalkSpec, cooccurrence_counts, make_queries

WINDOW = 4
DIMENSIONS = 16


def ppmi_embeddings(counts, num_vertices: int, dims: int) -> np.ndarray:
    """Positive-PMI matrix factorized by truncated SVD — the classic
    count-based equivalent of skip-gram embeddings."""
    matrix = np.zeros((num_vertices, num_vertices))
    for (center, context), count in counts.items():
        matrix[center, context] += count
    total = matrix.sum()
    if total == 0:
        raise ValueError("empty co-occurrence matrix")
    row = matrix.sum(axis=1, keepdims=True)
    col = matrix.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(matrix * total / (row @ col))
    pmi[~np.isfinite(pmi)] = 0.0
    pmi[pmi < 0] = 0.0
    u, s, _ = np.linalg.svd(pmi, full_matrices=False)
    return u[:, :dims] * np.sqrt(s[:dims])


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    return float(a @ b / denom) if denom > 0 else 0.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_engine_arguments(parser)
    args = parser.parse_args()

    graph = load_dataset("WG", scale=0.08, seed=1, weighted=True)
    print(f"graph: {graph}")

    spec = DeepWalkSpec(max_length=40)
    queries = make_queries(graph, 600, seed=2)
    results = run_with_engine(args.engine, graph, spec, queries, seed=3,
                              workers=args.workers, sampler=args.sampler,
                              backend=args.backend)
    print(f"corpus: {results.num_queries} walks, {results.total_steps} hops")

    counts = cooccurrence_counts(results, window=WINDOW)
    embeddings = ppmi_embeddings(counts, graph.num_vertices, DIMENSIONS)
    print(f"embeddings: {embeddings.shape[0]} vertices x {embeddings.shape[1]} dims")

    # Sanity check: direct neighbors should be more similar than random
    # vertex pairs, on average.
    rng = np.random.default_rng(4)
    neighbor_sims = []
    random_sims = []
    walked = {int(v) for path in results.paths for v in path}
    candidates = [v for v in walked if graph.degree(v) > 0]
    for v in rng.choice(candidates, size=min(200, len(candidates)), replace=False):
        v = int(v)
        u = int(rng.choice(graph.neighbors(v)))
        w = int(rng.integers(0, graph.num_vertices))
        neighbor_sims.append(cosine(embeddings[v], embeddings[u]))
        random_sims.append(cosine(embeddings[v], embeddings[w]))
    print(f"mean cosine(neighbors): {np.mean(neighbor_sims):+.3f}")
    print(f"mean cosine(random):    {np.mean(random_sims):+.3f}")
    assert np.mean(neighbor_sims) > np.mean(random_sims), "embeddings look broken"
    print("embedding locality check passed")


if __name__ == "__main__":
    main()
