"""Shared engine dispatch for the example applications.

Thin printing wrapper over :mod:`repro.engines`: every example runs its
walks on one of the three engines held to the same statistical oracle —
the vectorized batch engine (default, the high-throughput software
path), the pure-Python reference loop, or the cycle-level accelerator
model.
"""

from repro.engines import (
    ENGINES as ENGINE_CHOICES,
    hops_per_second,
    run_accelerator_walks,
    run_software_walks,
)


def run_with_engine(engine: str, graph, spec, queries, seed: int):
    """Run the walks on the selected engine, returning WalkResults."""
    if engine == "sim":
        run = run_accelerator_walks(graph, spec, queries, seed=seed)
        print(f"accelerator: {run.metrics.summary()}")
        return run.results
    results, elapsed = run_software_walks(engine, graph, spec, queries, seed=seed)
    print(f"{engine} engine: {results.total_steps} hops in {elapsed:.3f}s "
          f"({hops_per_second(results.total_steps, elapsed):,.0f} hops/s)")
    return results
