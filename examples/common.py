"""Shared engine dispatch for the example applications.

Thin printing wrapper over :mod:`repro.engines`: every example runs its
walks on one of the five engines held to the same statistical oracle —
the vectorized batch engine (default, the high-throughput software
path), the numba-compiled jit engine (``--engine jit``; falls back to
batch with a warning when numba is absent), the sharded multicore
parallel engine (``--engine parallel [--workers N] [--backend jit]``),
the pure-Python reference loop, or the cycle-level accelerator model.
"""

from repro.engines import (
    ENGINES as ENGINE_CHOICES,
    hops_per_second,
    run_accelerator_walks,
    run_software_walks,
)
from repro.parallel import WORKER_BACKENDS
from repro.sampling.hybrid import SAMPLER_MODES


def add_engine_arguments(parser, default: str = "batch") -> None:
    """The engine flags every example shares (--engine, --workers,
    --backend, --sampler)."""
    parser.add_argument("--engine", choices=ENGINE_CHOICES, default=default)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (parallel engine only; "
                        "default: all cores)")
    parser.add_argument("--backend", choices=WORKER_BACKENDS, default=None,
                        help="per-worker shard core (parallel engine only): "
                        "'batch' supersteps or 'jit' fused kernels")
    parser.add_argument("--sampler", choices=SAMPLER_MODES, default="default",
                        help="sampling backend (software engines only): "
                        "'auto' = per-row hybrid strategy selection")


def run_with_engine(engine: str, graph, spec, queries, seed: int, workers=None,
                    sampler: str = "default", backend=None):
    """Run the walks on the selected engine, returning WalkResults."""
    if workers is not None and engine != "parallel":
        # Same contract as the CLI and the registry: a misdirected option
        # fails loudly instead of being silently ignored.
        raise SystemExit("error: --workers only applies to the parallel engine")
    if backend is not None and engine != "parallel":
        raise SystemExit("error: --backend only applies to the parallel engine")
    if engine == "sim":
        if sampler != "default":
            raise SystemExit(
                "error: --sampler only applies to the software engines"
            )
        run = run_accelerator_walks(graph, spec, queries, seed=seed)
        print(f"accelerator: {run.metrics.summary()}")
        return run.results
    results, elapsed = run_software_walks(
        engine, graph, spec, queries, seed=seed, workers=workers,
        sampler=sampler, backend=backend,
    )
    print(f"{engine} engine: {results.total_steps} hops in {elapsed:.3f}s "
          f"({hops_per_second(results.total_steps, elapsed):,.0f} hops/s)")
    return results
