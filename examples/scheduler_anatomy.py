"""Anatomy of the zero-bubble scheduler — the paper's Section VI, live.

Walks through the scheduler's three layers with direct measurements:

1. a single Dispatcher/Merger pair (Algorithms VI.1/VI.2) balancing a
   stream across unequal consumers;
2. the butterfly balancer smoothing a hot output (the 100-vs-4 pkt/s
   example of Figure 7b);
3. Theorem VI.1's buffer bound: bubble ratio vs FIFO depth under
   delayed feedback, then the same effect on the full accelerator.

Run:  python examples/scheduler_anatomy.py
"""

from repro.core import ButterflyBalancer, Dispatcher, RidgeWalker, RidgeWalkerConfig
from repro.graph import load_dataset
from repro.memory.spec import HBM2_U55C
from repro.queueing import depth_sweep, minimum_depth_per_pipeline
from repro.sim import SimulationKernel
from repro.walks import URWSpec, make_queries


def dispatcher_demo() -> None:
    print("== 1. Dispatcher (Algorithm VI.1) ==")
    kernel = SimulationKernel()
    src = kernel.make_fifo(64, "src")
    fast = kernel.make_fifo(4, "fast")
    slow = kernel.make_fifo(4, "slow")
    dispatcher = Dispatcher("d", src, fast, slow)
    kernel.add_module(dispatcher)
    sent = 0
    for cycle in range(400):
        if not src.is_full():
            src.push(sent)
            sent += 1
        # fast consumer drains every cycle, slow one every 8th
        if not fast.is_empty():
            fast.pop()
        if cycle % 8 == 0 and not slow.is_empty():
            slow.pop()
        kernel.step()
    print(f"  routed to fast/slow: {dispatcher.sent[0]}/{dispatcher.sent[1]} "
          f"(backpressure-aware, no stall on the slow side)\n")


def butterfly_demo() -> None:
    print("== 2. Butterfly balancer (Figure 7b) ==")
    kernel = SimulationKernel()
    ins = [kernel.make_fifo(16, f"in{i}") for i in range(4)]
    outs = [kernel.make_fifo(4, f"out{i}") for i in range(4)]
    ButterflyBalancer(kernel, "bal", ins, outs)
    pushed = 0
    drained = [0, 0, 0, 0]
    for cycle in range(600):
        for f in ins:
            if not f.is_full():
                f.push(pushed)
                pushed += 1
        for k, out in enumerate(outs):
            # output 2 is throttled to 1/8 rate (the "4 pkt/s" channel)
            if k == 2 and cycle % 8 != 0:
                continue
            if not out.is_empty():
                out.pop()
                drained[k] += 1
        kernel.step()
    print(f"  delivered per output: {drained}")
    print("  the throttled output receives less; the others stay at line rate\n")


def theorem_demo() -> None:
    print("== 3. Theorem VI.1: depth vs bubbles (N=16, C=16) ==")
    theorem = minimum_depth_per_pipeline(16)
    sweep = depth_sweep(num_servers=16, feedback_delay=16,
                        depths=[1, 4, 8, theorem, 2 * theorem], cycles=6000)
    for depth, bubbles in sweep.items():
        marker = " <- theorem depth" if depth == theorem else ""
        print(f"  depth {depth:3d}: bubble ratio {bubbles * 100:5.2f}%{marker}")
    print()


def accelerator_demo() -> None:
    print("== 4. Latency hiding on the full accelerator ==")
    print("  (the asynchronous engine's outstanding window vs throughput)")
    graph = load_dataset("AS", scale=0.2, seed=1)
    queries = make_queries(graph, 256, seed=2)
    for outstanding in (1, 8, 128):
        config = RidgeWalkerConfig(
            num_pipelines=8, memory=HBM2_U55C, engine_outstanding=outstanding
        )
        metrics = RidgeWalker(graph, URWSpec(max_length=80), config, seed=3).run_streaming(
            queries, warmup_cycles=2000, measure_cycles=6000
        )
        print(f"  outstanding={outstanding:3d}: {metrics.msteps_per_second():7.1f} MStep/s, "
              f"bubbles {metrics.bubble_ratio() * 100:4.1f}%")


def main() -> None:
    dispatcher_demo()
    butterfly_demo()
    theorem_demo()
    accelerator_demo()


if __name__ == "__main__":
    main()
