"""Personalized PageRank via Monte-Carlo walks.

The use case from the paper's introduction: PPR powers recommendation
and graph databases, and GRW sampling is its scalable estimator.  This
example personalizes on one vertex of a citation-network stand-in, runs
the walks — by default on the vectorized batch engine, the
high-throughput serving path; ``--engine sim`` uses the cycle-level
accelerator model — and compares the Monte-Carlo estimate against an
exact power-iteration solution of the same PPR system, demonstrating
end-to-end statistical correctness, not just throughput.

Run:  python examples/ppr_ranking.py [--engine {batch,parallel,reference,sim}]
"""

import argparse

import numpy as np

from common import add_engine_arguments, run_with_engine
from repro.graph import load_dataset
from repro.walks import PPRSpec, Query, estimate_ppr

ALPHA = 0.2
NUM_WALKS = 3000


def exact_ppr(graph, source: int, alpha: float, iterations: int = 200) -> np.ndarray:
    """Power iteration on the walk-termination PPR formulation.

    Matches the Monte-Carlo walker's semantics exactly (Algorithm II.1):
    the walk always attempts a first hop; *after* each hop it terminates
    with probability ``alpha``; a dangling arrival absorbs outright.
    ``scores[v]`` is then the probability the walk's endpoint is ``v``.
    """
    n = graph.num_vertices
    degrees = graph.degrees()
    scores = np.zeros(n)
    frontier = np.zeros(n)
    frontier[source] = 1.0
    if degrees[source] == 0:
        scores[source] = 1.0
        return scores
    for _ in range(iterations):
        arrived = np.zeros(n)
        for v in np.nonzero(frontier > 1e-12)[0]:
            share = frontier[v] / degrees[v]
            for u in graph.neighbors(v):
                arrived[u] += share
        dangling = degrees == 0
        scores[dangling] += arrived[dangling]
        live = arrived.copy()
        live[dangling] = 0.0
        scores += alpha * live
        frontier = (1.0 - alpha) * live
        if frontier.sum() < 1e-9:
            break
    return scores / scores.sum()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_engine_arguments(parser)
    args = parser.parse_args()

    graph = load_dataset("CP", scale=0.2, seed=1)
    source = int(np.argmax(graph.degrees()))  # personalize on a hub
    print(f"graph: {graph}; personalization vertex: {source}")

    spec = PPRSpec(alpha=ALPHA, max_length=200)
    queries = [Query(i, source) for i in range(NUM_WALKS)]
    results = run_with_engine(args.engine, graph, spec, queries, seed=7,
                              workers=args.workers, sampler=args.sampler,
                              backend=args.backend)

    estimated = estimate_ppr(results, graph.num_vertices)
    exact = exact_ppr(graph, source, ALPHA)

    top_exact = np.argsort(exact)[::-1][:10]
    print("\nrank | vertex | exact PPR | Monte-Carlo estimate")
    for rank, v in enumerate(top_exact, start=1):
        print(f"{rank:4d} | {v:6d} | {exact[v]:.4f}    | {estimated[v]:.4f}")

    # Quantitative agreement on the top set.
    top_est = set(np.argsort(estimated)[::-1][:10])
    overlap = len(top_est & set(int(v) for v in top_exact))
    l1 = float(np.abs(estimated - exact).sum())
    print(f"\ntop-10 overlap: {overlap}/10, L1 distance: {l1:.3f}")


if __name__ == "__main__":
    main()
