"""Command-line interface: ``python -m repro <command>``.

Eight commands cover the workflows a downstream user reaches for first:

* ``walk`` — run a GRW workload on the simulated accelerator and print
  throughput/utilization (optionally from a graph file);
* ``serve-bench`` — drive the async walk service with an open-loop
  (Poisson or saturation) request workload and print serving metrics;
* ``mutate-bench`` — stream an update trace into a dynamic graph and
  print incremental-maintenance throughput, compaction cost, and
  walk-throughput retention vs a static rebuild;
* ``trace`` — run one of the three commands above with span tracing
  enabled and export the recorded spans as Perfetto-loadable Chrome
  ``trace_event`` JSON or a JSONL event log (``repro.obs``);
* ``metrics`` — run one of the three commands above and export the
  metrics it fed into the global registry as Prometheus text;
* ``lint`` — statically check the determinism & resource-safety
  invariants (seeded streams, shared-memory lifecycles, non-blocking
  serve path, ordered outputs) over a source tree; the CI gate;
* ``experiment`` — regenerate one of the paper's tables/figures by id
  (the same registry the benchmark suite uses);
* ``info`` — list datasets, algorithms, devices and experiment ids.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.workloads import make_spec
from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.engines import ENGINES, hops_per_second, run_software_walks
from repro.sampling.hybrid import SAMPLER_MODES
from repro.errors import ReproError, WalkConfigError
from repro.graph import dataset_names, load_dataset, load_edge_list, load_npz
from repro.graph.datasets import assign_metapath_schema
from repro.parallel import WORKER_BACKENDS
from repro.resources import DEVICE_CATALOG, get_device
from repro.sampling.base import derive_seed, normalize_seed
from repro.serve.workload import SCENARIOS
from repro.sim import UtilizationTracer, render_dashboard
from repro.walks import EngineStats, make_queries

ALGORITHMS = ("URW", "PPR", "DeepWalk", "Node2Vec", "Node2Vec-reservoir", "MetaPath")

#: ``walk`` options that only affect the accelerator model, as
#: ``(flag, dest, default)``.  Keep in sync with ``build_parser`` — any
#: sim-only option added there must be listed here so the software
#: engines reject it instead of silently ignoring it.
SIM_ONLY_WALK_OPTIONS = (
    ("--streaming", "streaming", False),
    ("--trace", "trace", False),
    ("--pipelines", "pipelines", None),
    ("--device", "device", None),
)

#: ``walk`` options that only one software engine understands, as
#: ``(flag, dest, default, engine)``; the registry rejects misdirected
#: options too, but checking here fails before a large graph loads.
ENGINE_ONLY_WALK_OPTIONS = (
    ("--workers", "workers", None, "parallel"),
    ("--backend", "backend", None, "parallel"),
    ("--shards", "shards", None, "dist"),
)

#: Commands the ``trace`` / ``metrics`` observability wrappers can run.
#: They re-dispatch through :func:`build_parser`, so the wrapped command
#: accepts exactly its normal flags.
WRAPPABLE_COMMANDS = ("walk", "serve-bench", "mutate-bench")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RidgeWalker reproduction: graph random walks on a "
        "cycle-level FPGA accelerator simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    walk = sub.add_parser("walk", help="run a GRW workload on the accelerator")
    walk.add_argument("--algorithm", choices=ALGORITHMS, default="URW")
    walk.add_argument("--engine", choices=ENGINES, default="sim",
                      help="execution engine: 'sim' = cycle-level accelerator "
                      "model, 'batch' = vectorized software frontier engine, "
                      "'jit' = numba-compiled fused per-walker kernels "
                      "(bit-identical to batch; falls back to batch with a "
                      "warning when numba is absent), "
                      "'parallel' = sharded multicore batch engine, "
                      "'dist' = distributed graph-partitioned engine with "
                      "walker forwarding, "
                      "'reference' = pure-Python oracle loop")
    walk.add_argument("--workers", type=int, default=None,
                      help="worker processes (parallel engine only; "
                      "default: all cores)")
    walk.add_argument("--backend", choices=WORKER_BACKENDS, default=None,
                      help="per-worker shard core (parallel engine only): "
                      "'batch' supersteps or 'jit' fused kernels")
    walk.add_argument("--shards", type=int, default=None,
                      help="graph partitions / shard workers (dist engine "
                      "only; default: all cores)")
    walk.add_argument("--sampler", choices=SAMPLER_MODES, default="default",
                      help="sampling backend (software engines only): "
                      "'default' = the algorithm's single-strategy sampler, "
                      "'auto' = cost-model-driven per-row hybrid "
                      "(alias / ITS flat-CDF / rejection / uniform)")
    walk.add_argument(
        "--dataset", default="WG",
        help=f"Table II dataset ({', '.join(dataset_names())}) or a path to "
        "a .npz / edge-list graph file",
    )
    walk.add_argument("--device", choices=sorted(DEVICE_CATALOG), default=None,
                      help="accelerator device (default U55C; sim engine only)")
    walk.add_argument("--pipelines", type=int, default=None,
                      help="asynchronous pipelines (default: device maximum)")
    walk.add_argument("--queries", type=int, default=512)
    walk.add_argument("--length", type=int, default=80)
    walk.add_argument("--seed", type=int, default=1)
    walk.add_argument("--scale", type=float, default=1.0,
                      help="dataset scale multiplier")
    walk.add_argument("--streaming", action="store_true",
                      help="measure steady-state throughput (paper methodology) "
                      "instead of running the batch to completion")
    walk.add_argument("--trace", action="store_true",
                      help="print per-pipeline utilization timelines "
                      "(streaming mode only)")

    serve = sub.add_parser(
        "serve-bench",
        help="drive the async walk service with an open-loop workload",
        description="Serve individual walk requests through the micro-batching "
        "walk service (repro.serve) under an open-loop arrival process and "
        "report latency percentiles, micro-batch shape, and sustained "
        "throughput.",
    )
    serve.add_argument("--algorithm", choices=ALGORITHMS, default="DeepWalk")
    serve.add_argument("--engine",
                       choices=("batch", "jit", "parallel", "dist", "reference"),
                       default="batch",
                       help="execution engine behind the service (default batch)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes (parallel engine only)")
    serve.add_argument("--shards", type=int, default=None,
                       help="graph partitions (dist engine only)")
    serve.add_argument("--sampler", choices=SAMPLER_MODES, default="auto",
                       help="sampling backend behind the service (default "
                       "auto: per-row hybrid strategy selection)")
    serve.add_argument("--dataset", default="WG",
                       help=f"Table II dataset ({', '.join(dataset_names())}) or "
                       "a path to a .npz / edge-list graph file")
    serve.add_argument("--requests", type=int, default=2000,
                       help="open-loop requests to offer")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="Poisson arrival rate in requests/sec; <= 0 means "
                       "back-to-back saturation arrivals (default)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batch flush size")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch flush deadline after first request")
    serve.add_argument("--depth", type=int, default=None,
                       help="admission high-water (outstanding requests); "
                       "default: large enough to never shed this workload — "
                       "size real deployments with "
                       "repro.serve.recommended_queue_depth")
    serve.add_argument("--length", type=int, default=80)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--scale", type=float, default=1.0,
                       help="dataset scale multiplier")
    serve.add_argument("--tenants", type=int, default=0,
                       help="declare N tenant admission classes (tenant 0 "
                       "'premium' at weight 8, the rest best-effort at "
                       "weight 1) and drive them concurrently; 0 (default) "
                       "runs the single anonymous class")
    serve.add_argument("--scenario", choices=SCENARIOS, default="steady",
                       help="arrival/start shape for the last (stressor) "
                       "tenant — or for the whole stream without --tenants; "
                       "other tenants stay steady Poisson (default steady)")
    serve.add_argument("--cache", action="store_true",
                       help="attach a hot-walk cache and submit via the "
                       "query-id-independent cached path; responses stay "
                       "bit-identical to offline replay of the ids they carry")

    mutate = sub.add_parser(
        "mutate-bench",
        help="stream graph updates and measure incremental maintenance",
        description="Drive a streamed update trace (grow-only, sliding-window "
        "or weight-churn over an RMAT graph) into a dynamic graph "
        "(repro.dynamic), publishing an epoch snapshot per batch, and report "
        "updates/sec, compaction cost, the speedup of incremental sampler "
        "maintenance over from-scratch rebuilds, and walk-throughput "
        "retention on the final snapshot.",
    )
    mutate.add_argument("--trace", choices=("grow", "window", "churn"),
                        default="window",
                        help="update pattern (default: sliding window)")
    mutate.add_argument("--algorithm", choices=ALGORITHMS, default="DeepWalk")
    mutate.add_argument("--scale", type=int, default=12,
                        help="RMAT scale (2**scale vertices)")
    mutate.add_argument("--edge-factor", type=int, default=8)
    mutate.add_argument("--batch-size", type=int, default=1000,
                        help="edge operations per update batch")
    mutate.add_argument("--batches", type=int, default=20,
                        help="update batches to stream")
    mutate.add_argument("--unweighted", action="store_true",
                        help="drop edge weights (grow/window traces only)")
    mutate.add_argument("--queries", type=int, default=512,
                        help="walk queries for the retention measurement")
    mutate.add_argument("--length", type=int, default=80)
    mutate.add_argument("--seed", type=int, default=1)
    mutate.add_argument("--compaction-threshold", type=float, default=0.25,
                        help="fold deltas into a fresh CSR base once they "
                        "exceed this fraction of base edges")

    trace = sub.add_parser(
        "trace",
        help="run a command with span tracing enabled and export the trace",
        description="Enable the repro.obs span tracer around one wrapped "
        "command (walk, serve-bench or mutate-bench), then export the "
        "recorded spans as Perfetto-loadable Chrome trace_event JSON "
        "(load the file at https://ui.perfetto.dev or chrome://tracing) "
        "or as a JSONL event log with metric totals appended.  Tracing "
        "is off everywhere else (pay for what you use), and a traced "
        "run's walk paths are bit-identical to an untraced run's.",
    )
    trace.add_argument("--out", default="trace.json",
                       help="output path (default trace.json)")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome", dest="trace_format",
                       help="chrome = trace_event JSON for Perfetto; "
                       "jsonl = one JSON record per span plus metric "
                       "totals (default chrome)")
    trace.add_argument("--capacity", type=int, default=None,
                       help="span ring-buffer capacity (default 65536); "
                       "on overflow the oldest spans are dropped and the "
                       "drop count reported")
    trace.add_argument("wrapped", choices=WRAPPABLE_COMMANDS,
                       metavar="command",
                       help=f"command to run traced: "
                       f"{', '.join(WRAPPABLE_COMMANDS)}")
    trace.add_argument("rest", nargs=argparse.REMAINDER, metavar="args",
                       help="arguments forwarded to the wrapped command")

    metrics = sub.add_parser(
        "metrics",
        help="run a command and export its metrics as Prometheus text",
        description="Reset the global repro.obs metrics registry, run one "
        "wrapped command (walk, serve-bench or mutate-bench), and export "
        "every counter, gauge and histogram the run fed — engine hop and "
        "termination counters, per-tenant serve ledgers, cache and "
        "dynamic-graph accounting — in Prometheus text exposition format.",
    )
    metrics.add_argument("--out", default=None,
                         help="output path (default: print to stdout)")
    metrics.add_argument("wrapped", choices=WRAPPABLE_COMMANDS,
                         metavar="command",
                         help=f"command to run: "
                         f"{', '.join(WRAPPABLE_COMMANDS)}")
    metrics.add_argument("rest", nargs=argparse.REMAINDER, metavar="args",
                         help="arguments forwarded to the wrapped command")

    lint = sub.add_parser(
        "lint",
        help="statically check determinism & resource-safety invariants",
        description="AST-based static analysis enforcing the repository's "
        "determinism contract (README.md): SeedSequence-rooted RNG streams "
        "(RW101/RW102), shared-memory segment lifecycles (RW103), a "
        "non-blocking asyncio serve path (RW104), no set-ordered "
        "outputs (RW105), disk-cached numba kernels (RW106), and "
        "monotonic-clock duration measurement (RW107). "
        "Exits 1 if any unsuppressed finding remains; "
        "suppress with `# repro: allow[RW###] <reason>`.",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                      "installed repro package source)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="output_format",
                      help="report format (default text)")
    lint.add_argument("--select", default=None, metavar="RW###,RW###",
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="ignore findings fingerprinted in this baseline "
                      "file (adopt-then-ratchet workflow)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current unsuppressed findings to "
                      "--baseline instead of failing on them")
    lint.add_argument("--verbose", action="store_true",
                      help="also list suppressed/baselined findings with "
                      "their recorded reasons")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS),
                            help="table/figure id (see DESIGN.md index)")

    sub.add_parser("info", help="list datasets, algorithms, devices, experiments")
    return parser


def _load_graph(args) -> object:
    weighted = args.algorithm in ("DeepWalk", "Node2Vec-reservoir", "MetaPath")
    if args.dataset in dataset_names():
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                             weighted=weighted)
    elif args.dataset.endswith(".npz"):
        graph = load_npz(args.dataset)
    else:
        graph = load_edge_list(args.dataset)
    if args.algorithm == "MetaPath" and not graph.has_edge_types:
        graph = assign_metapath_schema(graph, num_types=3, seed=args.seed)
    return graph


def _run_software_engine(args, graph, spec, queries) -> int:
    """Run the pure-software walk engines and report wall-clock throughput."""
    from repro.obs.metrics import engine_stats_into, global_registry

    stats = EngineStats()
    results, elapsed = run_software_walks(
        args.engine, graph, spec, queries, seed=derive_seed(args.seed, "engine"), stats=stats,
        workers=args.workers, sampler=args.sampler, backend=args.backend,
        shards=args.shards,
    )
    # Feed the full per-run EngineStats ledger so `repro metrics walk ...`
    # exports hop/proposal/termination counters, not just run totals.
    engine_stats_into(global_registry(), stats, engine=args.engine)
    print(f"\n{args.engine} engine: {stats.total_hops} hops in {elapsed:.3f}s "
          f"({hops_per_second(stats.total_hops, elapsed):,.0f} hops/s)")
    print(f"terminations: {stats.length_terminations} length, "
          f"{stats.dangling_terminations} dangling, "
          f"{stats.early_terminations} early, "
          f"{stats.probabilistic_terminations} probabilistic")
    print(f"sampling: {stats.sampling_proposals} proposals, "
          f"{stats.neighbor_reads} neighbor reads, "
          f"imbalance {stats.imbalance_ratio():.2f}")
    lengths = results.lengths()
    print(f"walk lengths: mean {lengths.mean():.1f}, min {lengths.min()}, "
          f"max {lengths.max()}")
    return 0


def cmd_walk(args) -> int:
    # Dataset generators and SeedSequence both reject negative entropy;
    # masking keeps any int seed working (identity for seed >= 0).
    args.seed = normalize_seed(args.seed)
    if args.engine != "sim":
        # Fail fast, before loading a potentially large graph.
        for flag, dest, default in SIM_ONLY_WALK_OPTIONS:
            if getattr(args, dest) != default:
                raise WalkConfigError(
                    f"{flag} only applies to the accelerator model; drop it or "
                    f"use --engine sim"
                )
    for flag, dest, default, engine in ENGINE_ONLY_WALK_OPTIONS:
        if getattr(args, dest) != default and args.engine != engine:
            raise WalkConfigError(
                f"{flag} only applies to the {engine} engine; drop it or "
                f"use --engine {engine}"
            )
    if args.engine == "sim" and args.sampler != "default":
        raise WalkConfigError(
            "--sampler only applies to the software engines; the accelerator "
            "model fixes its sampling datapath per algorithm (Table I)"
        )

    graph = _load_graph(args)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, args.queries, seed=derive_seed(args.seed, "queries"))

    if args.engine != "sim":
        print(f"graph: {graph}")
        print(f"workload: {args.algorithm}, {args.queries} queries, length {args.length}")
        return _run_software_engine(args, graph, spec, queries)

    device = get_device(args.device or "U55C")
    pipelines = args.pipelines or device.max_pipelines
    config = RidgeWalkerConfig(num_pipelines=pipelines, memory=device.memory)
    engine = RidgeWalker(graph, spec, config, seed=derive_seed(args.seed, "engine"))

    print(f"graph: {graph}")
    print(f"device: {device.name} ({device.memory.name}, {pipelines} pipelines)")
    print(f"workload: {args.algorithm}, {args.queries} queries, length {args.length}")

    if args.streaming:
        tracer = UtilizationTracer(window=128) if args.trace else None
        metrics = engine.run_streaming(queries, tracer=tracer)
        print(f"\nsteady state: {metrics.msteps_per_second():.1f} MStep/s, "
              f"{metrics.effective_bandwidth_gbs():.2f} GB/s "
              f"({metrics.bandwidth_utilization() * 100:.0f}% of Eq.(1) peak), "
              f"bubbles {metrics.bubble_ratio() * 100:.1f}%")
        if tracer is not None:
            print("\nper-window activity (sampling stages) and scheduler FIFO fill:")
            print(render_dashboard(tracer))
    else:
        run = engine.run(queries)
        print(f"\n{run.metrics.summary()}")
        lengths = run.results.lengths()
        print(f"walk lengths: mean {lengths.mean():.1f}, min {lengths.min()}, "
              f"max {lengths.max()}")
    return 0


def cmd_serve_bench(args) -> int:
    """Open-loop serving benchmark: one service, one arrival schedule."""
    import asyncio

    import numpy as np

    from repro.obs.metrics import global_registry
    from repro.serve import (
        HotWalkCache,
        ServeConfig,
        TenantSpec,
        TenantTrace,
        WalkService,
        hub_hammer_starts,
        replay_paths,
        run_tenant_traces,
        scenario_gaps,
        serve_open_loop,
    )

    args.seed = normalize_seed(args.seed)
    if args.workers is not None and args.engine != "parallel":
        raise WalkConfigError(
            "--workers only applies to the parallel engine; drop it or use "
            "--engine parallel"
        )
    if args.shards is not None and args.engine != "dist":
        raise WalkConfigError(
            "--shards only applies to the dist engine; drop it or use "
            "--engine dist"
        )
    if args.tenants < 0:
        raise WalkConfigError(f"--tenants must be >= 0, got {args.tenants}")
    graph = _load_graph(args)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    queries = make_queries(graph, args.requests, seed=derive_seed(args.seed, "queries"))
    starts = np.fromiter((q.start_vertex for q in queries), dtype=np.int64,
                         count=len(queries))
    # The CLI default never sheds: sizing a real deployment's depth is
    # recommended_queue_depth's job, and it needs a measured service rate.
    depth = args.depth or max(2 * args.max_batch, args.requests)
    config = ServeConfig(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                         queue_depth=depth)

    print(f"graph: {graph}")
    print(f"workload: {args.algorithm}, {args.requests} requests, "
          f"length {args.length}, scenario {args.scenario}, "
          + (f"Poisson {args.rate:,.0f} req/s" if args.rate > 0
             else "saturation arrivals"))
    print(f"service: engine={args.engine}, sampler={args.sampler}, "
          f"max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms, "
          f"depth={depth}"
          + (f", tenants={args.tenants}" if args.tenants else "")
          + (", cache" if args.cache else ""))

    engine_options = {"workers": args.workers} if args.engine == "parallel" else {}
    if args.engine == "dist":
        engine_options["shards"] = args.shards
    engine_options["sampler"] = args.sampler
    engine_seed = derive_seed(args.seed, "engine")

    if not args.tenants and args.scenario == "steady" and not args.cache:
        # The plain single-stream path, unchanged.
        report, service = serve_open_loop(
            lambda: WalkService(graph, spec, engine=args.engine,
                                seed=engine_seed, config=config,
                                **engine_options),
            starts,
            rate_per_second=args.rate,
            arrival_seed=derive_seed(args.seed, "arrivals"),
        )
        service.snapshot_metrics(global_registry())
        print()
        print(service.stats.summary())
        if report.dropped:
            print(f"shed request ids (first 10): {report.dropped[:10]}")
        return 0

    # Tenant / scenario / cache path: one trace per tenant class, driven
    # concurrently; the last tenant is the stressor running --scenario.
    tenant_specs = None
    if args.tenants:
        tenant_specs = [TenantSpec("premium", weight=8, queue_depth=depth)]
        for i in range(1, args.tenants):
            name = "besteffort" if args.tenants == 2 else f"besteffort-{i}"
            tenant_specs.append(TenantSpec(name, weight=1, queue_depth=depth))
    names = [s.name for s in tenant_specs] if tenant_specs else [None]
    per_tenant = max(1, args.requests // len(names))
    traces = []
    for i, name in enumerate(names):
        stressor = i == len(names) - 1
        scenario = args.scenario if stressor else "steady"
        tenant_starts = starts[i * per_tenant:(i + 1) * per_tenant]
        if tenant_starts.size < per_tenant:
            tenant_starts = starts[:per_tenant]
        if scenario == "hub-hammer":
            tenant_starts = hub_hammer_starts(
                graph, per_tenant, seed=derive_seed(args.seed, "hubs", i)
            )
        gaps = scenario_gaps(scenario, per_tenant, args.rate,
                             seed=derive_seed(args.seed, "arrivals", i))
        traces.append(TenantTrace(name or "default", tenant_starts, gaps,
                                  use_cache=args.cache))

    async def _drive():
        cache = HotWalkCache() if args.cache else None
        service = WalkService(graph, spec, engine=args.engine,
                              seed=engine_seed, config=config,
                              tenants=tenant_specs, cache=cache,
                              **engine_options)
        async with service:
            reports = await run_tenant_traces(service, traces)
        return reports, service

    reports, service = asyncio.run(_drive())
    service.snapshot_metrics(global_registry())
    print()
    print(service.stats.summary())
    for name, report in reports.items():
        report.check_identity()
        tenant_stats = service.tenant_stats.get(name)
        line = (f"tenant {name}: {report.completed} completed, "
                f"{len(report.dropped)} shed, {len(report.failed)} failed")
        if tenant_stats is not None:
            p99 = tenant_stats.latency_percentiles()["p99"]
            if np.isfinite(p99):
                line += f", p99 {p99 * 1e3:.2f}ms"
        if report.cache_hits:
            line += f", {len(report.cache_hits)} cache hits"
        print(line)
    if service.cache is not None:
        print(f"cache: {service.cache.snapshot()}")
    # Every completed path — cache hits included — must replay
    # bit-identically offline; the CLI run is its own determinism check.
    all_requests: dict[int, int] = {}
    all_paths: dict[int, np.ndarray] = {}
    for report in reports.values():
        all_requests.update(report.requests)
        all_paths.update(report.paths)
    oracle = replay_paths(graph, spec, all_requests, seed=engine_seed,
                          sampler=args.sampler)
    mismatched = [qid for qid, path in all_paths.items()
                  if not np.array_equal(path, oracle[qid])]
    if mismatched:
        print(f"error: {len(mismatched)} served paths diverge from offline "
              f"replay (first ids: {sorted(mismatched)[:5]})", file=sys.stderr)
        return 1
    print(f"replay identity: {len(all_paths)} served paths bit-identical "
          f"to offline replay")
    return 0


def cmd_mutate_bench(args) -> int:
    """Streamed-update benchmark: one dynamic graph, one update trace."""
    from repro.dynamic import make_trace, run_mutate_bench

    args.seed = normalize_seed(args.seed)
    if args.algorithm == "MetaPath":
        raise WalkConfigError(
            "the dynamic subsystem does not support edge-typed graphs; "
            "pick a non-MetaPath algorithm"
        )
    if args.unweighted and args.trace == "churn":
        raise WalkConfigError("the weight-churn trace requires edge weights")
    kwargs = dict(
        edge_factor=args.edge_factor,
        batch_size=args.batch_size,
        num_batches=args.batches,
        seed=args.seed,
    )
    if args.trace != "churn":
        kwargs["weighted"] = not args.unweighted
    trace = make_trace(args.trace, args.scale, **kwargs)
    spec = make_spec(args.algorithm)
    spec.max_length = args.length

    print(f"trace: {trace.name} ({len(trace.batches)} batches of "
          f"~{args.batch_size} ops; base |V|={trace.num_vertices}, "
          f"|E|={trace.base_edges.shape[0]})")
    print(f"workload: {args.algorithm}, {args.queries} retention queries, "
          f"length {args.length}")
    report = run_mutate_bench(
        trace, spec,
        seed=args.seed,
        walk_queries=args.queries,
        compaction_threshold=args.compaction_threshold,
    )
    print()
    print(report.summary())
    if not report.snapshot_equivalent:
        print("error: snapshot diverged from a from-scratch build",
              file=sys.stderr)
        return 1
    return 0


def _run_wrapped(command: str, rest: list[str]) -> int:
    """Re-dispatch one wrapped subcommand through the normal parser.

    ``rest`` comes from ``argparse.REMAINDER``; a leading ``--``
    separator (the conventional way to stop the wrapper from eating the
    wrapped command's flags) is stripped.
    """
    if rest and rest[0] == "--":
        rest = rest[1:]
    args = build_parser().parse_args([command, *rest])
    return COMMAND_HANDLERS[args.command](args)


def cmd_trace(args) -> int:
    """Run a wrapped command traced; export Chrome trace JSON or JSONL."""
    from repro.obs import (
        disable_tracing,
        enable_tracing,
        global_registry,
        write_chrome_trace,
        write_jsonl,
    )

    # enable_tracing may replace the global tracer when resizing, so the
    # instance it returns — not a pre-captured one — is the export source.
    tracer = enable_tracing(capacity=args.capacity)
    tracer.clear()
    try:
        rc = _run_wrapped(args.wrapped, args.rest)
    finally:
        disable_tracing()
    events = tracer.events()
    if args.trace_format == "chrome":
        write_chrome_trace(args.out, events)
    else:
        write_jsonl(args.out, events, registry=global_registry(),
                    meta={"command": [args.wrapped, *args.rest],
                          "tracer": tracer.snapshot()})
    print(f"\ntrace: {len(events)} events buffered "
          f"({tracer.dropped} dropped) -> {args.out} [{args.trace_format}]")
    return rc


def cmd_metrics(args) -> int:
    """Run a wrapped command; export the global registry as Prometheus."""
    from repro.obs import (
        global_registry,
        render_prometheus,
        reset_global_registry,
        write_prometheus,
    )

    reset_global_registry()
    rc = _run_wrapped(args.wrapped, args.rest)
    registry = global_registry()
    if args.out:
        count = write_prometheus(args.out, registry)
        print(f"\nmetrics: {count} samples across {len(registry)} "
              f"metrics -> {args.out}")
    else:
        print()
        sys.stdout.write(render_prometheus(registry))
    return rc


def cmd_lint(args) -> int:
    """Static determinism & resource-safety analysis (the CI gate)."""
    from pathlib import Path

    import repro
    from repro.analysis import (
        all_rules, lint_paths, load_baseline, render_json, render_text,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"       {rule.description}")
        return 0
    paths = args.paths or [Path(repro.__file__).resolve().parent]
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select else None
    )
    if args.write_baseline and not args.baseline:
        raise WalkConfigError("--write-baseline requires --baseline FILE")
    baseline = None
    if args.baseline and not args.write_baseline:
        baseline = load_baseline(args.baseline)
    report = lint_paths(paths, select=select, baseline=baseline)
    if args.write_baseline:
        count = write_baseline(args.baseline, report)
        print(f"baseline: recorded {count} finding(s) in {args.baseline}")
        return 0
    if args.output_format == "json":
        sys.stdout.write(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code


def cmd_experiment(args) -> int:
    result = EXPERIMENTS[args.id]()
    print(result.to_table())
    return 0


def cmd_info(args) -> int:
    print("datasets:   ", ", ".join(dataset_names()))
    print("algorithms: ", ", ".join(ALGORITHMS))
    print("devices:    ", ", ".join(sorted(DEVICE_CATALOG)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    return 0


#: Dispatch table shared by ``main`` and the trace/metrics wrappers.
COMMAND_HANDLERS = {
    "walk": cmd_walk,
    "serve-bench": cmd_serve_bench,
    "mutate-bench": cmd_mutate_bench,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "lint": cmd_lint,
    "experiment": cmd_experiment,
    "info": cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMAND_HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
