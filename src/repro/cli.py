"""Command-line interface: ``python -m repro <command>``.

Three commands cover the workflows a downstream user reaches for first:

* ``walk`` — run a GRW workload on the simulated accelerator and print
  throughput/utilization (optionally from a graph file);
* ``experiment`` — regenerate one of the paper's tables/figures by id
  (the same registry the benchmark suite uses);
* ``info`` — list datasets, algorithms, devices and experiment ids.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.workloads import make_spec
from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.errors import ReproError
from repro.graph import dataset_names, load_dataset, load_edge_list, load_npz
from repro.graph.datasets import assign_metapath_schema
from repro.resources import DEVICE_CATALOG, get_device
from repro.sim import UtilizationTracer, render_dashboard
from repro.walks import make_queries

ALGORITHMS = ("URW", "PPR", "DeepWalk", "Node2Vec", "Node2Vec-reservoir", "MetaPath")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RidgeWalker reproduction: graph random walks on a "
        "cycle-level FPGA accelerator simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    walk = sub.add_parser("walk", help="run a GRW workload on the accelerator")
    walk.add_argument("--algorithm", choices=ALGORITHMS, default="URW")
    walk.add_argument(
        "--dataset", default="WG",
        help=f"Table II dataset ({', '.join(dataset_names())}) or a path to "
        "a .npz / edge-list graph file",
    )
    walk.add_argument("--device", choices=sorted(DEVICE_CATALOG), default="U55C")
    walk.add_argument("--pipelines", type=int, default=None,
                      help="asynchronous pipelines (default: device maximum)")
    walk.add_argument("--queries", type=int, default=512)
    walk.add_argument("--length", type=int, default=80)
    walk.add_argument("--seed", type=int, default=1)
    walk.add_argument("--scale", type=float, default=1.0,
                      help="dataset scale multiplier")
    walk.add_argument("--streaming", action="store_true",
                      help="measure steady-state throughput (paper methodology) "
                      "instead of running the batch to completion")
    walk.add_argument("--trace", action="store_true",
                      help="print per-pipeline utilization timelines "
                      "(streaming mode only)")

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS),
                            help="table/figure id (see DESIGN.md index)")

    sub.add_parser("info", help="list datasets, algorithms, devices, experiments")
    return parser


def _load_graph(args) -> object:
    weighted = args.algorithm in ("DeepWalk", "Node2Vec-reservoir", "MetaPath")
    if args.dataset in dataset_names():
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                             weighted=weighted)
    elif args.dataset.endswith(".npz"):
        graph = load_npz(args.dataset)
    else:
        graph = load_edge_list(args.dataset)
    if args.algorithm == "MetaPath" and not graph.has_edge_types:
        graph = assign_metapath_schema(graph, num_types=3, seed=args.seed)
    return graph


def cmd_walk(args) -> int:
    graph = _load_graph(args)
    device = get_device(args.device)
    pipelines = args.pipelines or device.max_pipelines
    spec = make_spec(args.algorithm)
    spec.max_length = args.length
    config = RidgeWalkerConfig(num_pipelines=pipelines, memory=device.memory)
    queries = make_queries(graph, args.queries, seed=args.seed + 1)
    engine = RidgeWalker(graph, spec, config, seed=args.seed + 2)

    print(f"graph: {graph}")
    print(f"device: {device.name} ({device.memory.name}, {pipelines} pipelines)")
    print(f"workload: {args.algorithm}, {args.queries} queries, length {args.length}")

    if args.streaming:
        tracer = UtilizationTracer(window=128) if args.trace else None
        metrics = engine.run_streaming(queries, tracer=tracer)
        print(f"\nsteady state: {metrics.msteps_per_second():.1f} MStep/s, "
              f"{metrics.effective_bandwidth_gbs():.2f} GB/s "
              f"({metrics.bandwidth_utilization() * 100:.0f}% of Eq.(1) peak), "
              f"bubbles {metrics.bubble_ratio() * 100:.1f}%")
        if tracer is not None:
            print("\nper-window activity (sampling stages) and scheduler FIFO fill:")
            print(render_dashboard(tracer))
    else:
        run = engine.run(queries)
        print(f"\n{run.metrics.summary()}")
        lengths = run.results.lengths()
        print(f"walk lengths: mean {lengths.mean():.1f}, min {lengths.min()}, "
              f"max {lengths.max()}")
    return 0


def cmd_experiment(args) -> int:
    result = EXPERIMENTS[args.id]()
    print(result.to_table())
    return 0


def cmd_info(args) -> int:
    print("datasets:   ", ", ".join(dataset_names()))
    print("algorithms: ", ", ".join(ALGORITHMS))
    print("devices:    ", ", ".join(sorted(DEVICE_CATALOG)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"walk": cmd_walk, "experiment": cmd_experiment, "info": cmd_info}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
