"""Benchmark harness: experiment registry, workloads, reporting."""

from repro.bench.experiments import (
    EXPERIMENTS,
    FIG9_BANDS,
    FIG10_CONFIGS,
    FIG11_VARIANTS,
    TABLE1_ROWS,
)
from repro.bench.reporting import ExperimentResult, geometric_mean, speedup
from repro.bench.workloads import (
    MEASURE_CYCLES,
    NUM_QUERIES,
    WALK_LENGTH,
    WARMUP_CYCLES,
    Workload,
    fast_mode,
    make_rmat_workload,
    make_spec,
    make_workload,
    run_ridgewalker_streaming,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "FIG10_CONFIGS",
    "FIG11_VARIANTS",
    "FIG9_BANDS",
    "MEASURE_CYCLES",
    "NUM_QUERIES",
    "TABLE1_ROWS",
    "WALK_LENGTH",
    "WARMUP_CYCLES",
    "Workload",
    "fast_mode",
    "geometric_mean",
    "make_rmat_workload",
    "make_spec",
    "make_workload",
    "run_ridgewalker_streaming",
    "speedup",
]
