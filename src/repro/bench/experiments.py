"""One experiment function per paper table/figure (the DESIGN.md index).

Every function returns an :class:`~repro.bench.reporting.ExperimentResult`
whose rows regenerate the corresponding artifact: same series, same
comparison axes.  The ``benchmarks/`` directory exposes each one as a
pytest-benchmark target and asserts the paper's qualitative shape.
"""

from __future__ import annotations

from repro.baselines import DEFAULT_CACHE_BYTES, FastRWModel, GPUModel, LightRWModel, SuModel
from repro.bench.reporting import ExperimentResult, speedup
from repro.bench.workloads import (
    Workload,
    graph_scale,
    make_rmat_workload,
    make_spec,
    make_workload,
    num_queries,
    run_ridgewalker_streaming,
)
from repro.graph import DATASET_ORDER, degree_statistics, estimate_diameter, get_spec
from repro.graph.datasets import load_dataset
from repro.memory.spec import (
    DDR4_U250,
    DDR4_VCK5000,
    HBM2_U50,
    HBM2_U280,
    HBM2_U55C,
)
from repro.queueing import depth_sweep, minimum_depth_per_pipeline
from repro.resources import ALVEO_U55C, SCHEDULER_STANDALONE_MHZ, scheduler_resources, table4_row
from repro.walks import make_queries

#: Table I rows (GRW, weighted?, sampling algorithm, RP entry bits).
TABLE1_ROWS = (
    ("URW", False, "uniform", 64),
    ("PPR", False, "uniform", 64),
    ("DeepWalk", True, "alias", 256),
    ("Node2Vec", False, "rejection", 64),
    ("Node2Vec-reservoir", True, "reservoir", 128),
    ("MetaPath", True, "reservoir", 128),
)


def _baseline_queries(workload: Workload, seed: int = 18):
    return make_queries(workload.graph, num_queries(), seed=seed)


def _fastrw_model(memory=HBM2_U50) -> FastRWModel:
    """FastRW with its on-chip cache scaled like the graphs, so the
    fits/spills boundary of Figure 3a survives fast mode."""
    return FastRWModel(
        memory=memory, cache_bytes=max(1024, int(DEFAULT_CACHE_BYTES * graph_scale()))
    )


# ---------------------------------------------------------------------------
# Motivation (Figure 3a)
# ---------------------------------------------------------------------------

def fig3a_motivation() -> ExperimentResult:
    """FastRW bandwidth collapse: WG (RP cached) vs LJ (RP spills)."""
    result = ExperimentResult(
        "fig3a", "FastRW effective bandwidth vs Equation (1) peak (DeepWalk)"
    )
    model = _fastrw_model()
    for dataset in ("WG", "LJ"):
        workload = make_workload(dataset, "DeepWalk")
        metrics = model.run(
            workload.graph, workload.spec, _baseline_queries(workload), seed=3
        )
        result.add_row(
            graph=dataset,
            effective_gbs=metrics.effective_bandwidth_gbs(),
            peak_gbs=model.memory.peak_random_bandwidth_gbs(),
            utilization=metrics.bandwidth_utilization(),
            cache_hit_rate=metrics.extra["cache_hit_rate"],
            rp_fits_cache=model.working_set_fits(workload.graph, workload.spec),
        )
    result.add_note(
        "Paper: 11.8 GB/s on WG vs 0.6 GB/s (2.3% of peak) on LJ — the "
        "cache cliff, not absolute numbers, is the claim under test."
    )
    return result


# ---------------------------------------------------------------------------
# FPGA comparisons (Figure 8)
# ---------------------------------------------------------------------------

def fig8a_fastrw() -> ExperimentResult:
    """DeepWalk vs FastRW on U50 (WG/CP/AS/LJ)."""
    result = ExperimentResult("fig8a", "DeepWalk throughput vs FastRW on U50")
    model = _fastrw_model(memory=HBM2_U50)
    for dataset in ("WG", "CP", "AS", "LJ"):
        workload = make_workload(dataset, "DeepWalk")
        ridge = run_ridgewalker_streaming(workload, memory=HBM2_U50, num_pipelines=16)
        fastrw = model.run(
            workload.graph, workload.spec, _baseline_queries(workload), seed=3
        )
        result.add_row(
            graph=dataset,
            fastrw_msteps=fastrw.msteps_per_second(),
            ridgewalker_msteps=ridge.msteps_per_second(),
            speedup=speedup(ridge.msteps_per_second(), fastrw.msteps_per_second()),
        )
    result.add_note("Paper speedups: WG 2.2x, CP 2.4x, AS 14.2x, LJ 71.0x (growing with size).")
    return result


def fig8b_su() -> ExperimentResult:
    """PPR and URW vs Su et al. on U280 (WG only, as in the paper)."""
    result = ExperimentResult("fig8b", "PPR/URW throughput vs Su et al. on U280")
    model = SuModel(memory=HBM2_U280)
    for algorithm in ("PPR", "URW"):
        workload = make_workload("WG", algorithm)
        ridge = run_ridgewalker_streaming(workload, memory=HBM2_U280, num_pipelines=16)
        su = model.run(workload.graph, workload.spec, _baseline_queries(workload), seed=3)
        result.add_row(
            algorithm=algorithm,
            su_msteps=su.msteps_per_second(),
            ridgewalker_msteps=ridge.msteps_per_second(),
            speedup=speedup(ridge.msteps_per_second(), su.msteps_per_second()),
        )
    result.add_note("Paper speedups: PPR 9.2x, URW 9.9x.")
    return result


def _fig8_lightrw(algorithm: str, experiment_id: str, title: str) -> ExperimentResult:
    result = ExperimentResult(experiment_id, title)
    model = LightRWModel(memory=DDR4_U250)
    for dataset in DATASET_ORDER:
        workload = make_workload(dataset, algorithm)
        ridge = run_ridgewalker_streaming(workload, memory=DDR4_U250, num_pipelines=2)
        light = model.run(
            workload.graph, workload.spec, _baseline_queries(workload), seed=3
        )
        result.add_row(
            graph=dataset,
            lightrw_msteps=light.msteps_per_second(),
            ridgewalker_msteps=ridge.msteps_per_second(),
            speedup=speedup(ridge.msteps_per_second(), light.msteps_per_second()),
            lightrw_bubbles=light.extra["bubble_ratio_slots"],
        )
    return result


def fig8c_lightrw_node2vec() -> ExperimentResult:
    """Node2Vec (reservoir) vs LightRW on U250, six graphs."""
    result = _fig8_lightrw(
        "Node2Vec-reservoir", "fig8c", "Node2Vec throughput vs LightRW on U250"
    )
    result.add_note("Paper speedups: 1.1x-1.5x across the six graphs.")
    return result


def fig8d_lightrw_metapath() -> ExperimentResult:
    """MetaPath vs LightRW on U250, six graphs."""
    result = _fig8_lightrw("MetaPath", "fig8d", "MetaPath throughput vs LightRW on U250")
    result.add_note(
        "Paper speedups: 1.3x-1.7x — larger than Node2Vec because typed "
        "walks terminate early and static schedules leave the slots empty."
    )
    return result


# ---------------------------------------------------------------------------
# GPU comparisons (Figures 9 and 10)
# ---------------------------------------------------------------------------

#: Figure 9's panels and the paper's reported speedup bands.
FIG9_BANDS = {
    "PPR": (8.8, 21.1),
    "URW": (3.1, 7.6),
    "DeepWalk": (8.7, 22.9),
    "Node2Vec": (1.28, 2.16),
}


def fig9_gpu(algorithms: tuple[str, ...] = ("PPR", "URW", "DeepWalk", "Node2Vec")) -> ExperimentResult:
    """RidgeWalker (U55C) vs gSampler (H100) on four GRWs, six graphs."""
    result = ExperimentResult("fig9", "Speedup over gSampler (H100), per algorithm")
    for algorithm in algorithms:
        for dataset in DATASET_ORDER:
            workload = make_workload(dataset, algorithm)
            gpu = GPUModel(
                regime="real",
                full_scale_bytes=get_spec(dataset).paper_size_bytes(),
            )
            ridge = run_ridgewalker_streaming(workload, memory=HBM2_U55C, num_pipelines=16)
            gsampler = gpu.run(
                workload.graph, workload.spec, _baseline_queries(workload), seed=3
            )
            result.add_row(
                algorithm=algorithm,
                graph=dataset,
                gsampler_msteps=gsampler.msteps_per_second(),
                ridgewalker_msteps=ridge.msteps_per_second(),
                speedup=speedup(
                    ridge.msteps_per_second(), gsampler.msteps_per_second()
                ),
                lockstep_efficiency=gsampler.extra["lockstep_efficiency"],
            )
    result.add_note(f"Paper speedup bands: {FIG9_BANDS}")
    return result


#: Figure 10's RMAT configurations.
FIG10_CONFIGS = (
    (16, 8),
    (16, 32),
    (24, 8),
    (24, 32),
)


def fig10_rmat() -> ExperimentResult:
    """DeepWalk on RMAT: balanced vs Graph500 initiators, vs gSampler."""
    result = ExperimentResult(
        "fig10", "RMAT balanced vs Graph500: gSampler (H100) vs RidgeWalker (U55C)"
    )
    gpu = GPUModel(regime="batch")
    for initiator in ("balanced", "graph500"):
        for scale, edge_factor in FIG10_CONFIGS:
            workload = make_rmat_workload(scale, edge_factor, initiator)
            ridge = run_ridgewalker_streaming(workload, memory=HBM2_U55C, num_pipelines=16)
            gsampler = gpu.run(
                workload.graph, workload.spec, _baseline_queries(workload), seed=3
            )
            result.add_row(
                config=f"SC{scale}-{edge_factor}",
                initiator=initiator,
                gsampler_msteps=gsampler.msteps_per_second(),
                ridgewalker_msteps=ridge.msteps_per_second(),
                gpu_peak_msteps=gsampler.extra["memory_bound_msteps"],
                lockstep_efficiency=gsampler.extra["lockstep_efficiency"],
            )
    result.add_note(
        "Paper: gSampler ~9473 MStep/s near its random-access peak on "
        "balanced SC24, collapsing to ~592 under Graph500 skew; "
        "RidgeWalker holds ~2130-2241 on both."
    )
    return result


# ---------------------------------------------------------------------------
# Breakdown (Figure 11)
# ---------------------------------------------------------------------------

#: The four Figure 11 configurations.
FIG11_VARIANTS = (
    ("baseline", dict(dynamic_scheduling=False, async_memory=False, bulk_synchronous=True)),
    ("scheduler-only", dict(dynamic_scheduling=True, async_memory=False)),
    ("async-only", dict(dynamic_scheduling=False, async_memory=True, bulk_synchronous=True)),
    ("full", dict(dynamic_scheduling=True, async_memory=True)),
)


def fig11_ablation(datasets: tuple[str, ...] = DATASET_ORDER) -> ExperimentResult:
    """Breakdown of the two optimizations on U55C (URW), normalized to
    the Equation (1) HBM peak."""
    result = ExperimentResult(
        "fig11", "Async pipeline / zero-bubble scheduler breakdown (URW, U55C)"
    )
    for dataset in datasets:
        workload = make_workload(dataset, "URW")
        baseline_msteps = None
        for variant, overrides in FIG11_VARIANTS:
            metrics = run_ridgewalker_streaming(
                workload, memory=HBM2_U55C, num_pipelines=16, **overrides
            )
            msteps = metrics.msteps_per_second()
            if baseline_msteps is None:
                baseline_msteps = msteps
            peak = 16 * HBM2_U55C.random_tx_rate_mhz  # steps/s if every
            # channel pair retired one step per random transaction
            result.add_row(
                graph=dataset,
                variant=variant,
                msteps=msteps,
                normalized_to_peak=msteps / peak,
                speedup_over_baseline=speedup(msteps, baseline_msteps),
                ghost_laps=metrics.extra["ghost_laps"],
            )
    result.add_note(
        "Paper gains over baseline: scheduler-only 1.6-4.8x, async-only "
        "6.8-14.7x, full 12.4-16.7x reaching up to 88% of peak."
    )
    return result


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def tab1_sampling_support() -> ExperimentResult:
    """Table I: supported sampling algorithms and RP entry widths."""
    result = ExperimentResult("tab1", "Supported sampling algorithms (Table I)")
    for algorithm, weighted, sampler_name, bits in TABLE1_ROWS:
        spec = make_spec(algorithm)
        sampler = spec.make_sampler()
        result.add_row(
            grw=algorithm,
            weighted=weighted,
            sampler=sampler.name,
            expected_sampler=sampler_name,
            rp_entry_bits=spec.rp_entry_bits,
            expected_bits=bits,
        )
    return result


def tab2_datasets() -> ExperimentResult:
    """Table II: dataset catalog — paper numbers vs generated stand-ins."""
    result = ExperimentResult("tab2", "Evaluated graph datasets (Table II)")
    for name in DATASET_ORDER:
        spec = get_spec(name)
        graph = load_dataset(name, seed=1)
        stats = degree_statistics(graph)
        result.add_row(
            graph=name,
            category=spec.category,
            paper_vertices=spec.paper_vertices,
            paper_edges=spec.paper_edges,
            paper_diameter=spec.paper_diameter,
            sim_vertices=graph.num_vertices,
            sim_edges=graph.num_edges,
            sim_mean_degree=stats.mean,
            sim_dangling=stats.dangling_fraction,
            sim_diameter=estimate_diameter(graph, num_sources=4, seed=2),
        )
    return result


#: Table III devices: (name, memory spec, pipelines).
TAB3_DEVICES = (
    ("U250", DDR4_U250, 2),
    ("VCK5000", DDR4_VCK5000, 2),
    ("U50", HBM2_U50, 16),
    ("U55C", HBM2_U55C, 16),
)


def tab3_devices(datasets: tuple[str, ...] = ("WG", "AS", "LJ")) -> ExperimentResult:
    """Table III: average URW throughput and utilization per FPGA."""
    result = ExperimentResult("tab3", "URW throughput across FPGAs (Table III)")
    for device_name, memory, pipelines in TAB3_DEVICES:
        throughputs = []
        utilizations = []
        for dataset in datasets:
            workload = make_workload(dataset, "URW")
            metrics = run_ridgewalker_streaming(
                workload, memory=memory, num_pipelines=pipelines
            )
            throughputs.append(metrics.msteps_per_second())
            utilizations.append(metrics.bandwidth_utilization())
        result.add_row(
            device=device_name,
            memory=memory.name,
            channels=memory.num_channels,
            sequential_gbs=memory.sequential_gbs,
            avg_msteps=sum(throughputs) / len(throughputs),
            avg_utilization=sum(utilizations) / len(utilizations),
        )
    result.add_note(
        "Paper: U250 258 MStep/s @81%, VCK5000 202 @87%, U50 1463 @88%, "
        "U55C 2098 @88%."
    )
    return result


def tab4_resources() -> ExperimentResult:
    """Table IV: resource utilization and frequency per kernel (U55C)."""
    result = ExperimentResult("tab4", "Resource utilization on U55C (Table IV)")
    paper = {
        "PPR": (61.1, 29.8, 19.5, 2.2),
        "URW": (50.1, 24.0, 19.5, 2.2),
        "DeepWalk": (67.5, 32.3, 39.1, 4.4),
        "Node2Vec": (79.1, 41.6, 36.0, 7.3),
    }
    for algorithm, spec_name in (
        ("PPR", "PPR"),
        ("URW", "URW"),
        ("DeepWalk", "DeepWalk"),
        ("Node2Vec", "Node2Vec-reservoir"),
    ):
        row = table4_row(make_spec(spec_name))
        result.add_row(
            kernel=algorithm,
            luts_pct=row["LUTs"],
            regs_pct=row["REGs"],
            brams_pct=row["BRAMs"],
            dsps_pct=row["DSPs"],
            frequency_mhz=row["Frequency"],
            paper_luts=paper[algorithm][0],
            paper_regs=paper[algorithm][1],
            paper_brams=paper[algorithm][2],
            paper_dsps=paper[algorithm][3],
        )
    scheduler = scheduler_resources(16)
    result.add_note(
        f"Scheduler standalone: {scheduler.luts / ALVEO_U55C.luts * 100:.1f}% "
        f"LUTs at {SCHEDULER_STANDALONE_MHZ:.0f} MHz (paper: 1.8% @ 450 MHz)."
    )
    return result


# ---------------------------------------------------------------------------
# Microbenchmarks (Section VI guarantees)
# ---------------------------------------------------------------------------

def micro_scheduler_depth() -> ExperimentResult:
    """Theorem VI.1 validation: bubble ratio vs FIFO depth."""
    result = ExperimentResult(
        "micro-depth", "Bubble ratio vs scheduler FIFO depth (Theorem VI.1)"
    )
    n = 16
    theorem = minimum_depth_per_pipeline(n)
    sweep = depth_sweep(
        num_servers=n,
        feedback_delay=16,
        depths=[1, 2, 4, 8, theorem, 2 * theorem],
        cycles=6000,
    )
    for depth, bubbles in sweep.items():
        result.add_row(
            depth=depth,
            bubble_ratio=bubbles,
            meets_theorem=depth >= theorem,
        )
    result.add_note(f"Theorem VI.1 depth for N={n}: {theorem} (1 + 4*log2 N).")
    return result


def micro_pipeline_scaling() -> ExperimentResult:
    """Scalability study: throughput vs pipeline count, N=2..32.

    Section VIII-F argues the zero-bubble scheduler (at 450 MHz, 1.8% of
    LUTs) scales beyond 32 HBM channels; this sweep runs the same URW
    workload on 2..16 pipelines of the U55C stack and 32 pipelines of a
    projected 64-channel HBM3 stack, reporting throughput and per-
    pipeline efficiency.
    """
    from repro.memory.spec import HBM3_PROJECTED

    result = ExperimentResult(
        "micro-scaling", "Throughput vs pipeline count (scheduler scalability)"
    )
    workload = make_workload("AS", "URW")
    points = [(2, HBM2_U55C), (4, HBM2_U55C), (8, HBM2_U55C), (16, HBM2_U55C),
              (32, HBM3_PROJECTED)]
    for pipelines, memory in points:
        metrics = run_ridgewalker_streaming(
            workload, memory=memory, num_pipelines=pipelines
        )
        msteps = metrics.msteps_per_second()
        result.add_row(
            pipelines=pipelines,
            memory=memory.name,
            msteps=msteps,
            msteps_per_pipeline=msteps / pipelines,
            utilization=metrics.bandwidth_utilization(),
        )
    result.add_note(
        "Per-pipeline throughput should stay roughly flat through N=32 "
        "if the butterfly scheduler is not the scaling bottleneck."
    )
    return result


def micro_outstanding_sweep() -> ExperimentResult:
    """Ablation: access-engine outstanding-request capacity sweep."""
    result = ExperimentResult(
        "micro-outstanding", "Throughput vs access-engine outstanding capacity"
    )
    workload = make_workload("AS", "URW")
    for outstanding in (1, 4, 16, 64, 128):
        metrics = run_ridgewalker_streaming(
            workload,
            memory=HBM2_U55C,
            num_pipelines=16,
            engine_outstanding=outstanding,
        )
        result.add_row(
            outstanding=outstanding,
            msteps=metrics.msteps_per_second(),
            utilization=metrics.bandwidth_utilization(),
        )
    result.add_note(
        "The paper provisions 128 outstanding requests; throughput should "
        "saturate once capacity covers the memory round trip."
    )
    return result


#: Registry used by the benchmark files and EXPERIMENTS.md generator.
EXPERIMENTS = {
    "fig3a": fig3a_motivation,
    "fig8a": fig8a_fastrw,
    "fig8b": fig8b_su,
    "fig8c": fig8c_lightrw_node2vec,
    "fig8d": fig8d_lightrw_metapath,
    "fig9": fig9_gpu,
    "fig10": fig10_rmat,
    "fig11": fig11_ablation,
    "tab1": tab1_sampling_support,
    "tab2": tab2_datasets,
    "tab3": tab3_devices,
    "tab4": tab4_resources,
    "micro-depth": micro_scheduler_depth,
    "micro-outstanding": micro_outstanding_sweep,
    "micro-scaling": micro_pipeline_scaling,
}
