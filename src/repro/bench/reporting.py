"""Result containers and table formatting for the experiment harness."""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import BenchmarkError


@dataclass
class ExperimentResult:
    """Outcome of one paper artifact reproduction (a table or figure).

    ``rows`` is a list of dicts with homogeneous keys; ``notes`` records
    deviations and context worth carrying into EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, key: str) -> list[Any]:
        """All values of one column, in row order."""
        try:
            return [row[key] for row in self.rows]
        except KeyError:
            raise BenchmarkError(
                f"column {key!r} missing from experiment {self.experiment_id}"
            ) from None

    def row_for(self, **match: Any) -> dict[str, Any]:
        """The first row whose fields match ``match`` exactly."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise BenchmarkError(
            f"no row matching {match} in experiment {self.experiment_id}"
        )

    def to_table(self) -> str:
        """Render as an aligned text table (for bench output and docs)."""
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}\n  (no rows)"
        keys = list(self.rows[0].keys())
        formatted: list[list[str]] = [[_format_cell(k) for k in keys]]
        for row in self.rows:
            formatted.append([_format_cell(row.get(k)) for k in keys])
        widths = [max(len(line[i]) for line in formatted) for i in range(len(keys))]
        lines = [f"[{self.experiment_id}] {self.title}"]
        header = "  " + " | ".join(cell.ljust(w) for cell, w in zip(formatted[0], widths))
        lines.append(header)
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for line in formatted[1:]:
            lines.append("  " + " | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def speedup(new: float, old: float) -> float:
    """Throughput ratio with division-by-zero protection."""
    if old <= 0:
        raise BenchmarkError(f"cannot compute speedup over non-positive baseline {old}")
    return new / old


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise BenchmarkError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise BenchmarkError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def host_metadata() -> dict:
    """Identity of the machine a BENCH record was taken on.

    Absolute hops/sec numbers are meaningless without knowing what ran
    them: a 2-core CI runner and a 32-core workstation differ by an
    order of magnitude on the same code.  Every committed record carries
    this block so a regression-looking diff can be told apart from a
    host change — and so advisory runs (too few cores, missing numba)
    are interpretable after the fact.
    """
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:  # optional accelerator dep, absent on many hosts
        numba_version = None
    import numpy

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "numba": numba_version,
    }


def write_bench_json(path, payload: dict) -> None:
    """Write one engine benchmark's machine-readable record.

    The throughput benchmarks drop ``BENCH_<engine>.json`` files (hops/sec,
    workload, host core count) that are committed alongside code changes,
    so the perf trajectory across PRs lives in version control rather than
    in prose.  Keys are sorted and floats rounded by the caller, keeping
    diffs reviewable.  A ``host`` block (:func:`host_metadata`) is
    stamped into every record here, so no benchmark can forget it.
    """
    payload = dict(payload)
    payload.setdefault("host", host_metadata())
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def resolve_bench_json_path(json_arg, smoke: bool, script_file, filename: str) -> str:
    """Where an engine benchmark should write its BENCH record.

    One place encodes the convention both engine benchmarks share: an
    explicit ``--json`` always wins (``''`` disables), smokes default to
    off (CI smokes must not overwrite the acceptance record), and full
    runs default to ``filename`` next to the benchmark script — not the
    cwd, so a run launched from anywhere lands in ``benchmarks/``.
    """
    if json_arg is not None:
        return json_arg
    if smoke:
        return ""
    return str(Path(script_file).resolve().parent / filename)
