"""Shared workload construction for the experiment harness.

Centralizes the evaluation methodology of Section VIII-A4: query length
80, Node2Vec ``p=2, q=0.5``, ThunderRW-style edge weights for weighted
GRWs, queries issued as a continuous stream with throughput measured
over a steady-state window.

``fast_mode()`` (environment variable ``REPRO_BENCH_FAST=1``) shrinks
graphs and measurement windows so the whole suite runs in CI time; the
default sizes are the ones EXPERIMENTS.md reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.graph import load_dataset, rmat
from repro.graph.csr import CSRGraph
from repro.graph.datasets import assign_metapath_schema
from repro.graph.generators import BALANCED_INITIATOR, GRAPH500_INITIATOR
from repro.memory.spec import MemorySpec
from repro.sampling.base import derive_seed
from repro.sim.stats import RunMetrics
from repro.walks import (
    DeepWalkSpec,
    MetaPathSpec,
    Node2VecSpec,
    PPRSpec,
    URWSpec,
    WalkSpec,
    make_queries,
)

#: Paper walk length (Section VIII-A4).
WALK_LENGTH = 80

#: Default queries traced per run (the stream repeats them endlessly).
NUM_QUERIES = 512

#: Streaming measurement window.
WARMUP_CYCLES = 4000
MEASURE_CYCLES = 12000


def fast_mode() -> bool:
    """Whether the suite runs in the reduced CI configuration."""
    return os.environ.get("REPRO_BENCH_FAST", "") == "1"


def graph_scale() -> float:
    return 0.25 if fast_mode() else 1.0


def measure_cycles() -> int:
    return 4000 if fast_mode() else MEASURE_CYCLES


def warmup_cycles() -> int:
    return 1500 if fast_mode() else WARMUP_CYCLES


def num_queries() -> int:
    return 256 if fast_mode() else NUM_QUERIES


@dataclass(frozen=True)
class Workload:
    """One (graph, walk spec) evaluation point."""

    graph: CSRGraph
    spec: WalkSpec
    label: str


#: Algorithms runnable on a plain RMAT graph (no type schema needed);
#: the engine-throughput benchmarks offer exactly these.
RMAT_BENCH_ALGORITHMS = ("DeepWalk", "Node2Vec", "PPR", "URW")


def make_spec(algorithm: str) -> WalkSpec:
    """Build a walk spec with the paper's parameters."""
    if algorithm == "URW":
        return URWSpec(max_length=WALK_LENGTH)
    if algorithm == "PPR":
        return PPRSpec(alpha=0.15, max_length=WALK_LENGTH)
    if algorithm == "DeepWalk":
        return DeepWalkSpec(max_length=WALK_LENGTH)
    if algorithm == "Node2Vec":
        return Node2VecSpec(p=2.0, q=0.5, strategy="rejection", max_length=WALK_LENGTH)
    if algorithm == "Node2Vec-reservoir":
        return Node2VecSpec(p=2.0, q=0.5, strategy="reservoir", max_length=WALK_LENGTH)
    if algorithm == "MetaPath":
        return MetaPathSpec(pattern=[0, 1, 2], max_length=WALK_LENGTH)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def make_workload(dataset: str, algorithm: str, seed: int = 1) -> Workload:
    """Dataset stand-in + spec, with weights/types where the algorithm
    needs them (weighted DeepWalk/Node2Vec-reservoir/MetaPath)."""
    weighted = algorithm in ("DeepWalk", "Node2Vec-reservoir", "MetaPath")
    graph = load_dataset(dataset, scale=graph_scale(), seed=seed, weighted=weighted)
    if algorithm == "MetaPath":
        graph = assign_metapath_schema(graph, num_types=3, seed=seed)
    return Workload(graph=graph, spec=make_spec(algorithm), label=f"{algorithm}/{dataset}")


def compensated_graph500_initiator(paper_scale: int, sim_scale: int) -> tuple:
    """Graph500 initiator adjusted for a reduced recursion depth.

    RMAT skew compounds once per recursion level: the tail of the degree
    distribution is governed by ratios like ``(a/d)**scale``.  Simulating
    SC24 at scale 14 with the nominal ``(0.57, 0.19, 0.19, 0.05)`` would
    *under*-produce the skew (and the dangling-vertex fraction) the paper
    measured.  Raising the per-level ratios to ``r**(paper/sim)`` keeps
    the end-to-end tail ratios — and therefore the walk-length divergence
    Figure 10 is about — at their full-scale values.
    """
    a, b, _c, d = GRAPH500_INITIATOR
    k = paper_scale / sim_scale
    r_ab = (a / b) ** k
    r_ad = (a / d) ** k
    a_new = 1.0 / (1.0 + 2.0 / r_ab + 1.0 / r_ad)
    return (a_new, a_new / r_ab, a_new / r_ab, a_new / r_ad)


def make_rmat_workload(
    scale: int, edge_factor: int, initiator: str, seed: int = 1
) -> Workload:
    """Figure 10 RMAT point.  Paper scales (16/24) map to simulated
    scales (12/14) — the label keeps the paper's name, and the Graph500
    initiator is scale-compensated (see above)."""
    sim_scale = {16: 12, 24: 14}.get(scale, scale)
    if initiator == "balanced":
        probs = BALANCED_INITIATOR
    else:
        probs = compensated_graph500_initiator(scale, sim_scale)
    graph = rmat(
        scale=sim_scale,
        edge_factor=edge_factor,
        initiator=probs,
        seed=seed,
        directed=True,
        name=f"SC{scale}-{edge_factor}-{initiator}",
    )
    graph = graph.with_weights(_unit_jitter_weights(graph, seed))
    return Workload(
        graph=graph,
        spec=make_spec("DeepWalk"),
        label=f"SC{scale}-{edge_factor}/{initiator}",
    )


def _unit_jitter_weights(graph: CSRGraph, seed: int):
    from repro.graph.datasets import thunderrw_weights

    return thunderrw_weights(graph, seed=seed)


def run_ridgewalker_streaming(
    workload: Workload,
    memory: MemorySpec,
    num_pipelines: int,
    seed: int = 1,
    **config_overrides,
) -> RunMetrics:
    """Steady-state RidgeWalker throughput for one workload."""
    config = RidgeWalkerConfig(
        num_pipelines=num_pipelines, memory=memory, **config_overrides
    )
    queries = make_queries(workload.graph, num_queries(),
                           seed=derive_seed(seed, "queries"))
    engine = RidgeWalker(workload.graph, workload.spec, config, seed=seed)
    return engine.run_streaming(
        queries, warmup_cycles=warmup_cycles(), measure_cycles=measure_cycles()
    )
