"""RidgeWalker reproduction: perfectly pipelined graph random walks.

A cycle-level Python reproduction of *RidgeWalker: Perfectly Pipelined
Graph Random Walks on FPGAs* (HPCA 2026): the accelerator (asynchronous
pipelines + zero-bubble scheduler), every substrate it depends on (CSR
graphs, Table I samplers, the GRW algorithms, an HBM/DDR channel timing
model, ThundeRiNG-style RNG), the baselines it is compared against
(FastRW, LightRW, Su et al., gSampler), and a benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro.graph import load_dataset
    from repro.walks import URWSpec, make_queries
    from repro.core import RidgeWalker, RidgeWalkerConfig

    graph = load_dataset("WG", seed=1)
    engine = RidgeWalker(graph, URWSpec(max_length=80), RidgeWalkerConfig())
    run = engine.run(make_queries(graph, 256, seed=2))
    print(run.metrics.summary())
"""

__version__ = "1.0.0"

from repro.errors import (
    BenchmarkError,
    DeadlockError,
    GraphError,
    GraphFormatError,
    MemoryModelError,
    ReproError,
    ResourceModelError,
    SamplingError,
    SchedulerError,
    SimulationError,
    WalkConfigError,
)

__all__ = [
    "BenchmarkError",
    "DeadlockError",
    "GraphError",
    "GraphFormatError",
    "MemoryModelError",
    "ReproError",
    "ResourceModelError",
    "SamplingError",
    "SchedulerError",
    "SimulationError",
    "WalkConfigError",
    "__version__",
]
