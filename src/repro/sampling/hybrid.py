"""Runtime-adaptive hybrid sampling: one strategy per vertex row.

ThunderRW measured — and FlexiWalker exploits — that no single sampling
method wins across workloads: alias sampling is O(1) per draw but pays a
per-row build (and a rebuild on every mutation), an inverse-transform
CDF scan is nearly free to build and cheap on rows whose mass sits near
the front, rejection sampling needs no preprocessing but retries, and a
degenerate row (degree 0/1, all-equal weights) needs no weighted
machinery at all.  RidgeWalker keeps its sampling stage at initiation
interval 1 by fixing the strategy in hardware; the software analogue of
that guarantee is picking the *right* strategy per row up front so the
hot loop never meets a pathological row.

This module is that selection layer:

* :func:`select_strategies` — the cost model.  For every vertex row it
  scores degree, weight skew (the expected sequential-scan depth
  ``E[index + 1]``), and an expected mutation rate, and records a
  first-order choice among ``{uniform, ITS flat-CDF, alias}`` plus a
  second-order class among ``{uniform, exact-scan, heavy}``.
* :class:`HybridKernel` — the vectorized dispatcher.  A frontier is
  grouped by the strategy of each walker's current row and every group
  runs as one fused NumPy pass of the corresponding single-strategy
  kernel, so a mixed-strategy frontier costs one kernel call per
  *strategy*, not per row.
* :class:`HybridSampler` — the scalar twin for the reference engine.

**Determinism contract.**  Every per-walker draw depends only on that
walker's substream and its current row, never on how the frontier was
grouped — so for a *fixed* selection map, hybrid paths are bit-identical
to dispatching each row through its single-strategy kernel alone, and
identical across the batch, parallel and serving layers.  The selection
map itself is a pure function of the graph (plus an optional
:class:`HybridConfig`), so ``sampler="auto"`` is exactly as
deterministic as any fixed engine.  Every strategy realizes the walk
spec's exact per-hop distribution, so auto mode is also statistically
indistinguishable from the single-sampler engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError, WalkConfigError
from repro.graph.alias import build_alias_slots
from repro.graph.csr import CSRGraph
from repro.sampling.alias_sampler import AliasSampler
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.uniform import UniformSampler
from repro.sampling.vectorized import (
    AliasKernel,
    BatchSample,
    HubAdjacency,
    ITSKernel,
    RejectionKernel,
    ReservoirKernel,
    UniformKernel,
    VectorizedKernel,
    build_edge_keys,
    hybrid_edges_exist,
    make_kernel,
)

#: Per-row strategy codes (stored in selection maps and SamplerState).
STRATEGY_UNIFORM = 0
STRATEGY_ALIAS = 1
STRATEGY_ITS = 2
STRATEGY_REJECTION = 3
STRATEGY_RESERVOIR = 4
#: Degenerate rows (degree <= 1): the single neighbor is taken with
#: probability 1 under *any* walk law — positive weights and positive
#: Node2Vec biases normalize to 1 over one option — so these rows need
#: no randomness at all.  The hybrid dispatcher resolves them inline,
#: without a kernel call.
STRATEGY_ONE = 5
#: Sentinel used in the stored second-order column: "the base sampler's
#: own heavy path" — resolved to rejection or reservoir by the spec.
STRATEGY_HEAVY = 7

STRATEGY_NAMES = {
    STRATEGY_UNIFORM: "uniform",
    STRATEGY_ALIAS: "alias",
    STRATEGY_ITS: "its",
    STRATEGY_REJECTION: "rejection",
    STRATEGY_RESERVOIR: "reservoir",
    STRATEGY_ONE: "one",
    STRATEGY_HEAVY: "heavy",
}

_CODE_DTYPE = np.int8

#: Values every engine's ``sampler=`` option accepts.
SAMPLER_MODES = ("default", "auto")


def validate_sampler_mode(mode: str) -> str:
    """The one shared validator behind every engine's ``sampler=`` option."""
    if mode not in SAMPLER_MODES:
        raise WalkConfigError(
            f"unknown sampler option {mode!r}; valid choices: "
            f"{', '.join(SAMPLER_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class HybridConfig:
    """Cost-model knobs for per-row strategy selection.

    ``small_degree``
        Rows at or below this degree always take the scan strategy (ITS
        flat-CDF / exact second-order scan): a handful of sequential
        reads beats both alias-table indirection and rejection retries.
    ``its_max_expected_reads``
        Weighted rows whose expected sequential-scan depth
        ``E[index + 1] = sum((i + 1) * w_i) / sum(w_i)`` is at or below
        this budget take ITS even at higher degrees — a dominant early
        edge makes the scan effectively O(1).
    ``update_rate``
        Expected per-row mutation rate (edge ops per row per epoch) the
        deployment anticipates.  Mutations rebuild a dirty row's
        prepared state, and an ITS CDF row rebuilds for one ``cumsum``
        while an alias row pays Vose's algorithm — so a declared churn
        rate widens the ITS read budget via ``update_bias``.
    ``update_bias``
        How strongly ``update_rate`` widens the ITS budget:
        ``budget = its_max_expected_reads * (1 + update_rate * update_bias)``.
    ``hub_bitmap_min_degree`` / ``hub_bitmap_max_bytes``
        Second-order families only: rows at or above the degree
        threshold get dense adjacency bitmaps
        (:class:`~repro.sampling.vectorized.HubAdjacency`), turning the
        ``log2(|E|)`` probe behind every Node2Vec bias decision into an
        O(1) bit test for the hub rows that absorb most probes.  The
        byte budget caps the build (heaviest rows kept); declared churn
        (``update_rate > 0``) disables the bitmap — it is rebuilt from
        scratch per graph version, exactly the prepare tax a mutating
        deployment avoids.  Set ``max_bytes`` to 0 to disable outright.

    The dynamic subsystem maintains selection maps with the *default*
    config so snapshots stay bit-identical to from-scratch builds;
    custom configs are for explicitly constructed kernels.
    """

    small_degree: int = 8
    its_max_expected_reads: float = 4.0
    update_rate: float = 0.0
    update_bias: float = 16.0
    hub_bitmap_min_degree: int = 32
    hub_bitmap_max_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.small_degree < 1:
            raise SamplingError(
                f"small_degree must be >= 1, got {self.small_degree}"
            )
        if self.its_max_expected_reads <= 0:
            raise SamplingError(
                "its_max_expected_reads must be positive, got "
                f"{self.its_max_expected_reads}"
            )
        if self.update_rate < 0 or self.update_bias < 0:
            raise SamplingError(
                "update_rate and update_bias must be non-negative, got "
                f"{self.update_rate} and {self.update_bias}"
            )
        if self.hub_bitmap_min_degree < 1 or self.hub_bitmap_max_bytes < 0:
            raise SamplingError(
                "hub_bitmap_min_degree must be >= 1 and "
                "hub_bitmap_max_bytes >= 0, got "
                f"{self.hub_bitmap_min_degree} and {self.hub_bitmap_max_bytes}"
            )

    @property
    def hub_bitmap_budget(self) -> int:
        """Bitmap byte budget after the churn rule (0 = disabled)."""
        return 0 if self.update_rate > 0 else self.hub_bitmap_max_bytes

    @property
    def its_read_budget(self) -> float:
        """The churn-adjusted expected-scan-depth cutoff for ITS rows."""
        return self.its_max_expected_reads * (1.0 + self.update_rate * self.update_bias)


DEFAULT_CONFIG = HybridConfig()


def select_row_strategy(
    degree: int,
    weights: np.ndarray | None,
    config: HybridConfig = DEFAULT_CONFIG,
) -> tuple[int, int]:
    """The row-local cost model: ``(first_order, second_order)`` codes.

    This single function is the source of truth for both the full
    :func:`select_strategies` pass and the dynamic subsystem's
    incremental per-dirty-row re-evaluation — sharing it (including its
    exact float arithmetic) is what makes incrementally maintained
    selection maps bit-identical to from-scratch ones.
    """
    if degree <= 1:
        return STRATEGY_ONE, STRATEGY_ONE
    second = STRATEGY_ITS if degree <= config.small_degree else STRATEGY_HEAVY
    if weights is None:
        return STRATEGY_UNIFORM, second
    weights = np.asarray(weights, dtype=np.float64)
    if float(weights.max()) == float(weights.min()):
        # Equal weights: the weighted draw *is* the uniform draw.
        return STRATEGY_UNIFORM, second
    if degree <= config.small_degree:
        return STRATEGY_ITS, second
    expected_reads = float(
        (np.arange(1, degree + 1, dtype=np.float64) * weights).sum()
        / weights.sum()
    )
    if expected_reads <= config.its_read_budget:
        return STRATEGY_ITS, second
    return STRATEGY_ALIAS, second


def select_strategies(
    graph: CSRGraph, config: HybridConfig = DEFAULT_CONFIG
) -> np.ndarray:
    """Per-vertex strategy codes, shape ``(num_vertices, 2)`` int8.

    Column 0 is the first-order weighted choice among
    ``{uniform, alias, its}``; column 1 the second-order class among
    ``{uniform, its, heavy}`` (``heavy`` resolving to the spec's own
    rejection/reservoir path).  Pure function of the graph and config.
    """
    degrees = graph.degrees()
    codes = np.empty((graph.num_vertices, 2), dtype=_CODE_DTYPE)
    codes[:, 1] = np.where(
        degrees <= 1,
        STRATEGY_ONE,
        np.where(degrees <= config.small_degree, STRATEGY_ITS, STRATEGY_HEAVY),
    )
    if not graph.is_weighted:
        codes[:, 0] = np.where(degrees <= 1, STRATEGY_ONE, STRATEGY_UNIFORM)
        return codes
    first = np.full(graph.num_vertices, STRATEGY_ONE, dtype=_CODE_DTYPE)
    row_ptr = graph.row_ptr
    for vertex in np.nonzero(degrees >= 2)[0]:
        lo, hi = int(row_ptr[vertex]), int(row_ptr[vertex + 1])
        first[vertex], _ = select_row_strategy(
            hi - lo, graph.weights[lo:hi], config
        )
    codes[:, 0] = first
    return codes


#: Exact-scan threshold for second-order rows: the scan (O(d) adjacency
#: probes per hop, no retries) replaces rejection only when rejection's
#: sparse-graph retry estimate exceeds this many rounds.
_SCAN_MIN_EXPECTED_ROUNDS = 2.0


def rejection_expected_rounds(base: RejectionSampler) -> float:
    """Sparse-graph retry estimate for rejection sampling.

    On a sparse graph almost every proposed candidate is an *explore*
    candidate (not adjacent to the previous vertex), so the acceptance
    probability concentrates at ``explore_bias / max_bias`` and the
    expected retry count at its inverse.  At the paper's ``p=2, q=0.5``
    that is 1.0 — rejection accepts almost every first proposal and no
    scan can beat it; at retry-hostile parameters (``p, q >> 1``) it
    grows to ``q`` and small rows become cheaper to scan exactly.
    """
    return base.max_bias / base.explore_bias


def resolve_strategy_codes(
    base: Sampler, strategy: np.ndarray, has_edge_types: bool = False
) -> np.ndarray:
    """Collapse a stored two-column strategy map onto one base sampler.

    Used identically by :meth:`HybridKernel.prepare` and the dynamic
    subsystem's ``SamplerState.kernel_arrays`` so a snapshot hand-off and
    a fresh prepare agree on every row.
    """
    if strategy.ndim != 2 or strategy.shape[1] != 2:
        raise SamplingError(
            f"strategy map must have shape (num_vertices, 2), got {strategy.shape}"
        )
    if isinstance(base, UniformSampler):
        # Uniform draws ignore weights, so only the degenerate-row
        # shortcut applies (the ONE code marks degree <= 1 rows in both
        # columns; the second is weight-independent).
        return np.where(
            strategy[:, 1] == STRATEGY_ONE, STRATEGY_ONE, STRATEGY_UNIFORM
        ).astype(_CODE_DTYPE)
    if isinstance(base, (AliasSampler, InverseTransformSampler)):
        return np.ascontiguousarray(strategy[:, 0])
    if isinstance(base, RejectionSampler):
        second = strategy[:, 1]
        if rejection_expected_rounds(base) < _SCAN_MIN_EXPECTED_ROUNDS:
            # Rejection accepts nearly every proposal at these p/q: one
            # draw and at most one probe per hop beats any O(d) scan, so
            # small rows stay on the rejection path too.
            second = np.where(second == STRATEGY_ITS, STRATEGY_HEAVY, second)
        return np.where(
            second == STRATEGY_HEAVY, STRATEGY_REJECTION, second
        ).astype(_CODE_DTYPE)
    if isinstance(base, ReservoirSampler):
        if has_edge_types:
            # Edge-type admissibility can terminate a walk mid-row; no
            # shortcut strategy models that, so every row stays on the
            # reservoir scan.
            return np.full(strategy.shape[0], STRATEGY_RESERVOIR, dtype=_CODE_DTYPE)
        second = strategy[:, 1]
        return np.where(
            second == STRATEGY_HEAVY, STRATEGY_RESERVOIR, second
        ).astype(_CODE_DTYPE)
    raise SamplingError(
        f"no hybrid strategy family for sampler {base.name!r}; "
        "use sampler='default'"
    )


def build_first_order_state(
    graph: CSRGraph, codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Alias tables and ITS CDF rows covering exactly what ``codes`` need.

    Returns full-length ``(alias_prob, alias_index, its_cdf,
    its_row_totals)`` arrays aligned with the CSR column list — rows not
    selecting a structure keep the uniform defaults, selected rows are
    built with the *same per-row builders* a full build uses, so a row's
    slots are bit-identical to ``build_alias_table`` / ``build_its_cdf``
    output whenever both built it.
    """
    degrees = graph.degrees()
    starts = graph.row_ptr[:-1]
    within = np.arange(graph.num_edges, dtype=np.int64) - np.repeat(starts, degrees)
    alias_prob = np.ones(graph.num_edges, dtype=np.float64)
    alias_index = within.copy()
    its_cdf = (within + 1).astype(np.float64)
    its_row_totals = degrees.astype(np.float64)
    if graph.is_weighted:
        row_ptr = graph.row_ptr
        for vertex in np.nonzero((codes == STRATEGY_ALIAS) & (degrees > 0))[0]:
            lo, hi = int(row_ptr[vertex]), int(row_ptr[vertex + 1])
            prob, alias = build_alias_slots(graph.weights[lo:hi])
            alias_prob[lo:hi] = prob
            alias_index[lo:hi] = alias
        for vertex in np.nonzero((codes == STRATEGY_ITS) & (degrees > 0))[0]:
            lo, hi = int(row_ptr[vertex]), int(row_ptr[vertex + 1])
            row_weights = graph.weights[lo:hi]
            its_cdf[lo:hi] = np.cumsum(row_weights)
            its_row_totals[vertex] = row_weights.sum()
    return alias_prob, alias_index, its_cdf, its_row_totals


class BiasedScanKernel(VectorizedKernel):
    """Exact inverse-transform over bias-adjusted weights, for small rows.

    The scan strategy for second-order walks: each walker's whole
    neighbor row is gathered into a padded ``(walkers, max_degree)``
    rectangle, Node2Vec biases (return ``1/p``, in-neighborhood ``1``,
    explore ``1/q``) multiply the edge weights, and one uniform per
    walker is located in the row-local running total.  The cumulative
    sums are computed per padded row, so a walker's draw is bit-independent
    of frontier composition — the property the hybrid determinism
    contract rests on.  Intended for rows the cost model capped at
    ``small_degree``; the rectangle is exact for any degree, just not
    economical on hubs.
    """

    def __init__(self, p: float | None = None, q: float | None = None,
                 use_weights: bool = True) -> None:
        if (p is None) != (q is None):
            raise SamplingError("p and q must be given together or not at all")
        if p is not None and (p <= 0 or q <= 0):
            raise SamplingError(
                f"node2vec parameters must be positive, got p={p}, q={q}"
            )
        self._p = p
        self._q = q
        #: Whether edge weights multiply the bias.  False when standing in
        #: for rejection sampling, whose law is structural-bias only —
        #: the scan must realize the *same* distribution as the strategy
        #: it replaces, even on graphs that happen to carry weights.
        self._use_weights = use_weights
        self._edge_keys: np.ndarray | None = None
        self._hub_adjacency: HubAdjacency | None = None

    @property
    def second_order(self) -> bool:
        return self._p is not None

    def prepare(self, graph: CSRGraph) -> None:
        if self.second_order:
            self._edge_keys = build_edge_keys(graph)

    def attach_hub_adjacency(self, hub_adjacency: HubAdjacency | None) -> None:
        self._hub_adjacency = hub_adjacency

    def state_arrays(self) -> dict[str, np.ndarray]:
        if not self.second_order:
            return {}
        if self._edge_keys is None:
            raise SamplingError(
                "BiasedScanKernel.prepare(graph) must run before exporting state"
            )
        arrays = {"edge_keys": self._edge_keys}
        if self._hub_adjacency is not None:
            arrays.update(self._hub_adjacency.state_arrays())
        return arrays

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        if self.second_order:
            self._edge_keys = arrays["edge_keys"]
            self._hub_adjacency = HubAdjacency.from_state(arrays)

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        if admissible_type is not None:
            raise SamplingError(
                "BiasedScanKernel does not support edge-type admissibility; "
                "typed walks stay on the reservoir strategy"
            )
        degrees = graph.degrees()[current].astype(np.int64)
        width = int(degrees.max())
        slots = np.arange(width, dtype=np.int64)
        valid = slots[None, :] < degrees[:, None]
        position = graph.row_ptr[current][:, None] + np.where(valid, slots[None, :], 0)
        if self._use_weights and graph.is_weighted:
            weight = graph.weights[position].astype(np.float64)
        else:
            weight = np.ones(position.shape, dtype=np.float64)
        if self.second_order:
            if self._edge_keys is None:
                raise SamplingError(
                    "BiasedScanKernel.prepare(graph) must be called before sampling"
                )
            # Probe only the entries whose bias can matter: real slots of
            # walkers that actually have a previous vertex (first hops are
            # bias-free, padded slots are zeroed below anyway).
            prev = np.broadcast_to(previous[:, None], position.shape)
            biased = valid & (prev >= 0)
            if biased.any():
                candidate = graph.col[position[biased]]
                prev_flat = prev[biased]
                adjacent = hybrid_edges_exist(
                    self._edge_keys,
                    self._hub_adjacency,
                    graph.num_vertices,
                    prev_flat,
                    candidate,
                )
                bias = np.ones(position.shape, dtype=np.float64)
                bias[biased] = np.where(
                    candidate == prev_flat,
                    1.0 / self._p,
                    np.where(adjacent, 1.0, 1.0 / self._q),
                )
                weight = weight * bias
        weight = np.where(valid, weight, 0.0)
        prefix = np.cumsum(weight, axis=1)
        totals = prefix[:, -1]
        target = streams.uniforms(stream_idx) * totals
        choice = (prefix <= target[:, None]).sum(axis=1)
        choice = np.minimum(choice.astype(np.int64), degrees - 1)
        # Full-scan accounting, like the reservoir sampler: every entry
        # of the row is read once to compute its (biased) weight.
        return BatchSample(
            choice, proposals=current.size, neighbor_reads=int(degrees.sum())
        )


class SingleNeighborKernel(VectorizedKernel):
    """Degenerate rows (degree 1): take the only neighbor, draw nothing.

    Any walk law puts probability 1 on a single positive-weight,
    positive-bias option, so no substream is consumed — the one strategy
    whose draw pattern is empty.  (Never selected for edge-typed graphs,
    where the single edge could be inadmissible.)
    """

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        choice = np.zeros(current.size, dtype=np.int64)
        # Same accounting as a uniform draw: one proposal, one read.
        return BatchSample(choice, proposals=current.size, neighbor_reads=current.size)


def _sub_kernels(base: Sampler) -> dict[int, VectorizedKernel]:
    """The strategy-code -> kernel family one base sampler can dispatch to."""
    if isinstance(base, UniformSampler):
        return {
            STRATEGY_UNIFORM: UniformKernel(),
            STRATEGY_ONE: SingleNeighborKernel(),
        }
    if isinstance(base, (AliasSampler, InverseTransformSampler)):
        return {
            STRATEGY_UNIFORM: UniformKernel(),
            STRATEGY_ONE: SingleNeighborKernel(),
            STRATEGY_ALIAS: AliasKernel(),
            STRATEGY_ITS: ITSKernel(),
        }
    if isinstance(base, RejectionSampler):
        return {
            STRATEGY_UNIFORM: UniformKernel(),
            STRATEGY_ONE: SingleNeighborKernel(),
            # Rejection's law is structural bias only (uniform proposals,
            # weights ignored): the scan stand-in must match it even on
            # weighted graphs.
            STRATEGY_ITS: BiasedScanKernel(p=base.p, q=base.q, use_weights=False),
            STRATEGY_REJECTION: RejectionKernel(base),
        }
    if isinstance(base, ReservoirSampler):
        return {
            STRATEGY_UNIFORM: UniformKernel(),
            STRATEGY_ONE: SingleNeighborKernel(),
            STRATEGY_ITS: BiasedScanKernel(p=base.p, q=base.q),
            STRATEGY_RESERVOIR: ReservoirKernel(base),
        }
    raise SamplingError(
        f"no hybrid strategy family for sampler {base.name!r}; "
        "use sampler='default'"
    )


class HybridKernel(VectorizedKernel):
    """Frontier-wide dispatch over a per-row strategy selection map.

    ``selection``, when given, forces a final per-vertex code map
    (callers own its distributional correctness — the conformance tests
    force maps to prove bit-identity against single-strategy kernels);
    otherwise :meth:`prepare` runs the cost model.  Groups dispatch in
    ascending code order, but since every sub-kernel's per-walker draws
    depend only on that walker's substream, grouping cannot change any
    walker's path.
    """

    def __init__(
        self,
        base: Sampler,
        selection: np.ndarray | None = None,
        config: HybridConfig | None = None,
    ) -> None:
        self._base = base
        self._config = config or DEFAULT_CONFIG
        self._kernels = _sub_kernels(base)
        if selection is not None:
            selection = np.ascontiguousarray(selection, dtype=_CODE_DTYPE)
            unknown = set(np.unique(selection).tolist()) - set(self._kernels)
            if unknown:
                names = ", ".join(
                    STRATEGY_NAMES.get(code, str(code)) for code in sorted(unknown)
                )
                raise SamplingError(
                    f"selection map assigns strategies ({names}) the base "
                    f"sampler {base.name!r} cannot dispatch to"
                )
        self._forced = selection
        self._codes: np.ndarray | None = None
        #: Codes actually present in the selection map, set with the map;
        #: the dispatch loop iterates these instead of re-discovering the
        #: frontier's codes with a sort every superstep.
        self._present: tuple[int, ...] = ()

    @property
    def base(self) -> Sampler:
        return self._base

    @property
    def selection(self) -> np.ndarray | None:
        """The per-vertex strategy codes (after prepare/load_state)."""
        return self._codes

    def sub_state_names(self) -> tuple[str, ...]:
        """Names of the prepared arrays this kernel's strategy family
        consumes — what a :class:`~repro.dynamic.state.SamplerState`
        hand-off must supply alongside ``hybrid_strategy``."""
        if isinstance(self._base, (AliasSampler, InverseTransformSampler)):
            return ("alias_prob", "alias_index", "its_cdf", "its_row_totals")
        if isinstance(self._base, RejectionSampler):
            return ("edge_keys",)
        if isinstance(self._base, ReservoirSampler) and self._base.second_order:
            return ("edge_keys",)
        return ()

    def strategy_counts(self) -> dict[str, int]:
        """Rows per strategy — the cost model's decision, summarized."""
        if self._codes is None:
            raise SamplingError("HybridKernel.prepare(graph) must run first")
        codes, counts = np.unique(self._codes, return_counts=True)
        return {
            STRATEGY_NAMES[int(code)]: int(count)
            for code, count in zip(codes, counts)
        }

    def _adopt_codes(self, codes: np.ndarray) -> None:
        self._codes = codes
        self._present = tuple(int(code) for code in np.unique(codes))

    def prepare(self, graph: CSRGraph) -> None:
        if self._forced is not None:
            if self._forced.size != graph.num_vertices:
                raise SamplingError(
                    f"selection map has {self._forced.size} entries for a "
                    f"graph with {graph.num_vertices} vertices"
                )
            self._adopt_codes(self._forced)
        else:
            self._adopt_codes(resolve_strategy_codes(
                self._base,
                select_strategies(graph, self._config),
                has_edge_types=graph.edge_types is not None,
            ))
        if isinstance(self._base, (AliasSampler, InverseTransformSampler)):
            prob, alias, cdf, totals = build_first_order_state(graph, self._codes)
            self._kernels[STRATEGY_ALIAS].load_state(
                {"alias_prob": prob, "alias_index": alias}
            )
            self._kernels[STRATEGY_ITS].load_state(
                {"its_cdf": cdf, "its_row_totals": totals}
            )
        elif isinstance(self._base, RejectionSampler) or (
            isinstance(self._base, ReservoirSampler) and self._base.second_order
        ):
            state = {"edge_keys": build_edge_keys(graph)}
            hub = HubAdjacency.build(
                graph,
                self._config.hub_bitmap_min_degree,
                self._config.hub_bitmap_budget,
            )
            if hub is not None:
                state.update(hub.state_arrays())
            for code, kernel in self._kernels.items():
                if code not in (STRATEGY_UNIFORM, STRATEGY_ONE):
                    kernel.load_state(state)

    def state_arrays(self) -> dict[str, np.ndarray]:
        if self._codes is None:
            raise SamplingError(
                "HybridKernel.prepare(graph) must run before exporting state"
            )
        arrays: dict[str, np.ndarray] = {"hybrid_strategy": self._codes}
        for kernel in self._kernels.values():
            arrays.update(kernel.state_arrays())
        return arrays

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        self._adopt_codes(arrays["hybrid_strategy"])
        for kernel in self._kernels.values():
            kernel.load_state(arrays)

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        if self._codes is None:
            raise SamplingError(
                "HybridKernel.prepare(graph) must be called before sampling"
            )
        if len(self._present) == 1:
            # Single-strategy selection map (every fixed-map conformance
            # run): zero dispatch overhead.
            return self._kernels[self._present[0]].sample(
                graph, current, previous, admissible_type, streams, stream_idx
            )
        codes = self._codes[current]
        choice = np.empty(current.size, dtype=np.int64)
        proposals = 0
        reads = 0
        for code in self._present:
            mask = codes == code
            count = int(np.count_nonzero(mask))
            if count == 0:
                continue
            if code == STRATEGY_ONE:
                # Degenerate rows resolve inline: the only neighbor, no
                # draws, no kernel call, no gather/scatter round-trip.
                choice[mask] = 0
                proposals += count
                reads += count
                continue
            if count == current.size:
                # Whole frontier on one strategy (common once short walks
                # have drained the light rows): skip the gather/scatter.
                return self._kernels[code].sample(
                    graph, current, previous, admissible_type, streams, stream_idx
                )
            group = np.nonzero(mask)[0]
            batch = self._kernels[code].sample(
                graph,
                current[group],
                previous[group],
                admissible_type,
                streams,
                stream_idx[group],
            )
            choice[group] = batch.choice
            proposals += batch.proposals
            reads += batch.neighbor_reads
        return BatchSample(choice, proposals=proposals, neighbor_reads=reads)


class HybridSampler(Sampler):
    """Scalar per-row dispatch for the reference engine's ``auto`` mode.

    Same cost model, same strategy families as :class:`HybridKernel`;
    each hop consults the selection map for the current row and runs the
    corresponding scalar sampler.  Distributionally identical to the
    base sampler (each strategy realizes the exact per-hop law), so the
    reference engine remains the statistical oracle in auto mode too.
    """

    name = "hybrid"

    def __init__(
        self,
        base: Sampler,
        selection: np.ndarray | None = None,
        config: HybridConfig | None = None,
    ) -> None:
        self._base = base
        self._config = config or DEFAULT_CONFIG
        self._forced = (
            np.ascontiguousarray(selection, dtype=_CODE_DTYPE)
            if selection is not None
            else None
        )
        self._codes: np.ndarray | None = None
        self._its: InverseTransformSampler | None = None
        self.rp_entry_bits = base.rp_entry_bits
        # Validate the family eagerly, like the vectorized constructor.
        _sub_kernels(base)

    @property
    def base(self) -> Sampler:
        return self._base

    @property
    def selection(self) -> np.ndarray | None:
        return self._codes

    def prepare(self, graph: CSRGraph) -> None:
        if self._forced is not None:
            self._codes = self._forced
        else:
            self._codes = resolve_strategy_codes(
                self._base,
                select_strategies(graph, self._config),
                has_edge_types=graph.edge_types is not None,
            )
        self._base.prepare(graph)
        if STRATEGY_ITS in set(np.unique(self._codes).tolist()) and isinstance(
            self._base, (AliasSampler, InverseTransformSampler)
        ):
            self._its = InverseTransformSampler()
            self._its.prepare(graph)

    def _scan_exact(
        self, graph: CSRGraph, context: StepContext, random_source: RandomSource
    ) -> SampleOutcome:
        """Scalar twin of :class:`BiasedScanKernel` (small second-order rows)."""
        degree = self._require_degree(graph, context.vertex)
        neighbors = graph.neighbors(context.vertex)
        if isinstance(self._base, RejectionSampler):
            # Rejection ignores edge weights; so must its scan stand-in.
            weights = np.ones(degree, dtype=np.float64)
        else:
            weights = graph.neighbor_weights(context.vertex).astype(np.float64).copy()
        prev = context.prev_vertex
        p = getattr(self._base, "p", None)
        q = getattr(self._base, "q", None)
        if prev is not None and p is not None:
            for i in range(degree):
                candidate = int(neighbors[i])
                if candidate == prev:
                    weights[i] *= 1.0 / p
                elif not graph.has_edge(prev, candidate):
                    weights[i] *= 1.0 / q
        cumulative = np.cumsum(weights)
        target = random_source.uniform() * float(cumulative[-1])
        index = min(int(np.searchsorted(cumulative, target, side="right")), degree - 1)
        return SampleOutcome(index=index, proposals=1, neighbor_reads=degree)

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        if self._codes is None:
            raise SamplingError(
                "HybridSampler.prepare(graph) must be called before sampling"
            )
        code = int(self._codes[context.vertex])
        if code == STRATEGY_ONE:
            self._require_degree(graph, context.vertex)
            return SampleOutcome(index=0, proposals=1, neighbor_reads=1)
        if code == STRATEGY_UNIFORM:
            degree = self._require_degree(graph, context.vertex)
            return SampleOutcome(
                index=random_source.randint(degree), proposals=1, neighbor_reads=1
            )
        if code == STRATEGY_ITS:
            if self._its is not None:
                return self._its.sample(graph, context, random_source)
            return self._scan_exact(graph, context, random_source)
        return self._base.sample(graph, context, random_source)


def make_walk_kernel(
    sampler: Sampler,
    mode: str = "default",
    selection: np.ndarray | None = None,
    config: HybridConfig | None = None,
) -> VectorizedKernel:
    """Kernel factory behind every engine's ``sampler=`` option.

    ``"default"`` maps the spec's sampler onto its single-strategy kernel
    (:func:`~repro.sampling.vectorized.make_kernel`); ``"auto"`` wraps it
    in a :class:`HybridKernel` driven by the cost model.
    """
    validate_sampler_mode(mode)
    if mode == "default":
        return make_kernel(sampler)
    return HybridKernel(sampler, selection=selection, config=config)


def make_walk_sampler(
    sampler: Sampler,
    mode: str = "default",
    selection: np.ndarray | None = None,
    config: HybridConfig | None = None,
) -> Sampler:
    """Scalar-sampler factory mirroring :func:`make_walk_kernel` for the
    reference engine."""
    validate_sampler_mode(mode)
    if mode == "default":
        return sampler
    return HybridSampler(sampler, selection=selection, config=config)
