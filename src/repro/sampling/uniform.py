"""Uniform neighbor sampling (URW, PPR — Table I row 1).

One random draw, one column-list access; the 64-bit RP entry holds just
``(channel id, address, degree)``.
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext


class UniformSampler(Sampler):
    """Pick each out-neighbor with equal probability."""

    rp_entry_bits = 64
    name = "uniform"

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        index = random_source.randint(degree)
        return SampleOutcome(index=index, proposals=1, neighbor_reads=1)
