"""Sampler protocol shared by all GRW sampling algorithms (Table I).

A sampler answers one question: *given the current vertex's neighbor list,
which within-neighborhood index does the walk take?*  That is exactly the
job of the hardware Sampling module sitting between Row Access and Column
Access; keeping the software contract identical lets the cycle simulator
and the pure-software reference engine share sampler implementations.

Outcomes carry cost counters (memory reads of the neighbor list, proposal
attempts) because different samplers stress the memory system differently:
uniform/alias sampling touch O(1) entries per hop while reservoir and
inverse-transform sampling scan the whole list — the effect behind the
paper's Node2Vec observations in Figure 9d.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.rng.thundering import ThunderRing


def normalize_seed(seed: int) -> int:
    """Map any Python int onto valid ``SeedSequence`` entropy.

    ``SeedSequence`` rejects negative integers; masking to 64 bits keeps
    the engines' historical "any int seed works" contract while staying
    deterministic (every distinct seed in ``[-2**63, 2**64)`` maps to a
    distinct stream key).
    """
    return int(seed) & (2**64 - 1)


def _tag_entropy(tag: int | str) -> int:
    """One ``SeedSequence`` entropy word per tag.

    String tags hash with a fixed polynomial (Python's ``hash`` is
    salted per process, so it must never feed a stream key); int tags
    pass through :func:`normalize_seed`.
    """
    if isinstance(tag, str):
        value = 0
        for char in tag:
            value = (value * 131 + ord(char)) & 0xFFFFFFFF
        return value
    return normalize_seed(tag)


def derive_seed(seed: int, *tags: int | str) -> int:
    """Collision-free child seed from a root seed and a tag path.

    The repository's determinism contract forbids deriving sub-seeds by
    arithmetic (``seed + 1`` and friends collide across call sites:
    run A's ``seed+2`` is run B's ``seed+1``, silently correlating
    streams that must be independent — ``repro lint`` rule RW102).
    This helper is the blessed alternative: the root seed and each tag
    become separate ``SeedSequence`` entropy words, so distinct tag
    paths give independent streams for *every* root seed, and the
    result is a plain int usable anywhere a seed is — including as the
    root of the engines' per-query ``SeedSequence((seed, query_id))``
    spawn keys.

    >>> derive_seed(7, "queries") != derive_seed(7, "engine")
    True
    """
    entropy = [normalize_seed(seed)]
    entropy.extend(_tag_entropy(tag) for tag in tags)
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


class RandomSource(Protocol):
    """Uniform randomness interface consumed by samplers."""

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""

    def randint(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""


class NumpyRandomSource:
    """Adapter over ``numpy.random.Generator`` (reference engine)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def uniform(self) -> float:
        return float(self._rng.random())

    def randint(self, bound: int) -> int:
        if bound <= 0:
            raise SamplingError(f"bound must be positive, got {bound}")
        return int(self._rng.integers(0, bound))


class RingRandomSource:
    """Adapter over one :class:`~repro.rng.thundering.ThunderRing` stream
    (simulated hardware)."""

    def __init__(self, ring: ThunderRing, stream: int) -> None:
        self._ring = ring
        self._stream = stream

    def uniform(self) -> float:
        return self._ring.uniform(self._stream)

    def randint(self, bound: int) -> int:
        return self._ring.randint(self._stream, bound)


@dataclass(frozen=True)
class SampleOutcome:
    """Result of one sampling decision.

    Attributes
    ----------
    index:
        Chosen within-neighborhood index, or ``None`` when no admissible
        neighbor exists (MetaPath type mismatch) — the walk terminates.
    proposals:
        Number of candidate draws (rejection sampling retries count here).
    neighbor_reads:
        Neighbor-list entries the sampler had to *fetch* to decide; this
        feeds the memory cost model (O(1) for uniform/alias, O(d) for
        reservoir / inverse transform / rejection adjacency checks).
    """

    index: int | None
    proposals: int = 1
    neighbor_reads: int = 0

    @property
    def terminated(self) -> bool:
        """Whether the walk must end because nothing was admissible."""
        return self.index is None


@dataclass(frozen=True)
class StepContext:
    """Everything a sampler may consult for one hop.

    ``prev_vertex`` is populated for second-order walks (Node2Vec);
    ``admissible_type`` for MetaPath-style edge-type constraints.
    """

    vertex: int
    prev_vertex: int | None = None
    admissible_type: int | None = None


class Sampler(ABC):
    """Base class for Table I sampling algorithms."""

    #: Row-pointer entry width in bits this sampler needs (Table I).
    rp_entry_bits: int = 64

    #: Human-readable name used in reports.
    name: str = "sampler"

    @abstractmethod
    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        """Choose a neighbor index for the walk at ``context.vertex``.

        Implementations must raise :class:`SamplingError` when called on a
        vertex with zero out-degree; callers are expected to terminate
        walks at dangling vertices before sampling.
        """

    def prepare(self, graph: CSRGraph) -> None:
        """Hook for per-graph preprocessing (alias table construction)."""

    def _require_degree(self, graph: CSRGraph, vertex: int) -> int:
        degree = graph.degree(vertex)
        if degree == 0:
            raise SamplingError(
                f"cannot sample a neighbor of dangling vertex {vertex}; "
                "terminate the walk instead"
            )
        return degree
