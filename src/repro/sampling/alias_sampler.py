"""Alias sampling (DeepWalk on weighted graphs — Table I row 2).

Two uniforms and one table lookup give an exact weighted draw in O(1).
The price is preprocessing (flat alias tables, built once per graph) and a
256-bit RP entry carrying the alias-table pointer and size, exactly as the
paper's template-based graph representation does.
"""

from __future__ import annotations

from repro.errors import SamplingError
from repro.graph.alias import AliasTable, build_alias_table
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext


class AliasSampler(Sampler):
    """Weighted O(1) sampling via per-vertex alias tables."""

    rp_entry_bits = 256
    name = "alias"

    def __init__(self, table: AliasTable | None = None) -> None:
        self._table = table
        self._prepared_for: int | None = None

    def prepare(self, graph: CSRGraph) -> None:
        """Build (or rebuild) the flat alias tables for ``graph``."""
        self._table = build_alias_table(graph)
        self._prepared_for = id(graph)

    @property
    def table(self) -> AliasTable:
        """The alias tables; raises if :meth:`prepare` was never called."""
        if self._table is None:
            raise SamplingError("AliasSampler.prepare(graph) must be called before sampling")
        return self._table

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        offset = int(graph.row_ptr[context.vertex])
        u1 = random_source.uniform()
        u2 = random_source.uniform()
        index = self.table.sample_index(offset, degree, u1, u2)
        # One read for the alias slot, one for the chosen neighbor.
        return SampleOutcome(index=index, proposals=1, neighbor_reads=2)
