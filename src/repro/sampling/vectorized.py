"""NumPy-vectorized sampling kernels for the batch walk engine.

The reference engine samples one hop of one walker at a time; these
kernels sample one hop of an *entire frontier* of walkers in a handful of
array operations — the software analogue of RidgeWalker's pipelined
Sampling module, and the step-centric batching that ThunderRW showed is
the key to software GRW throughput.

Three ingredients make the kernels drop-in replacements for the scalar
samplers in this package:

* :class:`QueryStreams` — one independent random substream per query,
  keyed by ``np.random.SeedSequence((seed, query_id))`` exactly like the
  reference engine, but advanced for the whole frontier with vectorized
  splitmix64 arithmetic.
* a sorted edge-key array (``src * |V| + dst``) that turns the Node2Vec
  adjacency probe into one batched ``np.searchsorted`` call.
* the same cost-counter contract as the scalar samplers: proposals and
  neighbor reads are accounted identically (the rejection kernel still
  charges the honest ``O(deg(prev))`` probe cost per retry even though
  the lookup itself is a binary search).

Statistical equivalence with the scalar samplers is enforced by
chi-square tests in ``tests/walks/test_batch.py``; streams are *not*
bit-identical across engines, only identically distributed and
identically keyed per query.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SamplingError
from repro.graph.alias import AliasTable, build_alias_table
from repro.graph.csr import CSRGraph
from repro.sampling.alias_sampler import AliasSampler
from repro.sampling.base import Sampler, normalize_seed
from repro.sampling.its import InverseTransformSampler, build_its_cdf, build_its_row_totals
from repro.sampling.rejection import _MAX_REJECTION_ROUNDS, RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.uniform import UniformSampler

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_ELEMENT_GAMMA = np.uint64(0xD1B54A32D192ED03)
_TO_UNIT = 1.0 / (1 << 53)

# numpy SeedSequence hashing constants (numpy/random/bit_generator.pyx).
# The batched derivation below reproduces SeedSequence bit-for-bit so the
# per-query substream keying stays identical to the reference engine's
# while costing a handful of array ops instead of one SeedSequence object
# per query.
_SS_POOL_SIZE = 4
_SS_INIT_A = 0x43B0D7E5
_SS_MULT_A = 0x931E8875
_SS_INIT_B = 0x8B51F9DD
_SS_MULT_B = 0x58F38DED
_SS_MIX_L = np.uint32(0xCA01F9DD)
_SS_MIX_R = np.uint32(0x4973F715)
_SS_XSHIFT = np.uint32(16)
_SS_WORD_MASK = 0xFFFFFFFF


def _ss_hash(value: np.ndarray, hash_const: int) -> tuple[np.ndarray, int]:
    """One SeedSequence hash round over a uint32 array; advances the
    (position-dependent, data-independent) hash constant."""
    value = value ^ np.uint32(hash_const)
    hash_const = (hash_const * _SS_MULT_A) & _SS_WORD_MASK
    value = value * np.uint32(hash_const)
    return value ^ (value >> _SS_XSHIFT), hash_const


def _ss_mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = x * _SS_MIX_L - y * _SS_MIX_R
    return result ^ (result >> _SS_XSHIFT)


def _int_to_words(value: int) -> list[int]:
    """SeedSequence's little-endian 32-bit word coercion of one int."""
    if value == 0:
        return [0]
    words = []
    while value:
        words.append(value & _SS_WORD_MASK)
        value >>= 32
    return words


def _ss_states_for_words(seed_words: list[int], qid_words: list[np.ndarray]) -> np.ndarray:
    """States for one group of queries whose ids coerce to the same number
    of 32-bit words (so every query sees the same entropy layout)."""
    n = qid_words[0].size
    entropy = [np.full(n, word, dtype=np.uint32) for word in seed_words] + qid_words
    if len(entropy) > _SS_POOL_SIZE:  # pragma: no cover - ids are < 2**64
        raise SamplingError("seed/query-id entropy exceeds the SeedSequence pool")
    hash_const = _SS_INIT_A
    pool: list[np.ndarray] = []
    for i in range(_SS_POOL_SIZE):
        word = entropy[i] if i < len(entropy) else np.zeros(n, dtype=np.uint32)
        hashed, hash_const = _ss_hash(word, hash_const)
        pool.append(hashed)
    for src in range(_SS_POOL_SIZE):
        for dst in range(_SS_POOL_SIZE):
            if src != dst:
                hashed, hash_const = _ss_hash(pool[src], hash_const)
                pool[dst] = _ss_mix(pool[dst], hashed)
    hash_const = _SS_INIT_B
    words: list[np.ndarray] = []
    for i in range(2):
        value = pool[i] ^ np.uint32(hash_const)
        hash_const = (hash_const * _SS_MULT_B) & _SS_WORD_MASK
        value = value * np.uint32(hash_const)
        words.append(value ^ (value >> _SS_XSHIFT))
    return words[0].astype(np.uint64) | (words[1].astype(np.uint64) << np.uint64(32))


def seed_sequence_states(seed: int, query_ids: Sequence[int] | np.ndarray) -> np.ndarray:
    """``SeedSequence((seed, qid)).generate_state(1, uint64)[0]`` for every
    query id, bit-exactly, in a handful of vectorized passes.

    Seeding one ``SeedSequence`` object per query is the remaining
    O(num_queries) scalar cost in batch-engine setup; this reproduces the
    exact hash pipeline (entropy coercion, pool mixing, state generation)
    with uint32 array arithmetic.  Queries are grouped by how many 32-bit
    words their id coerces to, since the entropy layout — and therefore
    the sequence of hash constants — depends only on that count.
    Equality with the scalar derivation is enforced by tests.
    """
    # Mask to valid SeedSequence entropy first: a negative int would make
    # _int_to_words loop forever (Python's >> keeps negatives negative),
    # and the engines' contract is "any int seed works".
    seed = normalize_seed(seed)
    ids = np.asarray(query_ids)
    if ids.dtype.kind == "i" and ids.size and ids.min() < 0:
        raise SamplingError("query ids must be non-negative")
    ids = ids.astype(np.uint64)
    if ids.ndim != 1:
        ids = ids.reshape(-1)
    states = np.empty(ids.size, dtype=np.uint64)
    if ids.size == 0:
        return states
    seed_words = _int_to_words(int(seed))
    wide = ids >= np.uint64(1 << 32)
    narrow = np.nonzero(~wide)[0]
    if narrow.size:
        states[narrow] = _ss_states_for_words(
            seed_words, [ids[narrow].astype(np.uint32)]
        )
    wide_idx = np.nonzero(wide)[0]
    if wide_idx.size:
        lo = (ids[wide_idx] & np.uint64(_SS_WORD_MASK)).astype(np.uint32)
        hi = (ids[wide_idx] >> np.uint64(32)).astype(np.uint32)
        states[wide_idx] = _ss_states_for_words(seed_words, [lo, hi])
    return states


def _mix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = (z ^ (z >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


def _to_unit(bits: np.ndarray) -> np.ndarray:
    """Map uint64 outputs to float64 uniforms in [0, 1) (53 usable bits)."""
    return (bits >> np.uint64(11)).astype(np.float64) * _TO_UNIT


class QueryStreams:
    """Per-query random substreams advanced in batch.

    Stream ``q`` is seeded from ``SeedSequence((seed, query_id))`` — the
    same derivation the reference engine uses — and advanced with
    splitmix64, so every query's randomness is independent of batch
    composition and query order, and two distinct ``(seed, query_id)``
    pairs never collide (the property the old xor-mix derivation lacked).
    """

    def __init__(self, seed: int, query_ids: Sequence[int] | np.ndarray) -> None:
        seed = normalize_seed(seed)
        # Batched bit-exact SeedSequence derivation — same states as
        # seeding one SeedSequence per query, minus the per-query Python
        # object cost (see seed_sequence_states).
        self._state = seed_sequence_states(seed, query_ids)

    @classmethod
    def from_states(cls, states: np.ndarray) -> "QueryStreams":
        """Resume streams from raw splitmix64 states, by reference.

        The distributed engine ships an in-flight walker between shards
        as ``(query_id, step, vertex, rng state)``; the receiving shard
        wraps the carried state array — zero-copy, so every draw
        advances the caller's array in place — and the walk continues
        bit-identically to one that never crossed a shard boundary.
        ``states`` must be the uint64 array a :class:`QueryStreams`
        seeded from ``SeedSequence((seed, query_id))`` would hold (see
        :func:`seed_sequence_states`); arbitrary integers would step
        outside the per-query substream contract.
        """
        states = np.asarray(states)
        if states.dtype != np.uint64 or states.ndim != 1:
            raise SamplingError(
                f"stream states must be a 1-D uint64 array, got "
                f"{states.dtype} with shape {states.shape}"
            )
        streams = cls.__new__(cls)
        streams._state = states
        return streams

    def states(self) -> np.ndarray:
        """The live per-stream state array (mutates as draws are made)."""
        return self._state

    @property
    def num_streams(self) -> int:
        return self._state.size

    def uniforms(self, idx: np.ndarray) -> np.ndarray:
        """One fresh uniform in [0, 1) from each selected stream."""
        advanced = self._state[idx] + _GAMMA
        self._state[idx] = advanced
        return _to_unit(_mix64(advanced))

    def randints(self, bounds: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """One integer in ``[0, bounds[k])`` from each selected stream."""
        bounds = np.asarray(bounds, dtype=np.int64)
        draw = (self.uniforms(idx) * bounds).astype(np.int64)
        return np.minimum(draw, bounds - 1)

    def element_uniforms(
        self,
        idx: np.ndarray,
        counts: np.ndarray,
        segment: np.ndarray | None = None,
        within: np.ndarray | None = None,
    ) -> np.ndarray:
        """``counts[k]`` uniforms from stream ``idx[k]``, flattened.

        Each selected stream's state advances once; the per-element values
        are derived counter-style from the advanced state, so a scan over
        a large neighbor list costs one state bump regardless of degree.
        Callers that already flattened ``counts`` into ``segment`` (the
        selected-stream position of each element) and ``within`` (the
        element's index inside its segment) can pass both to skip the
        redundant repeat/cumsum pass — they must describe exactly the
        ``counts`` layout.
        """
        counts = np.asarray(counts, dtype=np.int64)
        advanced = self._state[idx] + _GAMMA
        self._state[idx] = advanced
        if segment is None or within is None:
            total = int(counts.sum())
            segment = np.repeat(np.arange(idx.size), counts)
            starts = np.cumsum(counts) - counts
            within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        salt = _mix64(within.astype(np.uint64) + _ELEMENT_GAMMA)
        return _to_unit(_mix64(advanced[segment] ^ salt))


def build_edge_keys(graph: CSRGraph) -> np.ndarray:
    """Sorted ``src * |V| + dst`` keys for batched edge-existence probes."""
    n = np.int64(graph.num_vertices)
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    keys = sources * n + graph.col
    if not graph.cols_sorted:
        keys = np.sort(keys)
    return keys


def edges_exist(
    edge_keys: np.ndarray, num_vertices: int, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Vectorized ``graph.has_edge(src[k], dst[k])`` over aligned arrays."""
    if edge_keys.size == 0:
        return np.zeros(src.shape, dtype=bool)
    keys = src.astype(np.int64) * np.int64(num_vertices) + dst
    pos = np.searchsorted(edge_keys, keys)
    pos = np.minimum(pos, edge_keys.size - 1)
    return edge_keys[pos] == keys


class HubAdjacency:
    """Dense neighbor bitmaps for heavy rows: O(1) exact adjacency probes.

    The sorted-edge-key probe behind :func:`edges_exist` costs a
    ``log2(|E|)``-step binary search over a multi-megabyte array — and on
    skewed graphs most second-order probes ask about a *hub* row.  For
    rows above a degree threshold this structure stores the neighbor set
    as one dense bitmap (8 bytes per 64 vertices), so a probe is a
    two-gather bit test.  Exact membership, no false positives: callers
    may substitute it for :func:`edges_exist` wherever ``rank[src] >= 0``
    without changing a single decision.
    """

    def __init__(self, rank: np.ndarray, bits: np.ndarray) -> None:
        self.rank = rank
        self.bits = bits

    @classmethod
    def build(
        cls, graph: CSRGraph, min_degree: int, max_bytes: int
    ) -> "HubAdjacency | None":
        """Bitmap the heaviest rows of ``graph`` (None when disabled, no
        row qualifies, or not even one row fits the byte budget)."""
        if min_degree < 1 or max_bytes <= 0:
            return None
        degrees = graph.degrees()
        words = (graph.num_vertices + 63) // 64
        max_rows = int(max_bytes // (words * 8))
        if max_rows == 0:
            return None
        hubs = np.nonzero(degrees >= min_degree)[0]
        if hubs.size == 0:
            return None
        if hubs.size > max_rows:
            # Keep the heaviest rows — they absorb the most probes.
            order = np.argsort(degrees[hubs], kind="stable")[::-1][:max_rows]
            hubs = np.sort(hubs[order])
        rank = np.full(graph.num_vertices, -1, dtype=np.int64)
        rank[hubs] = np.arange(hubs.size)
        bits = np.zeros((hubs.size, words), dtype=np.uint64)
        for i, vertex in enumerate(hubs.tolist()):
            neighbors = graph.neighbors(vertex)
            np.bitwise_or.at(
                bits[i],
                neighbors >> 6,
                np.uint64(1) << (neighbors & 63).astype(np.uint64),
            )
        return cls(rank=rank, bits=bits)

    def probe_ranked(self, rank: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Membership test for sources already resolved to bitmap ranks."""
        word = self.bits[rank, dst >> 6]
        return (word >> (dst & 63).astype(np.uint64)) & np.uint64(1) != 0

    def state_arrays(self) -> dict[str, np.ndarray]:
        return {"hub_rank": self.rank, "hub_bits": self.bits}

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray]) -> "HubAdjacency | None":
        rank = arrays.get("hub_rank")
        bits = arrays.get("hub_bits")
        if rank is None or bits is None:
            return None
        return cls(rank=rank, bits=bits)


def hybrid_edges_exist(
    edge_keys: np.ndarray,
    hub_adjacency: HubAdjacency | None,
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
) -> np.ndarray:
    """:func:`edges_exist` with bitmap-covered sources fast-pathed."""
    if hub_adjacency is None:
        return edges_exist(edge_keys, num_vertices, src, dst)
    rank = hub_adjacency.rank[src]
    covered = rank >= 0
    if not covered.any():
        return edges_exist(edge_keys, num_vertices, src, dst)
    out = np.empty(src.shape, dtype=bool)
    out[covered] = hub_adjacency.probe_ranked(rank[covered], dst[covered])
    uncovered = ~covered
    if uncovered.any():
        out[uncovered] = edges_exist(
            edge_keys, num_vertices, src[uncovered], dst[uncovered]
        )
    return out


@dataclass
class BatchSample:
    """One frontier-wide sampling decision.

    ``choice[k]`` is the within-neighborhood index walker ``k`` takes, or
    ``-1`` when nothing was admissible (the walk terminates early).
    ``proposals``/``neighbor_reads`` follow the same accounting contract
    as :class:`~repro.sampling.base.SampleOutcome`, summed over walkers.
    """

    choice: np.ndarray
    proposals: int
    neighbor_reads: int


def flatten_frontier(
    graph: CSRGraph, current: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segment arrays for a frontier's concatenated neighbor lists.

    Returns ``(counts, segment, within, position)``: walker ``k`` owns
    ``counts[k]`` consecutive flat entries, ``segment[j]`` is the walker
    of flat entry ``j``, ``within[j]`` its within-neighborhood index and
    ``position[j]`` its offset into the CSR column list.  The shared
    gather behind every whole-row scanning kernel.
    """
    counts = graph.degrees()[current].astype(np.int64)
    total = int(counts.sum())
    segment = np.repeat(np.arange(current.size), counts)
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    position = graph.row_ptr[current][segment] + within
    return counts, segment, within, position


class VectorizedKernel(ABC):
    """A sampler that advances a whole frontier per call."""

    def prepare(self, graph: CSRGraph) -> None:
        """Per-graph preprocessing hook (alias tables, edge keys)."""

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Prepared per-graph state as named flat arrays.

        The parallel engine broadcasts these through shared memory so the
        (potentially expensive) :meth:`prepare` pass runs once in the
        parent instead of once per worker.  Kernels without prepared
        state return an empty mapping.  Must be called after
        :meth:`prepare`.
        """
        return {}

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Adopt prepared state exported by :meth:`state_arrays`.

        ``arrays`` may be zero-copy views of shared memory; kernels must
        not mutate them.  A kernel loaded this way is ready to sample
        without a :meth:`prepare` call.
        """

    @abstractmethod
    def sample(
        self,
        graph: CSRGraph,
        current: np.ndarray,
        previous: np.ndarray,
        admissible_type: int | None,
        streams: QueryStreams,
        stream_idx: np.ndarray,
    ) -> BatchSample:
        """Choose a neighbor index for every walker in the frontier.

        ``current``/``previous`` are aligned int64 arrays (``previous`` is
        ``-1`` on a first hop); every ``current[k]`` must have out-degree
        >= 1 — the engine terminates dangling walkers before sampling.
        ``stream_idx[k]`` addresses walker ``k``'s substream.
        """


class UniformKernel(VectorizedKernel):
    """Uniform neighbor choice (URW, PPR): one draw, one read per walker."""

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        degrees = graph.degrees()[current]
        choice = streams.randints(degrees, stream_idx)
        return BatchSample(choice, proposals=current.size, neighbor_reads=current.size)


class AliasKernel(VectorizedKernel):
    """Weighted O(1) choice via flat alias tables (DeepWalk)."""

    def __init__(self) -> None:
        self._table: AliasTable | None = None

    def prepare(self, graph: CSRGraph) -> None:
        self._table = build_alias_table(graph)

    def state_arrays(self) -> dict[str, np.ndarray]:
        if self._table is None:
            raise SamplingError("AliasKernel.prepare(graph) must run before exporting state")
        return {"alias_prob": self._table.prob, "alias_index": self._table.alias}

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        self._table = AliasTable(prob=arrays["alias_prob"], alias=arrays["alias_index"])

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        if self._table is None:
            raise SamplingError("AliasKernel.prepare(graph) must be called before sampling")
        degrees = graph.degrees()[current]
        u1 = streams.uniforms(stream_idx)
        u2 = streams.uniforms(stream_idx)
        slot = np.minimum((u1 * degrees).astype(np.int64), degrees - 1)
        position = graph.row_ptr[current] + slot
        choice = np.where(u2 < self._table.prob[position], slot, self._table.alias[position])
        # Same accounting as AliasSampler: alias slot + chosen neighbor.
        return BatchSample(choice, proposals=current.size, neighbor_reads=2 * current.size)


class ITSKernel(VectorizedKernel):
    """Weighted inverse-transform sampling over prepared flat CDF rows.

    The vectorized twin of the *prepared*
    :class:`~repro.sampling.its.InverseTransformSampler` path: one
    uniform per walker is scaled by the row's total weight and located in
    the row's CDF slice.  Instead of a per-walker ``searchsorted``, the
    frontier's CDF slices are flattened and the within-row index is the
    per-segment count of entries at or below the target — the same
    "first running total exceeding the target" rule, so the realized
    distribution and the sequential-scan read accounting
    (``index + 1`` reads per draw) match the scalar sampler exactly.
    """

    def __init__(self) -> None:
        self._cdf: np.ndarray | None = None
        self._row_totals: np.ndarray | None = None

    def prepare(self, graph: CSRGraph) -> None:
        self._cdf = build_its_cdf(graph)
        self._row_totals = build_its_row_totals(graph)

    def state_arrays(self) -> dict[str, np.ndarray]:
        if self._cdf is None or self._row_totals is None:
            raise SamplingError("ITSKernel.prepare(graph) must run before exporting state")
        return {"its_cdf": self._cdf, "its_row_totals": self._row_totals}

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        self._cdf = arrays["its_cdf"]
        self._row_totals = arrays["its_row_totals"]

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        if self._cdf is None or self._row_totals is None:
            raise SamplingError("ITSKernel.prepare(graph) must be called before sampling")
        degrees = graph.degrees()[current]
        target = streams.uniforms(stream_idx) * self._row_totals[current]
        _, segment, _, position = flatten_frontier(graph, current)
        below = self._cdf[position] <= target[segment]
        choice = np.bincount(segment[below], minlength=current.size)
        # Round-off can leave target == total weight; take the last entry,
        # exactly like the scalar sampler's fell-off-the-scan clamp.
        choice = np.minimum(choice.astype(np.int64), degrees - 1)
        # Sequential-scan accounting: a scan stopping at ``index`` has read
        # ``index + 1`` weights.
        reads = int(choice.sum()) + current.size
        return BatchSample(choice, proposals=current.size, neighbor_reads=reads)


class RejectionKernel(VectorizedKernel):
    """Node2Vec rejection sampling with masked retry rounds.

    Every pending walker proposes a uniform neighbor per round; accepted
    walkers leave the frontier, rejected ones retry next round.  First
    hops (no previous vertex) are degenerate-uniform and accepted
    outright — see the matching fix in
    :class:`~repro.sampling.rejection.RejectionSampler`.
    """

    def __init__(self, sampler: RejectionSampler | None = None, *,
                 p: float | None = None, q: float | None = None) -> None:
        # Wrap the (already validated) scalar sampler so the bias
        # derivation has one source of truth; p/q kwargs are a
        # convenience that constructs one.
        if sampler is None:
            if p is None or q is None:
                raise SamplingError("RejectionKernel needs a sampler or both p and q")
            sampler = RejectionSampler(p=p, q=q)
        self._sampler = sampler
        self._edge_keys: np.ndarray | None = None
        #: Optional bitmap accelerator for hub-row adjacency probes; the
        #: hybrid layer attaches one when its cost model pays for the
        #: build.  Purely a speed structure — decisions are identical
        #: with or without it.
        self._hub_adjacency: HubAdjacency | None = None

    @property
    def p(self) -> float:
        return self._sampler.p

    @property
    def q(self) -> float:
        return self._sampler.q

    def prepare(self, graph: CSRGraph) -> None:
        self._edge_keys = build_edge_keys(graph)

    def attach_hub_adjacency(self, hub_adjacency: HubAdjacency | None) -> None:
        self._hub_adjacency = hub_adjacency

    def state_arrays(self) -> dict[str, np.ndarray]:
        if self._edge_keys is None:
            raise SamplingError("RejectionKernel.prepare(graph) must run before exporting state")
        arrays = {"edge_keys": self._edge_keys}
        if self._hub_adjacency is not None:
            arrays.update(self._hub_adjacency.state_arrays())
        return arrays

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        self._edge_keys = arrays["edge_keys"]
        self._hub_adjacency = HubAdjacency.from_state(arrays)

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        if self._edge_keys is None:
            raise SamplingError("RejectionKernel.prepare(graph) must be called before sampling")
        degrees = graph.degrees()[current]
        choice = np.full(current.size, -1, dtype=np.int64)
        proposals = 0
        reads = 0

        first_hop = previous < 0
        if first_hop.any():
            f = np.nonzero(first_hop)[0]
            choice[f] = streams.randints(degrees[f], stream_idx[f])
            proposals += f.size
            reads += f.size

        pending = np.nonzero(~first_hop)[0]
        prev_degrees = graph.degrees()[np.maximum(previous, 0)]
        max_bias = self._sampler.max_bias
        explore_bias = self._sampler.explore_bias
        # The accept decision only consults adjacency when the drawn
        # uniform falls *between* the adjacent-class and explore-class
        # thresholds; outside that band both classes decide identically,
        # so the (dominant, searchsorted-backed) probe can be skipped.
        # Decisions — and stream consumption — are bit-identical to the
        # probe-everything formulation; only the lookup work shrinks.
        probe_lo = min(1.0, explore_bias) / max_bias
        probe_hi = max(1.0, explore_bias) / max_bias
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > _MAX_REJECTION_ROUNDS:
                raise SamplingError(
                    f"rejection sampling failed to accept after {_MAX_REJECTION_ROUNDS} "
                    f"rounds (p={self.p}, q={self.q})"
                )
            proposal = streams.randints(degrees[pending], stream_idx[pending])
            candidate = graph.col[graph.row_ptr[current[pending]] + proposal]
            prev = previous[pending]
            is_return = candidate == prev
            u = streams.uniforms(stream_idx[pending])
            undecided = ~is_return & (u >= probe_lo) & (u < probe_hi)
            # Treating every decided non-return candidate as explore-class
            # yields the same accept verdict: below the band both classes
            # accept, above it both reject.
            adjacent = np.zeros(pending.size, dtype=bool)
            if undecided.any():
                adjacent[undecided] = hybrid_edges_exist(
                    self._edge_keys, self._hub_adjacency, graph.num_vertices,
                    prev[undecided], candidate[undecided],
                )
            bias = np.where(
                is_return,
                self._sampler.return_bias,
                np.where(adjacent, 1.0, explore_bias),
            )
            proposals += pending.size
            # One read for the proposal itself, plus the honest O(deg(prev))
            # adjacency-probe cost whenever the candidate is not the return
            # edge — identical to the scalar sampler's accounting, even
            # though the lookup here is a (lazily skipped) binary search
            # over edge keys.
            reads += pending.size + int(prev_degrees[pending[~is_return]].sum())
            accept = u < bias / max_bias
            accepted = pending[accept]
            choice[accepted] = proposal[accept]
            pending = pending[~accept]
        return BatchSample(choice, proposals=proposals, neighbor_reads=reads)


class ReservoirKernel(VectorizedKernel):
    """Single-pass weighted reservoir choice over flattened frontiers.

    Covers weighted first-order walks, weighted Node2Vec (``p``/``q``
    biases) and MetaPath (edge-type admissibility): the frontier's
    neighbor lists are flattened into one segment array, exponential-race
    keys ``u**(1/w)`` are drawn per edge, and a segmented argmax picks
    each walker's winner.  A walker whose segment has no admissible entry
    gets ``-1`` (early termination), mirroring the scalar sampler.
    """

    def __init__(self, sampler: ReservoirSampler | None = None, *,
                 p: float | None = None, q: float | None = None) -> None:
        # Wrap the (already validated) scalar sampler; p/q kwargs are a
        # convenience that constructs one.
        if sampler is None:
            sampler = ReservoirSampler(p=p, q=q)
        self._sampler = sampler
        self._edge_keys: np.ndarray | None = None

    @property
    def p(self) -> float | None:
        return self._sampler.p

    @property
    def q(self) -> float | None:
        return self._sampler.q

    @property
    def second_order(self) -> bool:
        return self._sampler.second_order

    def prepare(self, graph: CSRGraph) -> None:
        if self.second_order:
            self._edge_keys = build_edge_keys(graph)

    def state_arrays(self) -> dict[str, np.ndarray]:
        if not self.second_order:
            return {}
        if self._edge_keys is None:
            raise SamplingError("ReservoirKernel.prepare(graph) must run before exporting state")
        return {"edge_keys": self._edge_keys}

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        if self.second_order:
            self._edge_keys = arrays["edge_keys"]

    def sample(self, graph, current, previous, admissible_type, streams, stream_idx):
        counts, segment, within, position = flatten_frontier(graph, current)
        total = int(counts.sum())

        if graph.is_weighted:
            weight = graph.weights[position].astype(np.float64)
        else:
            weight = np.ones(total, dtype=np.float64)

        admissible = np.ones(total, dtype=bool)
        if admissible_type is not None:
            if graph.edge_types is None:
                raise SamplingError("admissible_type given but the graph has no edge types")
            admissible = graph.edge_types[position] == admissible_type

        if self.second_order:
            if self._edge_keys is None:
                raise SamplingError(
                    "ReservoirKernel.prepare(graph) must be called before sampling"
                )
            prev = previous[segment]
            has_prev = prev >= 0
            candidate = graph.col[position]
            adjacent = edges_exist(
                self._edge_keys, graph.num_vertices, np.maximum(prev, 0), candidate
            )
            bias = np.where(
                candidate == prev,
                1.0 / self.p,
                np.where(adjacent, 1.0, 1.0 / self.q),
            )
            weight = weight * np.where(has_prev, bias, 1.0)

        u = streams.element_uniforms(stream_idx, counts, segment=segment, within=within)
        # Same u == 0 guard as the scalar sampler: keep keys positive so
        # ordering against the -1 sentinel stays correct.
        u = np.where(u == 0.0, 5e-324, u)
        with np.errstate(divide="ignore"):
            key = np.where(admissible & (weight > 0), u ** (1.0 / weight), -1.0)
        order = np.lexsort((key, segment))
        best = order[np.cumsum(counts) - 1]
        choice = np.where(key[best] > -0.5, within[best], np.int64(-1))
        return BatchSample(choice, proposals=current.size, neighbor_reads=total)


def make_kernel(sampler: Sampler) -> VectorizedKernel:
    """Map a scalar sampler onto its vectorized kernel.

    The factory keys on sampler type so a :class:`~repro.walks.base.WalkSpec`
    needs no changes to run on the batch engine.
    """
    if isinstance(sampler, UniformSampler):
        return UniformKernel()
    if isinstance(sampler, AliasSampler):
        return AliasKernel()
    if isinstance(sampler, InverseTransformSampler):
        return ITSKernel()
    if isinstance(sampler, RejectionSampler):
        return RejectionKernel(sampler)
    if isinstance(sampler, ReservoirSampler):
        return ReservoirKernel(sampler)
    raise SamplingError(
        f"no vectorized kernel for sampler {sampler.name!r}; use the reference engine"
    )
