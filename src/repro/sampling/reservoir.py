"""Weighted reservoir sampling (Node2Vec weighted, MetaPath — Table I).

LightRW and RidgeWalker both use single-pass weighted reservoir sampling
(the exponential-keys / A-ES scheme: keep the item maximizing
``u**(1/w)``) for walks whose per-neighbor weights are only known on the
fly — Node2Vec biases composed with edge weights, and MetaPath's
edge-type admissibility filter.  One pass over the neighbor list, O(d)
reads, no preprocessing; the RP entry is 128 bits (pointer + degree +
session metadata).

When *no* neighbor is admissible (MetaPath with a type nobody matches),
the outcome reports termination — the early-termination irregularity the
zero-bubble scheduler exists to absorb (Figure 8d).
"""

from __future__ import annotations

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext


class ReservoirSampler(Sampler):
    """Single-pass weighted sampling with optional Node2Vec bias and
    edge-type filtering."""

    rp_entry_bits = 128
    name = "reservoir"

    def __init__(self, p: float | None = None, q: float | None = None) -> None:
        if (p is None) != (q is None):
            raise SamplingError("p and q must be given together or not at all")
        if p is not None and (p <= 0 or q <= 0):
            raise SamplingError(f"node2vec parameters must be positive, got p={p}, q={q}")
        self.p = p
        self.q = q

    @property
    def second_order(self) -> bool:
        """Whether Node2Vec biases are applied."""
        return self.p is not None

    def _bias(self, graph: CSRGraph, prev_vertex: int | None, candidate: int) -> float:
        if not self.second_order or prev_vertex is None:
            return 1.0
        if candidate == prev_vertex:
            return 1.0 / self.p
        if graph.has_edge(prev_vertex, candidate):
            return 1.0
        return 1.0 / self.q

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        neighbors = graph.neighbors(context.vertex)
        weights = graph.neighbor_weights(context.vertex)
        edge_types = (
            graph.neighbor_edge_types(context.vertex) if graph.has_edge_types else None
        )
        best_key = -1.0
        best_index: int | None = None
        reads = 0
        for i in range(degree):
            reads += 1
            if context.admissible_type is not None:
                if edge_types is None:
                    raise SamplingError(
                        "admissible_type given but the graph has no edge types"
                    )
                if int(edge_types[i]) != context.admissible_type:
                    continue
            weight = float(weights[i]) * self._bias(
                graph, context.prev_vertex, int(neighbors[i])
            )
            if weight <= 0:
                continue
            u = random_source.uniform()
            # Guard u == 0: key would be 0 for every weight; nudge to the
            # smallest positive double instead so ordering stays correct.
            if u == 0.0:
                u = 5e-324
            key = u ** (1.0 / weight)
            if key > best_key:
                best_key = key
                best_index = i
        return SampleOutcome(index=best_index, proposals=1, neighbor_reads=reads)
