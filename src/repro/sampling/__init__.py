"""Sampling substrate: the Table I sampling algorithms behind one protocol."""

from repro.sampling.alias_sampler import AliasSampler
from repro.sampling.base import (
    NumpyRandomSource,
    RandomSource,
    RingRandomSource,
    SampleOutcome,
    Sampler,
    StepContext,
)
from repro.sampling.its import (
    InverseTransformSampler,
    build_its_cdf,
    build_its_row_totals,
    exact_distribution,
)
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.uniform import UniformSampler
from repro.sampling.vectorized import (
    BatchSample,
    QueryStreams,
    VectorizedKernel,
    make_kernel,
)

__all__ = [
    "AliasSampler",
    "BatchSample",
    "InverseTransformSampler",
    "NumpyRandomSource",
    "QueryStreams",
    "VectorizedKernel",
    "make_kernel",
    "RandomSource",
    "RejectionSampler",
    "ReservoirSampler",
    "RingRandomSource",
    "SampleOutcome",
    "Sampler",
    "StepContext",
    "UniformSampler",
    "build_its_cdf",
    "build_its_row_totals",
    "exact_distribution",
]
