"""Sampling substrate: the Table I sampling algorithms behind one protocol."""

from repro.sampling.alias_sampler import AliasSampler
from repro.sampling.base import (
    NumpyRandomSource,
    RandomSource,
    RingRandomSource,
    SampleOutcome,
    Sampler,
    StepContext,
)
from repro.sampling.hybrid import (
    SAMPLER_MODES,
    BiasedScanKernel,
    HybridConfig,
    HybridKernel,
    HybridSampler,
    make_walk_kernel,
    make_walk_sampler,
    resolve_strategy_codes,
    select_row_strategy,
    select_strategies,
    validate_sampler_mode,
)
from repro.sampling.its import (
    InverseTransformSampler,
    build_its_cdf,
    build_its_row_totals,
    exact_distribution,
)
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.uniform import UniformSampler
from repro.sampling.vectorized import (
    BatchSample,
    ITSKernel,
    QueryStreams,
    VectorizedKernel,
    make_kernel,
)

__all__ = [
    "AliasSampler",
    "BatchSample",
    "BiasedScanKernel",
    "HybridConfig",
    "HybridKernel",
    "HybridSampler",
    "ITSKernel",
    "InverseTransformSampler",
    "NumpyRandomSource",
    "QueryStreams",
    "SAMPLER_MODES",
    "VectorizedKernel",
    "make_kernel",
    "make_walk_kernel",
    "make_walk_sampler",
    "RandomSource",
    "RejectionSampler",
    "ReservoirSampler",
    "RingRandomSource",
    "SampleOutcome",
    "Sampler",
    "StepContext",
    "UniformSampler",
    "build_its_cdf",
    "build_its_row_totals",
    "exact_distribution",
    "resolve_strategy_codes",
    "select_row_strategy",
    "select_strategies",
    "validate_sampler_mode",
]
