"""Rejection sampling for Node2Vec on unweighted graphs (Table I row 3).

Node2Vec biases the choice of the next vertex ``x`` from current vertex
``v`` given the previous vertex ``t``:

* bias ``1/p`` when ``x == t``        (return),
* bias ``1``   when ``x`` is adjacent to ``t``  (distance 1),
* bias ``1/q`` otherwise              (explore).

Rejection sampling (used by gSampler and KnightKing) proposes a uniform
neighbor, then accepts with probability ``bias / max_bias``.  It needs no
preprocessing and keeps the RP entry at 64 bits, but each retry costs a
fresh proposal plus an adjacency probe of ``t``'s neighbor list — the
data-dependent inner loop the paper's scheduler absorbs.
"""

from __future__ import annotations

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext

#: Safety valve: the accept probability is always >= min_bias/max_bias > 0,
#: so this bound is never hit in practice, but it turns a latent infinite
#: loop into a diagnosable error.
_MAX_REJECTION_ROUNDS = 10_000


class RejectionSampler(Sampler):
    """Node2Vec second-order sampling by acceptance/rejection."""

    rp_entry_bits = 64
    name = "rejection"

    def __init__(self, p: float = 2.0, q: float = 0.5) -> None:
        if p <= 0 or q <= 0:
            raise SamplingError(f"node2vec parameters must be positive, got p={p}, q={q}")
        self.p = p
        self.q = q
        self._return_bias = 1.0 / p
        self._explore_bias = 1.0 / q
        self._max_bias = max(self._return_bias, 1.0, self._explore_bias)

    def bias(self, graph: CSRGraph, prev_vertex: int | None, candidate: int) -> float:
        """The Node2Vec bias of moving to ``candidate``."""
        if prev_vertex is None:
            return 1.0  # first hop degenerates to uniform
        if candidate == prev_vertex:
            return self._return_bias
        if graph.has_edge(prev_vertex, candidate):
            return 1.0
        return self._explore_bias

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        neighbors = graph.neighbors(context.vertex)
        prev = context.prev_vertex
        prev_degree = graph.degree(prev) if prev is not None else 0
        proposals = 0
        reads = 0
        while True:
            proposals += 1
            if proposals > _MAX_REJECTION_ROUNDS:
                raise SamplingError(
                    f"rejection sampling failed to accept after {_MAX_REJECTION_ROUNDS} "
                    f"rounds at vertex {context.vertex} (p={self.p}, q={self.q})"
                )
            index = random_source.randint(degree)
            candidate = int(neighbors[index])
            reads += 1
            if prev is not None and candidate != prev:
                # Adjacency probe of t's neighbor list costs O(deg(t)) reads
                # in the worst case; hardware does a bounded scan.
                reads += prev_degree
            accept_probability = self.bias(graph, prev, candidate) / self._max_bias
            if random_source.uniform() < accept_probability:
                return SampleOutcome(index=index, proposals=proposals, neighbor_reads=reads)
