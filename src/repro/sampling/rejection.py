"""Rejection sampling for Node2Vec on unweighted graphs (Table I row 3).

Node2Vec biases the choice of the next vertex ``x`` from current vertex
``v`` given the previous vertex ``t``:

* bias ``1/p`` when ``x == t``        (return),
* bias ``1``   when ``x`` is adjacent to ``t``  (distance 1),
* bias ``1/q`` otherwise              (explore).

Rejection sampling (used by gSampler and KnightKing) proposes a uniform
neighbor, then accepts with probability ``bias / max_bias``.  It needs no
preprocessing and keeps the RP entry at 64 bits, but each retry costs a
fresh proposal plus an adjacency probe of ``t``'s neighbor list — the
data-dependent inner loop the paper's scheduler absorbs.
"""

from __future__ import annotations

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext

#: Safety valve: the accept probability is always >= min_bias/max_bias > 0,
#: so this bound is never hit in practice, but it turns a latent infinite
#: loop into a diagnosable error.
_MAX_REJECTION_ROUNDS = 10_000


class RejectionSampler(Sampler):
    """Node2Vec second-order sampling by acceptance/rejection."""

    rp_entry_bits = 64
    name = "rejection"

    def __init__(self, p: float = 2.0, q: float = 0.5) -> None:
        if p <= 0 or q <= 0:
            raise SamplingError(f"node2vec parameters must be positive, got p={p}, q={q}")
        self.p = p
        self.q = q
        # Public: the vectorized RejectionKernel reuses these derived
        # biases so both engines share one source of truth.
        self.return_bias = 1.0 / p
        self.explore_bias = 1.0 / q
        self.max_bias = max(self.return_bias, 1.0, self.explore_bias)

    def bias(self, graph: CSRGraph, prev_vertex: int | None, candidate: int) -> float:
        """The Node2Vec bias of moving to ``candidate``."""
        if prev_vertex is None:
            return 1.0  # first hop degenerates to uniform
        if candidate == prev_vertex:
            return self.return_bias
        if graph.has_edge(prev_vertex, candidate):
            return 1.0
        return self.explore_bias

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        neighbors = graph.neighbors(context.vertex)
        prev = context.prev_vertex
        if prev is None:
            # First hop: every candidate has bias 1.0, so the walk is
            # exactly uniform — accept the first proposal outright rather
            # than spinning through rejections at probability 1/max_bias,
            # which inflated proposal/read counters in the cost models.
            return SampleOutcome(
                index=random_source.randint(degree), proposals=1, neighbor_reads=1
            )
        prev_degree = graph.degree(prev)
        proposals = 0
        reads = 0
        while True:
            proposals += 1
            if proposals > _MAX_REJECTION_ROUNDS:
                raise SamplingError(
                    f"rejection sampling failed to accept after {_MAX_REJECTION_ROUNDS} "
                    f"rounds at vertex {context.vertex} (p={self.p}, q={self.q})"
                )
            index = random_source.randint(degree)
            candidate = int(neighbors[index])
            reads += 1
            if candidate != prev:
                # Adjacency probe of t's neighbor list costs O(deg(t)) reads
                # in the worst case; hardware does a bounded scan.
                reads += prev_degree
            accept_probability = self.bias(graph, prev, candidate) / self.max_bias
            if random_source.uniform() < accept_probability:
                return SampleOutcome(index=index, proposals=proposals, neighbor_reads=reads)
