"""Inverse-transform sampling — the textbook weighted baseline.

Not in Table I's accelerator configurations, but used by CPU engines
(ThunderRW offers it) and by our test suite as an independent oracle for
the weighted samplers: alias and reservoir sampling must converge to the
same neighbor distribution ITS realizes by construction.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext


class InverseTransformSampler(Sampler):
    """Weighted sampling by prefix-sum CDF scan (O(d) per draw)."""

    rp_entry_bits = 64
    name = "inverse-transform"

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        weights = graph.neighbor_weights(context.vertex)
        total = float(weights.sum())
        target = random_source.uniform() * total
        cumulative = 0.0
        reads = 0
        for i in range(degree):
            reads += 1
            cumulative += float(weights[i])
            if target < cumulative:
                return SampleOutcome(index=i, proposals=1, neighbor_reads=reads)
        # Floating point round-off can leave target == total; take the last.
        return SampleOutcome(index=degree - 1, proposals=1, neighbor_reads=reads)


def exact_distribution(graph: CSRGraph, vertex: int) -> np.ndarray:
    """The neighbor distribution ITS realizes (weights normalized)."""
    weights = graph.neighbor_weights(vertex)
    return weights / weights.sum()
