"""Inverse-transform sampling — the textbook weighted baseline.

Not in Table I's accelerator configurations, but used by CPU engines
(ThunderRW offers it) and by our test suite as an independent oracle for
the weighted samplers: alias and reservoir sampling must converge to the
same neighbor distribution ITS realizes by construction.

The sampler has two equivalent paths.  Unprepared, each draw computes
its row's CDF on the fly (the original behaviour).  Prepared —
:meth:`InverseTransformSampler.prepare` or a state hand-off via
:meth:`load_state` — the flat per-vertex CDF rows built by
:func:`build_its_cdf` are scanned in place, skipping the per-draw
``cumsum``.  The two paths are **bit-identical** (same index, same reads
accounting), which is what lets the dynamic-graph subsystem maintain
these CDF rows incrementally (:mod:`repro.dynamic.state`) and hand them
to a sampler without changing a single draw.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext


def build_its_cdf(graph: CSRGraph) -> np.ndarray:
    """Flat per-vertex CDF rows, aligned with the CSR column list.

    ``cdf[RP[v] + i]`` is the running weight total of vertex ``v``'s
    first ``i + 1`` out-edges — exactly the ``np.cumsum`` the unprepared
    sampler computes per draw (sequential float64 accumulation, so the
    prefix sums match bit for bit).  Unweighted rows are the exact
    integers ``1..deg(v)``.
    """
    if not graph.is_weighted:
        degrees = graph.degrees()
        starts = graph.row_ptr[:-1]
        within = np.arange(graph.num_edges, dtype=np.int64) - np.repeat(
            starts, degrees
        )
        return (within + 1).astype(np.float64)
    cdf = np.empty(graph.num_edges, dtype=np.float64)
    row_ptr = graph.row_ptr
    for v in range(graph.num_vertices):
        lo, hi = int(row_ptr[v]), int(row_ptr[v + 1])
        if hi > lo:
            cdf[lo:hi] = np.cumsum(graph.weights[lo:hi])
    return cdf


def build_its_row_totals(graph: CSRGraph) -> np.ndarray:
    """Per-vertex total out-weight, length ``|V|``.

    Computed as ``weights[lo:hi].sum()`` per row — numpy's *pairwise*
    summation, deliberately **not** the CDF's sequential last entry: the
    two can differ in the final ulp at higher degrees, and the unprepared
    sampler scales its target by the pairwise sum (see
    :meth:`InverseTransformSampler.sample`).  Bit-identity between the
    prepared and unprepared paths requires reproducing that choice.
    """
    if not graph.is_weighted:
        return graph.degrees().astype(np.float64)
    totals = np.empty(graph.num_vertices, dtype=np.float64)
    row_ptr = graph.row_ptr
    for v in range(graph.num_vertices):
        lo, hi = int(row_ptr[v]), int(row_ptr[v + 1])
        totals[v] = graph.weights[lo:hi].sum() if hi > lo else 0.0
    return totals


class InverseTransformSampler(Sampler):
    """Weighted sampling by prefix-sum CDF scan (O(d) per draw)."""

    rp_entry_bits = 64
    name = "inverse-transform"

    def __init__(self) -> None:
        self._cdf: np.ndarray | None = None
        self._row_totals: np.ndarray | None = None
        self._prepared_row_ptr: np.ndarray | None = None

    def prepare(self, graph: CSRGraph) -> None:
        """Build the flat CDF rows once so draws skip the per-row cumsum."""
        self.load_state(build_its_cdf(graph), build_its_row_totals(graph), graph)

    def load_state(
        self, cdf: np.ndarray, row_totals: np.ndarray, graph: CSRGraph
    ) -> None:
        """Adopt externally maintained CDF state (e.g. a dynamic
        snapshot's incrementally updated rows) for ``graph``."""
        if cdf.shape != (graph.num_edges,):
            raise SamplingError("its_cdf must align with the column list")
        if row_totals.shape != (graph.num_vertices,):
            raise SamplingError("its_row_totals must have one entry per vertex")
        self._cdf = cdf
        self._row_totals = row_totals
        # Identity of the row-pointer array marks which graph the state
        # belongs to; sampling against any other graph falls back to the
        # unprepared per-draw path instead of reading foreign offsets.
        self._prepared_row_ptr = graph.row_ptr

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        if self._cdf is not None and self._prepared_row_ptr is graph.row_ptr:
            lo = int(graph.row_ptr[context.vertex])
            cumulative = self._cdf[lo : lo + degree]
            total = float(self._row_totals[context.vertex])
        else:
            weights = graph.neighbor_weights(context.vertex)
            # cumsum + searchsorted replaces the Python accumulation loop
            # with two array ops.  np.cumsum sums float64 sequentially (no
            # pairwise reordering), so the prefix sums match the scalar
            # loop's running total bit-for-bit; the target keeps the
            # loop's own scaling — ``weights.sum()`` (NumPy pairwise),
            # *not* ``cumulative[-1]`` (sequential) — because the two
            # totals can differ in the last ulp at higher degrees, which
            # would flip draws landing exactly on a CDF boundary.
            cumulative = np.cumsum(weights, dtype=np.float64)
            total = float(weights.sum())
        target = random_source.uniform() * total
        # First entry whose running total exceeds the target, i.e. the
        # scalar loop's "target < cumulative" exit.
        index = int(np.searchsorted(cumulative, target, side="right"))
        if index >= degree:
            # Floating point round-off can leave target == total; take the
            # last (the scalar loop fell off the scan having read all).
            index = degree - 1
        # neighbor_reads keeps the sequential-scan accounting: a CDF scan
        # that stops at ``index`` has read ``index + 1`` weights.  The
        # baseline cost models consume this, so neither the vectorization
        # nor the prepared rows may change what a "read" means.
        return SampleOutcome(index=index, proposals=1, neighbor_reads=index + 1)


def exact_distribution(graph: CSRGraph, vertex: int) -> np.ndarray:
    """The neighbor distribution ITS realizes (weights normalized)."""
    weights = graph.neighbor_weights(vertex)
    return weights / weights.sum()
