"""Inverse-transform sampling — the textbook weighted baseline.

Not in Table I's accelerator configurations, but used by CPU engines
(ThunderRW offers it) and by our test suite as an independent oracle for
the weighted samplers: alias and reservoir sampling must converge to the
same neighbor distribution ITS realizes by construction.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext


class InverseTransformSampler(Sampler):
    """Weighted sampling by prefix-sum CDF scan (O(d) per draw)."""

    rp_entry_bits = 64
    name = "inverse-transform"

    def sample(
        self,
        graph: CSRGraph,
        context: StepContext,
        random_source: RandomSource,
    ) -> SampleOutcome:
        degree = self._require_degree(graph, context.vertex)
        weights = graph.neighbor_weights(context.vertex)
        # cumsum + searchsorted replaces the Python accumulation loop with
        # two array ops.  np.cumsum sums float64 sequentially (no pairwise
        # reordering), so the prefix sums match the scalar loop's running
        # total bit-for-bit; the target keeps the loop's own scaling —
        # ``weights.sum()`` (NumPy pairwise), *not* ``cumulative[-1]``
        # (sequential) — because the two totals can differ in the last
        # ulp at higher degrees, which would flip draws landing exactly
        # on a CDF boundary.
        cumulative = np.cumsum(weights, dtype=np.float64)
        target = random_source.uniform() * float(weights.sum())
        # First entry whose running total exceeds the target, i.e. the
        # scalar loop's "target < cumulative" exit.
        index = int(np.searchsorted(cumulative, target, side="right"))
        if index >= degree:
            # Floating point round-off can leave target == total; take the
            # last (the scalar loop fell off the scan having read all).
            index = degree - 1
        # neighbor_reads keeps the sequential-scan accounting: a CDF scan
        # that stops at ``index`` has read ``index + 1`` weights.  The
        # baseline cost models consume this, so the vectorization must not
        # change what a "read" means.
        return SampleOutcome(index=index, proposals=1, neighbor_reads=index + 1)


def exact_distribution(graph: CSRGraph, vertex: int) -> np.ndarray:
    """The neighbor distribution ITS realizes (weights normalized)."""
    weights = graph.neighbor_weights(vertex)
    return weights / weights.sum()
