"""Exception hierarchy for the RidgeWalker reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class at the API boundary.  Subclasses are grouped by subsystem; they
carry plain messages and, where useful, the offending values, because the
simulator surfaces these to benchmark harnesses that want to print context.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Invalid graph structure or construction parameters."""


class GraphFormatError(GraphError):
    """A serialized graph could not be parsed or failed validation."""


class DynamicGraphError(GraphError):
    """An invalid streamed update was applied to a mutable graph."""


class SamplingError(ReproError):
    """A sampler was misconfigured or asked to sample from nothing."""


class WalkConfigError(ReproError):
    """A walk specification is inconsistent (e.g. negative length)."""


class MemoryModelError(ReproError):
    """Memory subsystem misconfiguration (channels, timing, capacity)."""


class DistError(ReproError):
    """A distributed-engine shard worker failed or broke protocol.

    Carries the worker-side traceback in the message when one exists, so
    a crash inside a shard process surfaces with its real stack instead
    of a parent-side timeout.
    """


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent state."""


class DeadlockError(SimulationError):
    """No module made progress while work remained in flight."""

    def __init__(self, cycle: int, in_flight: int, detail: str = "") -> None:
        self.cycle = cycle
        self.in_flight = in_flight
        message = f"simulation deadlocked at cycle {cycle} with {in_flight} tasks in flight"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class SchedulerError(ReproError):
    """Zero-bubble scheduler misconfiguration (port counts, depths)."""


class ResourceModelError(ReproError):
    """FPGA resource estimation was asked about an unknown device/kernel."""


class BenchmarkError(ReproError):
    """An experiment harness was invoked with an unknown id or bad config."""


class ObservabilityError(ReproError):
    """The telemetry layer (tracer, metrics registry, exporter) was misused."""


class ServeError(ReproError):
    """The walk-serving layer was misconfigured or used while stopped."""


class ServeOverloadError(ServeError):
    """A request was shed because the service hit its admission high-water.

    Carries the occupancy the gate observed so callers (and the open-loop
    benchmark) can report how far past capacity the offered load was.
    """

    def __init__(self, occupancy: int, high_water: int) -> None:
        self.occupancy = occupancy
        self.high_water = high_water
        super().__init__(
            f"request shed: {occupancy} requests outstanding >= "
            f"high-water mark {high_water}"
        )
