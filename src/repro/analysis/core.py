"""Rule framework behind ``repro lint``.

Design constraints, in order:

1. **Deterministic output.**  Findings are sorted by ``(path, line,
   col, rule id)`` and fingerprints depend only on file-relative facts,
   so two runs over the same tree — on any machine, in any directory —
   render byte-identical reports.  A linter that polices determinism
   has no business being nondeterministic itself.
2. **No imports of the linted code.**  Everything works on
   ``ast.parse`` output; linting a file can never execute it, pull in
   heavy dependencies, or depend on the interpreter's import state.
3. **Suppressions carry reasons.**  ``# repro: allow[RW103] <reason>``
   silences a finding on its own line (or the line directly above, for
   statements too long to annotate inline).  An allow-comment without a
   reason does *not* suppress — the policy is that every waiver is a
   reviewed, written-down decision — and unused or malformed allows are
   themselves findings (RW100), so waivers cannot rot silently.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import time
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ReproError


class AnalysisError(ReproError):
    """Raised for unusable linter inputs (bad paths, baselines, rule ids)."""


#: Matches one allow-comment.  Group 1: comma-separated rule ids;
#: group 2: the (possibly empty) reason text.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*?)\s*$")

_RULE_ID_RE = re.compile(r"^RW\d{3}$")

#: Rule id used for files the parser rejects; not a registered rule and
#: deliberately not suppressible — a file that does not parse cannot be
#: analyzed at all.
PARSE_ERROR_ID = "RW000"

#: Rule id for suppression hygiene (missing reason / unknown rule id /
#: unused allow).  Registered in :mod:`repro.analysis.rules` so it shows
#: up in ``--list-rules`` with the others.
HYGIENE_ID = "RW100"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int
    snippet: str = ""
    suppressed: bool = False
    suppression_reason: str = ""
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Counts toward the exit code (neither suppressed nor baselined)."""
        return not (self.suppressed or self.baselined)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())


class FileContext:
    """Everything a rule may inspect about one source file.

    The AST carries ``.repro_parent`` links (set once here) so rules can
    look *up* the tree — "is this call a ``with`` context expression?" —
    without each rule re-walking the module.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child.repro_parent = parent  # type: ignore[attr-defined]
        self.suppressions = _parse_suppressions(source)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "repro_parent", None)


class Rule(ABC):
    """One statically checkable invariant.

    Subclasses define ``id`` / ``name`` / ``description`` (the rule
    table in README.md renders from these) and yield findings from
    :meth:`check`.  Rules must be pure functions of the context —
    registry order must never matter.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    @abstractmethod
    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield every violation in ``context`` (suppressions are
        applied by the driver, not by rules)."""

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule_id=self.id,
            message=message,
            path=context.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            snippet=context.line_text(line),
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not _RULE_ID_RE.match(rule.id):
        raise AnalysisError(f"rule id {rule.id!r} does not match RW###")
    if rule.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AnalysisError(
            f"unknown rule id {rule_id!r}; registered rules: {known}"
        ) from None


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    """All allow-comments in ``source``, keyed by line number.

    Tokenize-based so ``# repro: allow[...]`` inside a string literal is
    never mistaken for a suppression.
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for line, text in comments:
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        out[line] = Suppression(line=line, rule_ids=ids, reason=match.group(2))
    return out


def _comment_only_line(context: FileContext, lineno: int) -> bool:
    return context.line_text(lineno).startswith("#")


def _suppression_for(
    context: FileContext, finding: Finding
) -> Suppression | None:
    """The allow-comment covering ``finding``, if any.

    Same line wins; a *standalone* comment on the line directly above is
    accepted for statements too long to annotate inline.
    """
    same = context.suppressions.get(finding.line)
    if same is not None and finding.rule_id in same.rule_ids:
        return same
    above = context.suppressions.get(finding.line - 1)
    if (
        above is not None
        and finding.rule_id in above.rule_ids
        and _comment_only_line(context, finding.line - 1)
    ):
        return above
    return None


def _apply_suppressions(
    context: FileContext, findings: list[Finding]
) -> list[Finding]:
    out = []
    for finding in findings:
        if finding.rule_id == PARSE_ERROR_ID:
            out.append(finding)
            continue
        suppression = _suppression_for(context, finding)
        if suppression is None:
            out.append(finding)
            continue
        suppression.used.add(finding.rule_id)
        if not suppression.has_reason:
            # Policy: a reason-less allow suppresses nothing; RW100
            # below reports the comment itself.
            out.append(finding)
            continue
        out.append(
            replace(
                finding,
                suppressed=True,
                suppression_reason=suppression.reason,
            )
        )
    return out


def _suppression_location(context: FileContext, suppression: Suppression) -> dict:
    return dict(
        rule_id=HYGIENE_ID,
        path=context.path,
        line=suppression.line,
        col=0,
        snippet=context.line_text(suppression.line),
    )


def _malformed_suppression_findings(context: FileContext) -> list[Finding]:
    """RW100 part one: allows with no ids, no reason, or unknown ids."""
    findings = []
    for suppression in context.suppressions.values():
        location = _suppression_location(context, suppression)
        if not suppression.rule_ids:
            findings.append(Finding(
                message="allow-comment lists no rule ids", **location))
            continue
        if not suppression.has_reason:
            ids = ",".join(suppression.rule_ids)
            findings.append(Finding(
                message=f"suppression of {ids} carries no reason; every "
                        f"waiver must say why (policy: README.md "
                        f"'Determinism contract')", **location))
        for rule_id in suppression.rule_ids:
            if not _RULE_ID_RE.match(rule_id) or (
                rule_id not in _REGISTRY and rule_id != HYGIENE_ID
            ):
                findings.append(Finding(
                    message=f"allow-comment names unknown rule {rule_id!r}",
                    **location))
    return findings


def _unused_suppression_findings(
    context: FileContext, selected_ids: set[str]
) -> list[Finding]:
    """RW100 part two: allows that matched no finding this run.

    Runs *after* every other finding (hygiene included) has been matched
    against the allow-comments, so ``used`` is final.  RW100 allows are
    exempt — their use is only recorded while this very check runs.
    """
    findings = []
    for suppression in context.suppressions.values():
        if not suppression.has_reason:
            continue  # already reported as reason-less
        unused = [
            rule_id
            for rule_id in suppression.rule_ids
            if rule_id in selected_ids
            and rule_id != HYGIENE_ID
            and rule_id not in suppression.used
        ]
        if unused:
            findings.append(Finding(
                message=f"unused suppression: no {','.join(unused)} finding "
                        f"on this or the next line — delete the stale allow",
                **_suppression_location(context, suppression)))
    return findings


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run over a set of paths."""

    findings: tuple[Finding, ...]
    files_scanned: int
    elapsed_seconds: float
    rule_ids: tuple[str, ...]

    @property
    def active(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.active)

    @property
    def suppressed(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def baselined(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.baselined)

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def fingerprint(finding: Finding, occurrence: int) -> str:
    """Stable identity for baseline matching.

    Line numbers drift with every edit, so the fingerprint hashes the
    *content* of the flagged line (plus an occurrence index for repeats)
    instead — a finding survives unrelated edits above it, and any edit
    to the flagged line itself invalidates the baseline entry, forcing a
    fresh look.
    """
    basis = "\0".join(
        [Path(finding.path).name, finding.rule_id, finding.snippet,
         str(occurrence)]
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def _fingerprints(findings: Sequence[Finding]) -> list[str]:
    counts: dict[tuple[str, str, str], int] = {}
    out = []
    for finding in findings:
        key = (Path(finding.path).name, finding.rule_id, finding.snippet)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append(fingerprint(finding, occurrence))
    return out


def load_baseline(path: str | Path) -> frozenset[str]:
    """Fingerprints recorded by a previous ``--write-baseline`` run."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise AnalysisError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"unreadable baseline {path}: {exc}") from None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != 1
        or not isinstance(payload.get("fingerprints"), list)
    ):
        raise AnalysisError(
            f"baseline {path} is not a version-1 repro-lint baseline"
        )
    return frozenset(str(item) for item in payload["fingerprints"])


def write_baseline(path: str | Path, report: LintReport) -> int:
    """Record the run's unsuppressed findings; returns the entry count."""
    prints = sorted(_fingerprints(report.active))
    payload = {
        "version": 1,
        "tool": "repro lint",
        "fingerprints": prints,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(prints)


def _select_rules(select: Sequence[str] | None) -> tuple[Rule, ...]:
    if select is None:
        return all_rules()
    return tuple(get_rule(rule_id) for rule_id in sorted(set(select)))


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob (the unit the fixture tests use)."""
    rules = _select_rules(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    context = FileContext(path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        if rule.id == HYGIENE_ID:
            continue  # hygiene runs after suppression matching, below
        findings.extend(rule.check(context))
    findings = _apply_suppressions(context, findings)
    selected_ids = {rule.id for rule in rules}
    if HYGIENE_ID in selected_ids:
        malformed = _malformed_suppression_findings(context)
        findings.extend(_apply_suppressions(context, malformed))
        unused = _unused_suppression_findings(context, selected_ids)
        findings.extend(_apply_suppressions(context, unused))
    return sorted(findings, key=Finding.sort_key)


def _python_files(paths: Iterable[str | Path]) -> list[Path]:
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.is_file():
            out.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return sorted(out)


def _display_path(path: Path) -> str:
    """Relative to the working directory when possible (stable, short)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    baseline: frozenset[str] | None = None,
) -> LintReport:
    """Lint files/directories and return the combined report."""
    started = time.perf_counter()
    rules = _select_rules(select)
    findings: list[Finding] = []
    files = _python_files(paths)
    for path in files:
        source = path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=_display_path(path), select=select)
        )
    findings.sort(key=Finding.sort_key)
    if baseline:
        # Fingerprint over *active* findings only — the same population
        # write_baseline records — so occurrence indices line up even
        # when suppressed twins of a finding exist.
        active = [finding for finding in findings if finding.active]
        matched = {
            id(finding)
            for finding, print_ in zip(active, _fingerprints(active))
            if print_ in baseline
        }
        findings = [
            replace(finding, baselined=True) if id(finding) in matched
            else finding
            for finding in findings
        ]
    return LintReport(
        findings=tuple(findings),
        files_scanned=len(files),
        elapsed_seconds=time.perf_counter() - started,
        rule_ids=tuple(rule.id for rule in rules),
    )
