"""The shipped RW1xx rules.

Each rule statically enforces one invariant the conformance matrix can
only spot-check:

========  ==========================================================
RW100     suppression hygiene (reason-less / unknown / unused allows)
RW101     global-state RNG (``np.random.<fn>`` / stdlib ``random``)
RW102     ad-hoc seed derivation (arithmetic on seeds fed to RNGs)
RW103     ``SharedMemory(create=True)`` without guaranteed unlink
RW104     blocking calls inside ``async def`` bodies
RW105     ``set`` iteration feeding ordered outputs
RW106     ``@njit`` kernels compiled without ``cache=True``
RW107     ``time.time()`` differences measuring durations
========  ==========================================================

All checks are heuristic AST pattern matches — they see names, not
types.  False positives are expected to be rare and are what the
``# repro: allow[RW###] <reason>`` mechanism exists for; false
negatives are bounded by the dynamic conformance suites that still run
behind this layer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    Finding,
    HYGIENE_ID,
    Rule,
    register_rule,
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(call: ast.Call) -> str | None:
    return dotted_name(call.func)


def _numpy_random_roots(tree: ast.Module) -> set[str]:
    """Dotted prefixes that mean ``numpy.random`` in this module."""
    roots = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    roots.add(f"{alias.asname or alias.name}.random")
                elif alias.name == "numpy.random":
                    roots.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    roots.add(alias.asname or alias.name)
    return roots


def _stdlib_random_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases, directly imported function names) for stdlib
    ``random``."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                functions.add(alias.asname or alias.name)
    return modules, functions


#: Legacy ``numpy.random`` module-level draw/state functions.  Anything
#: here consumes the *global* NumPy RNG — hidden cross-call coupling the
#: per-query ``SeedSequence`` contract forbids.
_NP_GLOBAL_FNS = frozenset({
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random_integers",
    "random", "random_sample", "ranf", "sample",
    "choice", "bytes", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "lognormal",
    "beta", "binomial", "chisquare", "dirichlet", "exponential",
    "gamma", "geometric", "gumbel", "hypergeometric", "laplace",
    "logistic", "multinomial", "multivariate_normal",
    "negative_binomial", "pareto", "poisson", "power", "rayleigh",
    "triangular", "vonmises", "wald", "weibull", "zipf",
})

_STDLIB_RANDOM_FNS = frozenset({
    "seed", "random", "randint", "randrange", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform",
    "triangular", "betavariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate",
})


@register_rule
class GlobalRNGRule(Rule):
    id = "RW101"
    name = "global-state-rng"
    description = (
        "Module-level RNG calls (np.random.<fn>, stdlib random.<fn>) draw "
        "from hidden global state, so results depend on call order across "
        "the whole process. Root every stream in "
        "np.random.default_rng(SeedSequence((seed, tag))) instead."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        np_roots = _numpy_random_roots(context.tree)
        rand_modules, rand_functions = _stdlib_random_names(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            root, _, fn = name.rpartition(".")
            if root in np_roots and fn in _NP_GLOBAL_FNS:
                yield self.finding(
                    context, node,
                    f"{name}() draws from numpy's global RNG; use "
                    f"np.random.default_rng(SeedSequence((seed, tag)))",
                )
            elif root in rand_modules and fn in _STDLIB_RANDOM_FNS:
                yield self.finding(
                    context, node,
                    f"{name}() draws from the stdlib global RNG; use a "
                    f"seeded np.random.Generator",
                )
            elif not root and name in rand_functions:
                yield self.finding(
                    context, node,
                    f"{name}() (from random import ...) draws from the "
                    f"stdlib global RNG; use a seeded np.random.Generator",
                )


#: RNG constructors whose positional seed argument RW102 inspects.
_RNG_CTOR_SUFFIXES = (
    "default_rng", "SeedSequence", "RandomState",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
)

_BAD_SEED_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod,
    ast.BitXor, ast.BitOr, ast.BitAnd, ast.LShift, ast.RShift,
)


def _mentions_seed(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


def _is_adhoc_seed_expr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, _BAD_SEED_OPS)
        and _mentions_seed(node)
    )


@register_rule
class SeedDerivationRule(Rule):
    id = "RW102"
    name = "ad-hoc-seed-derivation"
    description = (
        "Deriving child seeds by arithmetic or xor (seed + 1, seed ^ SALT) "
        "can collide across call sites and correlate streams. Derive with "
        "SeedSequence spawn keys: np.random.SeedSequence((seed, tag)) or "
        "repro.sampling.base.derive_seed(seed, tag)."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node) or ""
            is_rng_ctor = name.endswith(_RNG_CTOR_SUFFIXES)
            candidates: list[tuple[ast.AST, str]] = []
            if is_rng_ctor and node.args:
                candidates.append((node.args[0], f"{name}()'s seed"))
            for keyword in node.keywords:
                if keyword.arg and (
                    keyword.arg == "seed" or keyword.arg.endswith("_seed")
                ):
                    candidates.append((keyword.value, f"{keyword.arg}="))
            for expr, what in candidates:
                if _is_adhoc_seed_expr(expr):
                    yield self.finding(
                        context, expr,
                        f"ad-hoc seed derivation feeding {what}: use "
                        f"SeedSequence((seed, tag)) spawn keys (or "
                        f"derive_seed) so child streams cannot collide",
                    )


def _enclosing_scope(context: FileContext, node: ast.AST) -> ast.AST:
    current = context.parent(node)
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        current = context.parent(current)
    return current if current is not None else context.tree


def _unlinks_in(nodes: list[ast.stmt]) -> bool:
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "unlink"
            ):
                return True
    return False


@register_rule
class SharedMemoryLifecycleRule(Rule):
    id = "RW103"
    name = "shared-memory-lifecycle"
    description = (
        "A SharedMemory(create=True) segment outlives the process unless "
        "unlink() runs on every path; a crash between creation and cleanup "
        "registration leaks /dev/shm until reboot. Create inside a with "
        "block or guard the handoff with try/except+unlink (see "
        "SharedArrayStore.create)."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node) or ""
            if not name.endswith("SharedMemory"):
                continue
            creates = any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not creates:
                continue
            if self._guarded(context, node):
                continue
            yield self.finding(
                context, node,
                "SharedMemory(create=True) without a guaranteed unlink: "
                "wrap in `with` or follow with try/except that close()s "
                "and unlink()s the segment before re-raising",
            )

    def _guarded(self, context: FileContext, node: ast.Call) -> bool:
        # Case 1: context-manager expression of a `with` item.
        parent = context.parent(node)
        if isinstance(parent, ast.withitem):
            return True
        # Case 2: some try/except/finally in the same scope, at or after
        # the creation site, unlinks a segment.  Deliberately loose —
        # proving "all paths" needs dataflow; the heuristic demands the
        # author at least wrote a cleanup path, and review judges it.
        scope = _enclosing_scope(context, node)
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.Try):
                continue
            if sub.end_lineno is not None and sub.end_lineno < node.lineno:
                continue
            handler_bodies = [stmt for h in sub.handlers for stmt in h.body]
            if _unlinks_in(sub.finalbody) or _unlinks_in(handler_bodies):
                return True
        return False


#: Call targets that block the event loop.  Dotted entries match the
#: qualified call name's suffix; bare entries match exact bare calls.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() stalls the event loop; await "
                  "asyncio.sleep() instead",
    "os.system": "os.system() blocks; use asyncio.create_subprocess_shell",
    "subprocess.run": "subprocess.run() blocks; use asyncio subprocesses",
    "subprocess.call": "subprocess.call() blocks; use asyncio subprocesses",
    "subprocess.check_call": "blocks; use asyncio subprocesses",
    "subprocess.check_output": "blocks; use asyncio subprocesses",
    "socket.create_connection": "blocks; use asyncio.open_connection",
}

_BLOCKING_BARE = {
    "open": "synchronous file I/O on the event loop; run it in an "
            "executor (loop.run_in_executor)",
    "input": "console input blocks the event loop",
    # This repository's synchronous engine entry points: a direct call
    # from a coroutine runs the whole walk batch on the event loop,
    # freezing admission, flush timers, and every other request.
    "run_walks": "synchronous engine entry point; dispatch via "
                 "loop.run_in_executor as WalkService._execute does",
    "run_walks_batch": "synchronous engine entry point; dispatch via "
                       "loop.run_in_executor as WalkService._execute does",
    "run_software_walks": "synchronous engine entry point; dispatch via "
                          "loop.run_in_executor",
    "prepare_engine": "engine preparation is CPU-bound (alias/CDF "
                      "builds); run it in an executor",
}


@register_rule
class BlockingAsyncRule(Rule):
    id = "RW104"
    name = "blocking-call-in-async"
    description = (
        "A blocking call inside an async def body stalls the event loop: "
        "micro-batch flush timers, admission, and every concurrent request "
        "stop until it returns. Await an async equivalent or dispatch via "
        "loop.run_in_executor."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from self._visit(context, context.tree, in_async=False)

    def _visit(
        self, context: FileContext, node: ast.AST, in_async: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                yield from self._visit(context, child, in_async=True)
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                # A nested sync def is just a value here; it only blocks
                # if *called* on the loop, which its own body can't show.
                yield from self._visit(context, child, in_async=False)
            else:
                if in_async and isinstance(child, ast.Call):
                    finding = self._check_call(context, child)
                    if finding is not None:
                        yield finding
                yield from self._visit(context, child, in_async=in_async)

    def _check_call(self, context: FileContext, call: ast.Call) -> Finding | None:
        name = _call_name(call)
        if name is None:
            return None
        for target, why in _BLOCKING_CALLS.items():
            if name == target or name.endswith("." + target):
                return self.finding(
                    context, call, f"blocking call {name}() in async def: {why}"
                )
        if name in _BLOCKING_BARE:
            return self.finding(
                context, call,
                f"blocking call {name}() in async def: {_BLOCKING_BARE[name]}",
            )
        return None


#: Consumers that turn their argument into an *ordered* artifact.
_ORDERING_CALLS = frozenset({"list", "tuple", "enumerate"})
_ORDERING_CALL_SUFFIXES = (".array", ".asarray", ".fromiter", ".concatenate")
_SET_OPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)


def _set_assignments(scope: ast.AST) -> set[str]:
    """Names bound to set-typed expressions by simple assignments."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _is_setlike(node.value, names):
                names.add(target.id)
    return names


def _is_setlike(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_setlike(node.left, set_names) or _is_setlike(
            node.right, set_names
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


@register_rule
class SetOrderRule(Rule):
    id = "RW105"
    name = "set-iteration-order"
    description = (
        "Iterating a set into an ordered output (list, array, loop body, "
        "joined string) bakes hash-table order into results; with salted "
        "str hashing that order changes across processes, breaking "
        "bit-identity. Wrap the set in sorted() first."
    )

    _advice = "set iteration order is not part of the determinism " \
              "contract; wrap it in sorted()"

    def check(self, context: FileContext) -> Iterator[Finding]:
        set_names = _set_assignments(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_setlike(node.iter, set_names):
                    yield self.finding(
                        context, node.iter,
                        f"for-loop over a set feeds ordered work: {self._advice}",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_setlike(generator.iter, set_names):
                        yield self.finding(
                            context, generator.iter,
                            f"comprehension over a set builds an ordered "
                            f"result: {self._advice}",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(context, node, set_names)

    def _check_call(
        self, context: FileContext, call: ast.Call, set_names: set[str]
    ) -> Iterator[Finding]:
        if not call.args or not _is_setlike(call.args[0], set_names):
            return
        name = dotted_name(call.func)
        if name in _ORDERING_CALLS or (
            name is not None and name.endswith(_ORDERING_CALL_SUFFIXES)
        ):
            yield self.finding(
                context, call.args[0],
                f"{name}() over a set produces an ordered artifact: "
                f"{self._advice}",
            )
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "join":
            yield self.finding(
                context, call.args[0],
                f"str.join over a set serializes in hash order: {self._advice}",
            )


def _is_njit_name(node: ast.AST) -> bool:
    name = dotted_name(node)
    return name is not None and (name == "njit" or name.endswith(".njit"))


@register_rule
class NumbaCacheRule(Rule):
    id = "RW106"
    name = "njit-without-disk-cache"
    description = (
        "An @njit kernel without cache=True recompiles from scratch in "
        "every process — worker pools and CI lanes each pay the full "
        "nopython compile instead of hitting the on-disk cache, turning "
        "a one-time cost into a per-process stall. Decorate with "
        "@njit(cache=True)."
    )

    _advice = "pass cache=True so compiled kernels persist across processes"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                yield from self._check_decorator(context, node, decorator)

    def _check_decorator(
        self, context: FileContext, function: ast.AST, decorator: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(decorator, ast.Call):
            if not _is_njit_name(decorator.func):
                return
            for keyword in decorator.keywords:
                if keyword.arg == "cache":
                    # Any explicit cache= is a decision, not an omission;
                    # cache=False on purpose deserves an allow comment.
                    if (isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True):
                        return
                    yield self.finding(
                        context, decorator,
                        f"@njit on {function.name!r} sets cache to a "
                        f"non-True value: {self._advice}",
                    )
                    return
            yield self.finding(
                context, decorator,
                f"@njit call on {function.name!r} omits cache=True: "
                f"{self._advice}",
            )
        elif _is_njit_name(decorator):
            yield self.finding(
                context, decorator,
                f"bare @njit on {function.name!r} cannot cache its "
                f"compile: {self._advice}",
            )


def _time_time_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names that mean ``time.time`` in this module.

    Returns ``(dotted, bare)``: dotted call names from ``import time``
    (including ``import time as t`` -> ``t.time``) and bare names from
    ``from time import time`` (including ``as`` aliases).
    """
    dotted: set[str] = set()
    bare: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    dotted.add(f"{alias.asname or alias.name}.time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    bare.add(alias.asname or alias.name)
    return dotted, bare


@register_rule
class WallClockDurationRule(Rule):
    id = "RW107"
    name = "wall-clock-duration"
    description = (
        "Subtracting time.time() readings measures the wall clock, which "
        "NTP can step or slew mid-interval — durations come out wrong or "
        "negative, and telemetry (spans, latency ledgers, benchmark "
        "gates) built on them lies. Measure durations with "
        "time.perf_counter() or time.monotonic(); time.time() is only "
        "for timestamps of record."
    )

    _advice = (
        "use time.perf_counter() (or time.monotonic()) for durations; "
        "time.time() is wall-clock and not monotonic"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        dotted, bare = _time_time_names(context.tree)
        if not dotted and not bare:
            return
        # File-level aggregation of names bound to time.time() readings
        # by simple assignment — coarse (ignores scopes), but a name like
        # `started = time.time()` being subtracted anywhere in the file
        # is exactly the pattern this rule exists to catch.
        tracked: set[str] = set()
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_time_call(node.value, dotted, bare)
            ):
                tracked.add(node.targets[0].id)
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)):
                continue
            operands = (node.left, node.right)
            if any(self._is_time_call(op, dotted, bare) for op in operands):
                yield self.finding(
                    context, node,
                    f"time.time() difference measures a duration: {self._advice}",
                )
            elif all(
                isinstance(op, ast.Name) and op.id in tracked for op in operands
            ):
                yield self.finding(
                    context, node,
                    f"difference of wall-clock readings "
                    f"({ast.unparse(node.left)} - {ast.unparse(node.right)}) "
                    f"measures a duration: {self._advice}",
                )

    @staticmethod
    def _is_time_call(node: ast.AST, dotted: set[str], bare: set[str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _call_name(node)
        return name is not None and (name in dotted or name in bare)


@register_rule
class SuppressionHygieneRule(Rule):
    """Placeholder carrying RW100's id/name/description.

    The actual checks live in :mod:`repro.analysis.core` — they need
    the post-matching suppression state no per-file AST pass can see —
    so :meth:`check` is intentionally empty.
    """

    id = HYGIENE_ID
    name = "suppression-hygiene"
    description = (
        "Every `# repro: allow[RW###]` must carry a reason, name a known "
        "rule, and actually suppress something; reason-less allows "
        "suppress nothing and stale allows are reported so waivers cannot "
        "rot silently."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        return iter(())
