"""Text and JSON reporters for ``repro lint``.

Both render the same :class:`~repro.analysis.core.LintReport`, findings
already sorted by ``(path, line, col, rule id)``; nothing here may
introduce ordering of its own (dict iteration over sorted inputs only),
so output is byte-stable across runs and machines.
"""

from __future__ import annotations

import json

from repro.analysis.core import Finding, LintReport


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary.

    ``verbose`` additionally lists suppressed/baselined findings with
    their recorded reasons — the audit view of every active waiver.
    """
    lines = []
    for finding in report.active:
        lines.append(
            f"{finding.location()}: {finding.rule_id} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule_id} suppressed "
                f"({finding.suppression_reason})"
            )
        for finding in report.baselined:
            lines.append(
                f"{finding.location()}: {finding.rule_id} baselined"
            )
    lines.append(
        f"{len(report.active)} finding(s) "
        f"({len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined) in "
        f"{report.files_scanned} file(s) "
        f"[{report.elapsed_seconds * 1e3:.0f} ms]"
    )
    return "\n".join(lines)


def _finding_payload(finding: Finding) -> dict:
    payload = {
        "rule": finding.rule_id,
        "message": finding.message,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col + 1,
        "snippet": finding.snippet,
        "status": (
            "suppressed" if finding.suppressed
            else "baselined" if finding.baselined
            else "active"
        ),
    }
    if finding.suppressed:
        payload["reason"] = finding.suppression_reason
    return payload


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    payload = {
        "version": 1,
        "tool": "repro lint",
        "rules": list(report.rule_ids),
        "files_scanned": report.files_scanned,
        "elapsed_seconds": round(report.elapsed_seconds, 6),
        "counts": {
            "active": len(report.active),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
        "findings": [_finding_payload(f) for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
