"""Determinism & resource-safety static analysis (``repro lint``).

The repository's correctness story rests on invariants the conformance
suites can only *sample*: every RNG stream must be rooted in
``SeedSequence((seed, tag))`` spawn keys, shared-memory segments must be
unlinked on every path, the asyncio serve path must never block its
event loop, and anything ordered must never be fed from a ``set``.
This package enforces those invariants *statically*, over the AST, so a
violation is caught the moment it is written rather than the first time
a 20-seed sweep happens to hit it.

Layout:

* :mod:`repro.analysis.core` — the rule framework: :class:`Finding`,
  :class:`Rule` + registry, per-file contexts with parent-annotated
  ASTs, ``# repro: allow[RW###] <reason>`` suppression handling, and
  the optional fingerprint baseline;
* :mod:`repro.analysis.rules` — the shipped RW1xx rules;
* :mod:`repro.analysis.report` — deterministic text / JSON reporters.

Entry points: ``repro lint`` (CLI), :func:`lint_paths` (API).
"""

from repro.analysis.core import (
    Finding,
    LintReport,
    Rule,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    write_baseline,
)
from repro.analysis.report import render_json, render_text

# Importing the rules module registers every shipped rule.
from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "write_baseline",
]
