"""Dispatcher and Merger — Algorithms VI.1 and VI.2 of the paper.

These are the two O(1) primitives the zero-bubble scheduler composes
into butterfly networks.  Both are fully pipelined with a one-cycle
initiation interval and a fixed two-cycle latency (Section VI-C), and
both carry a one-bit ``last_selection`` state used to alternate service
and guarantee fairness under worst-case congestion.

The scode-driven policies are implemented exactly as the pseudo-code:

Dispatcher (Alg VI.1), routing one input to two outputs:
  * both outputs have space  -> pick the **not-last-served** output;
  * both outputs full        -> **block on the not-last-served** output
    (committing to it prevents persistent preemption of one side);
  * exactly one output free  -> route there to avoid stalling.

Merger (Alg VI.2), merging two inputs into one output:
  * both inputs valid   -> take the **not-last-served** input;
  * one input valid     -> forward it regardless of history;
  * both empty          -> idle.
  A ``priority_input`` override implements scheduler module (2), which
  "prioritizes in-flight unfinished queries" over newly injected ones.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SchedulerError
from repro.sim.fifo import StreamFifo
from repro.sim.module import Module

#: Both primitives are "fully pipelined with ... a fixed latency of two
#: cycles" (Section VI-C2/C3).
UNIT_LATENCY = 2


class Dispatcher(Module):
    """Algorithm VI.1: balanced two-way task dispatch.

    One deliberate deviation from the pseudo-code: the both-full rule
    commits to blocking on the not-last-served output, but an unbounded
    commitment can deadlock a butterfly under heavy congestion (the
    committed output may only drain *through* the congested region the
    dispatcher itself is wedging).  The commitment is therefore held for
    a bounded patience window; if the committed side is still full while
    the other side has space, the task escapes through the free side.
    Fairness degrades from strict alternation to statistical alternation
    only in the saturated corner case.
    """

    #: Cycles to honor a both-full commitment before taking any free exit.
    COMMIT_PATIENCE = 8

    def __init__(
        self,
        name: str,
        input_fifo: StreamFifo,
        out0: StreamFifo,
        out1: StreamFifo,
        latency: int = UNIT_LATENCY,
    ) -> None:
        super().__init__(name)
        if latency < 1:
            raise SchedulerError("latency must be >= 1")
        self.input_fifo = input_fifo
        self.outputs = (out0, out1)
        self.latency = latency
        self.last_selection = 0
        self._pipe: deque[tuple[int, Any]] = deque()
        #: Output we committed to while both were full (fairness rule),
        #: and how long we have been honoring that commitment.
        self._blocked_on: int | None = None
        self._blocked_cycles = 0
        self.sent = [0, 0]

    def _choose(self) -> int | None:
        full0 = self.outputs[0].is_full()
        full1 = self.outputs[1].is_full()
        if self._blocked_on is not None:
            committed = self._blocked_on
            if not self.outputs[committed].is_full():
                self._blocked_on = None
                self._blocked_cycles = 0
                return committed
            self._blocked_cycles += 1
            other = 1 - committed
            if self._blocked_cycles > self.COMMIT_PATIENCE and not self.outputs[other].is_full():
                self._blocked_on = None
                self._blocked_cycles = 0
                return other
            return None
        if not full0 and not full1:
            return 1 - self.last_selection  # alternate: not-last-served
        if full0 and full1:
            self._blocked_on = 1 - self.last_selection  # block fairly
            self._blocked_cycles = 0
            return None
        return 1 if full0 else 0  # the only channel that can accept

    def tick(self, cycle: int) -> None:
        progressed = False
        if self._pipe and self._pipe[0][0] <= cycle:
            choice = self._choose()
            if choice is not None:
                _, item = self._pipe.popleft()
                self.outputs[choice].push(item)
                self.last_selection = choice
                self.sent[choice] += 1
                self.stats.items_processed += 1
                progressed = True
            else:
                self.stats.blocked_cycles += 1
                return
        if len(self._pipe) < self.latency and not self.input_fifo.is_empty():
            self._pipe.append((cycle + self.latency, self.input_fifo.pop()))
            progressed = True
        if progressed:
            self.stats.active_cycles += 1
        elif not self._pipe and self.input_fifo.is_empty():
            self.stats.starved_cycles += 1
        else:
            self.stats.blocked_cycles += 1

    def busy(self) -> bool:
        return bool(self._pipe)


class Merger(Module):
    """Algorithm VI.2: balanced two-way task merge."""

    def __init__(
        self,
        name: str,
        in0: StreamFifo,
        in1: StreamFifo,
        output_fifo: StreamFifo,
        latency: int = UNIT_LATENCY,
        priority_input: int | None = None,
    ) -> None:
        super().__init__(name)
        if latency < 1:
            raise SchedulerError("latency must be >= 1")
        if priority_input not in (None, 0, 1):
            raise SchedulerError("priority_input must be None, 0 or 1")
        self.inputs = (in0, in1)
        self.output_fifo = output_fifo
        self.latency = latency
        self.priority_input = priority_input
        self.last_selection = 0
        self._pipe: deque[tuple[int, Any]] = deque()
        self.received = [0, 0]

    def _choose(self) -> int | None:
        empty0 = self.inputs[0].is_empty()
        empty1 = self.inputs[1].is_empty()
        if empty0 and empty1:
            return None
        if self.priority_input is not None:
            # Scheduler module (2): unfinished queries preempt new ones.
            if not self.inputs[self.priority_input].is_empty():
                return self.priority_input
            return 1 - self.priority_input
        if not empty0 and not empty1:
            return 1 - self.last_selection  # alternate: not-last-served
        return 0 if not empty0 else 1

    def tick(self, cycle: int) -> None:
        progressed = False
        if self._pipe and self._pipe[0][0] <= cycle:
            if not self.output_fifo.is_full():
                _, item = self._pipe.popleft()
                self.output_fifo.push(item)
                self.stats.items_processed += 1
                progressed = True
            else:
                self.stats.blocked_cycles += 1
                return
        if len(self._pipe) < self.latency:
            choice = self._choose()
            if choice is not None:
                self._pipe.append((cycle + self.latency, self.inputs[choice].pop()))
                self.last_selection = choice
                self.received[choice] += 1
                progressed = True
        if progressed:
            self.stats.active_cycles += 1
        elif not self._pipe and self.inputs[0].is_empty() and self.inputs[1].is_empty():
            self.stats.starved_cycles += 1
        else:
            self.stats.blocked_cycles += 1

    def busy(self) -> bool:
        return bool(self._pipe)


class RoutingDispatcher(Dispatcher):
    """Dispatcher variant that routes by a destination bit (Task Router).

    The data-aware butterfly (Section IV-A's Task Router) uses the same
    two-output fabric but picks the output from bit ``bit`` of the item's
    ``dest`` attribute instead of availability; it blocks when the wanted
    output is full, preserving per-destination order.
    """

    def __init__(
        self,
        name: str,
        input_fifo: StreamFifo,
        out0: StreamFifo,
        out1: StreamFifo,
        bit: int,
        latency: int = UNIT_LATENCY,
    ) -> None:
        super().__init__(name, input_fifo, out0, out1, latency=latency)
        if bit < 0:
            raise SchedulerError("bit must be non-negative")
        self.bit = bit

    def _choose(self) -> int | None:
        item = self._pipe[0][1]
        wanted = (item.dest >> self.bit) & 1
        if self.outputs[wanted].is_full():
            return None
        return wanted
