"""RidgeWalker core: the paper's primary contribution, cycle-simulated."""

from repro.core.access_engine import AccessEngine, ResponseRouter
from repro.core.accelerator import RidgeWalker, RidgeWalkerRun, run_ridgewalker
from repro.core.config import RidgeWalkerConfig, theorem_fifo_depth
from repro.core.endpoints import FlatBalancer, QueryLoader, QueryWriter, TaskDemux
from repro.core.interconnect import (
    ButterflyBalancer,
    ButterflyRouter,
    DistributionTree,
    Forwarder,
)
from repro.core.pipeline import AsyncPipeline
from repro.core.recorder import WalkRecorder
from repro.core.sampling_module import SamplingModule, sampling_service_cycles
from repro.core.scheduling import Dispatcher, Merger, RoutingDispatcher
from repro.core.task import TERMINAL_STATUSES, Task, TaskStatus

__all__ = [
    "AccessEngine",
    "AsyncPipeline",
    "ButterflyBalancer",
    "ButterflyRouter",
    "Dispatcher",
    "DistributionTree",
    "FlatBalancer",
    "Forwarder",
    "Merger",
    "QueryLoader",
    "QueryWriter",
    "ResponseRouter",
    "RidgeWalker",
    "RidgeWalkerConfig",
    "RidgeWalkerRun",
    "RoutingDispatcher",
    "SamplingModule",
    "TERMINAL_STATUSES",
    "Task",
    "TaskDemux",
    "TaskStatus",
    "WalkRecorder",
    "run_ridgewalker",
    "sampling_service_cycles",
    "theorem_fifo_depth",
]
