"""The stateless task tuple (paper Section V-A, Figure 5a).

RidgeWalker decomposes each GRW hop into a minimal task
``Q_sx^y = <v_last, ID_y, x, ...>`` — the last visited vertex (or two for
second-order walks), the query id, and the hop counter.  Everything a hop
needs travels *inside* the task; no module keeps per-query state, which is
what allows out-of-order execution and per-cycle rescheduling without
rollback (Section V-C).

The simulator's :class:`Task` carries the same fields plus the transient
values a hop accumulates as it flows through the pipeline (decoded RP
entry, sampled index, priced burst length).  The paper bounds the packed
tuple at 512 bits; :meth:`Task.packed_bits` checks our field set against
that budget so the representation stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TaskStatus(Enum):
    """Lifecycle of one task as it flows through the pipeline."""

    RUNNING = "running"
    #: Reached a vertex with no outgoing edges (Figure 1b case II).
    TERMINATED_DANGLING = "dangling"
    #: Sampler found no admissible neighbor (MetaPath type mismatch).
    TERMINATED_FILTERED = "filtered"
    #: Probabilistic termination (PPR teleport, Figure 1b case I).
    TERMINATED_PROBABILISTIC = "probabilistic"
    #: Hit the configured maximum walk length.
    TERMINATED_LENGTH = "length"
    #: Dead slot in a bulk-synchronous schedule: the query terminated but
    #: its reserved slots keep cycling (the static-scheduling bubble the
    #: zero-bubble scheduler eliminates; used only by ablation modes).
    GHOST = "ghost"


#: Statuses that end a query (ghosts are *not* terminal: they keep
#: occupying slots, which is exactly their point).
TERMINAL_STATUSES = frozenset(
    {
        TaskStatus.TERMINATED_DANGLING,
        TaskStatus.TERMINATED_FILTERED,
        TaskStatus.TERMINATED_PROBABILISTIC,
        TaskStatus.TERMINATED_LENGTH,
    }
)


@dataclass(slots=True)
class Task:
    """One in-flight GRW hop.

    Persistent fields (the paper's tuple): ``query_id``, ``step``,
    ``vertex`` (v_last) and ``prev_vertex`` (second dependent vertex for
    higher-order walks).  The rest is per-hop transient state produced by
    Row Access (decoded RP entry) and Sampling (chosen index, priced
    column burst).
    """

    query_id: int
    vertex: int
    step: int = 0
    prev_vertex: int = -1
    status: TaskStatus = TaskStatus.RUNNING
    # --- filled by Row Access ---
    degree: int = -1
    column_channel: int = -1
    column_address: int = -1
    # --- filled by Sampling ---
    sample_index: int = -1
    column_burst_words: int = 1

    def is_terminal(self) -> bool:
        """Whether the owning query is finished."""
        return self.status in TERMINAL_STATUSES

    def is_running(self) -> bool:
        return self.status is TaskStatus.RUNNING

    def is_ghost(self) -> bool:
        return self.status is TaskStatus.GHOST

    def needs_memory(self) -> bool:
        """Terminated tasks flow through without touching memory.

        Ghosts *do* touch memory: a bulk-synchronous schedule "without
        early-termination handling" keeps issuing the dead slot's
        accesses every round, wasting bandwidth as well as issue slots —
        that waste is precisely what Figure 11's scheduler bars recover.
        """
        return self.status in (TaskStatus.RUNNING, TaskStatus.GHOST)

    def reset_hop_state(self) -> None:
        """Clear per-hop transients before recirculating to the next hop."""
        self.degree = -1
        self.column_channel = -1
        self.column_address = -1
        self.sample_index = -1
        self.column_burst_words = 1

    @staticmethod
    def packed_bits(vertex_bits: int = 40, query_bits: int = 32, step_bits: int = 16) -> int:
        """Size of the hardware task word for given field widths.

        Persistent fields only (two vertices, query id, step, status tag,
        RP-entry payload): must stay within the paper's 512-bit single
        AXI-Stream beat (Section V-C).
        """
        status_bits = 3
        rp_payload_bits = 256  # worst case: alias-table RP entry in flight
        return 2 * vertex_bits + query_bits + step_bits + status_bits + rp_payload_bits
