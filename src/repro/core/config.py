"""RidgeWalker accelerator configuration, including ablation switches.

The defaults reproduce the paper's U55C deployment: 16 asynchronous
pipelines (32 HBM channels / 2 per pipeline), 320 MHz core clock, up to
128 outstanding requests per access engine, and per-pipeline scheduler
FIFOs of depth ``1 + 4*log2(N)`` from Theorem VI.1 with ``mu = 1`` and
``C = 4*log2(N)`` (Section VI-D).

The two ablation switches mirror Figure 11's breakdown exactly:

* ``dynamic_scheduling=False`` statically binds queries to pipelines and
  (optionally) runs bulk-synchronous batches with ghost slots — the
  "Baseline" and "Baseline with Async Pipeline" bars;
* ``async_memory=False`` caps each access engine at one outstanding
  request — the "Baseline" and "Baseline with Zero-Bubble Scheduler" bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.memory.spec import HBM2_U55C, MemorySpec


def theorem_fifo_depth(num_pipelines: int, mu: float = 1.0) -> int:
    """Theorem VI.1 per-pipeline queue depth.

    Total depth ``D = N + mu*C*N`` with feedback delay ``C = 4*log2(N)``
    (2*log2(N) through the butterfly balancer plus the round trip to the
    pipeline, Section VI-D), i.e. ``1 + 4*log2(N)`` per pipeline.
    """
    if num_pipelines < 1:
        raise SchedulerError(f"num_pipelines must be >= 1, got {num_pipelines}")
    if num_pipelines == 1:
        return 1
    log_n = math.ceil(math.log2(num_pipelines))
    return int(1 + math.ceil(4 * mu * log_n))


@dataclass(frozen=True)
class RidgeWalkerConfig:
    """Full build-time configuration of the simulated accelerator."""

    #: Number of asynchronous pipelines (each uses one row + one column
    #: channel; 16 on U55C-class HBM devices, 2 on DDR4 devices).
    num_pipelines: int = 4

    #: Core clock in MHz (Table IV: 320 MHz for every kernel).
    core_mhz: float = 320.0

    #: Memory technology backing the channels.
    memory: MemorySpec = field(default=HBM2_U55C)

    #: Zero-bubble scheduler (True) vs static query-to-pipeline binding.
    dynamic_scheduling: bool = True

    #: Asynchronous access engine with many outstanding requests (True)
    #: vs one blocking request at a time.
    async_memory: bool = True

    #: Outstanding-request capacity of each access engine when async
    #: (paper: "up to 128 outstanding, non-blocking requests").
    engine_outstanding: int = 128

    #: Outstanding window when ``async_memory=False``: a conventional
    #: HLS dataflow pipeline with a standard AXI interface still keeps a
    #: handful of reads in flight, it just cannot decouple issue from
    #: response handling the way the asynchronous engine does.
    sync_outstanding: int = 4

    #: Bulk-synchronous batching for static schedules: terminated queries
    #: keep their slots as ghosts until the batch's walk length drains —
    #: the LightRW/FastRW behaviour the breakdown baseline copies.
    bulk_synchronous: bool = False

    #: Per-pipeline scheduler FIFO depth; ``None`` = Theorem VI.1 value.
    pipeline_fifo_depth: int | None = None

    #: Feedback FIFO depth between Column Access and the scheduler.  The
    #: paper backs deep buffers with BRAM (one block holds 512 entries,
    #: Section VIII-F); the default is sized so the admission limit below
    #: covers the bandwidth-delay product of the task loop (~16 pipelines
    #: x ~130-cycle loop at one step/cycle each).
    recirculation_depth: int = 192

    #: 'butterfly' = faithful Dispatcher/Merger network; 'flat' = a
    #: functionally equivalent single-module balancer with the same
    #: 2*log2(N) latency, ~3x faster to simulate (used by the large
    #: benchmark sweeps; equivalence is covered by tests).
    scheduler_detail: str = "butterfly"

    #: Cap on queries concurrently in flight; ``None`` derives a safe
    #: default from loop buffering so the task loop can never wedge.
    max_inflight_queries: int | None = None

    def __post_init__(self) -> None:
        if self.num_pipelines < 1:
            raise SchedulerError(f"num_pipelines must be >= 1, got {self.num_pipelines}")
        if self.num_pipelines & (self.num_pipelines - 1):
            raise SchedulerError(
                f"num_pipelines must be a power of two for the butterfly "
                f"interconnect, got {self.num_pipelines}"
            )
        if self.core_mhz <= 0:
            raise SchedulerError("core_mhz must be positive")
        if self.engine_outstanding < 1:
            raise SchedulerError("engine_outstanding must be >= 1")
        if self.sync_outstanding < 1:
            raise SchedulerError("sync_outstanding must be >= 1")
        if self.recirculation_depth < 2:
            raise SchedulerError("recirculation_depth must be >= 2")
        if self.scheduler_detail not in ("butterfly", "flat"):
            raise SchedulerError(
                f"scheduler_detail must be 'butterfly' or 'flat', "
                f"got {self.scheduler_detail!r}"
            )
        if self.pipeline_fifo_depth is not None and self.pipeline_fifo_depth < 1:
            raise SchedulerError("pipeline_fifo_depth must be >= 1")
        if self.memory.num_channels < 2 * self.num_pipelines:
            raise SchedulerError(
                f"{self.num_pipelines} pipelines need "
                f"{2 * self.num_pipelines} channels but {self.memory.name} "
                f"has {self.memory.num_channels}"
            )
        if self.bulk_synchronous and self.dynamic_scheduling:
            raise SchedulerError(
                "bulk_synchronous batching only applies to static scheduling"
            )

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def effective_fifo_depth(self) -> int:
        """Per-pipeline scheduler FIFO depth actually used."""
        if self.pipeline_fifo_depth is not None:
            return self.pipeline_fifo_depth
        return theorem_fifo_depth(self.num_pipelines)

    @property
    def effective_outstanding(self) -> int:
        """Outstanding requests per engine under the async switch."""
        return self.engine_outstanding if self.async_memory else self.sync_outstanding

    @property
    def scheduler_latency_cycles(self) -> int:
        """Total scheduling latency bound: ``4*log2(N)`` (Section VI-D)."""
        if self.num_pipelines == 1:
            return 2
        return 4 * math.ceil(math.log2(self.num_pipelines))

    def safe_inflight_limit(self) -> int:
        """Queries that can be in flight without wedging the task loop.

        This is the Query Loader's admission control.  Every query owns
        exactly one task, and the task loop is a cycle of bounded FIFOs,
        so gridlock (every buffer full, every module mutually blocked) is
        possible if admission is unbounded.  Keeping in-flight queries
        below the total recirculation capacity guarantees at least one
        recirculation FIFO always has space; that pipeline can always
        retire work, and the balancer reroutes the backlog into it — so
        the loop can never close into a deadlock cycle.
        """
        if self.max_inflight_queries is not None:
            return self.max_inflight_queries
        recirc_capacity = self.num_pipelines * self.recirculation_depth
        return max(self.num_pipelines, int(recirc_capacity * 0.8))

    def peak_random_tx_per_cycle(self) -> float:
        """Aggregate random transactions per core cycle of the channels
        this configuration provisions (2 per pipeline)."""
        per_channel = self.memory.channel_tx_per_core_cycle(self.core_mhz)
        return per_channel * 2 * self.num_pipelines

    def peak_msteps_per_second(self) -> float:
        """Ideal throughput if every channel issued at its random-access
        rate and each step cost one row + one column transaction."""
        per_channel_msteps = self.memory.random_tx_rate_mhz
        return min(per_channel_msteps, self.core_mhz) * self.num_pipelines
