"""Walk recording: reassembling query paths from out-of-order hops.

Tasks carry their query id precisely so results can be associated with
queries despite out-of-order completion (Section V-A: "tasks are tagged
with a unique query index for result tracking").  The recorder is the
simulator-side analogue of that mechanism plus the Query Writer's
path collection.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.walks.base import WalkResults


class WalkRecorder:
    """Collects per-query paths as hops complete in any order."""

    def __init__(self) -> None:
        self._paths: dict[int, list[int]] = {}
        self._finished: set[int] = set()
        self.total_hops = 0

    def start_query(self, query_id: int, start_vertex: int) -> None:
        """Register a query at injection time."""
        if query_id in self._paths:
            raise SimulationError(f"query {query_id} started twice")
        self._paths[query_id] = [start_vertex]

    def record_hop(self, query_id: int, vertex: int) -> None:
        """Append one traversed vertex to a query's path."""
        try:
            path = self._paths[query_id]
        except KeyError:
            raise SimulationError(f"hop recorded for unknown query {query_id}") from None
        if query_id in self._finished:
            raise SimulationError(f"hop recorded after query {query_id} finished")
        path.append(vertex)
        self.total_hops += 1

    def finish_query(self, query_id: int) -> None:
        """Mark a query complete (Query Writer write-back)."""
        if query_id not in self._paths:
            raise SimulationError(f"finish for unknown query {query_id}")
        if query_id in self._finished:
            raise SimulationError(f"query {query_id} finished twice")
        self._finished.add(query_id)

    @property
    def started(self) -> int:
        return len(self._paths)

    @property
    def finished(self) -> int:
        return len(self._finished)

    def all_done(self) -> bool:
        """Whether every started query has finished."""
        return len(self._finished) == len(self._paths)

    def path(self, query_id: int) -> list[int]:
        """Current path of one query (for debugging and tests)."""
        return list(self._paths[query_id])

    def to_results(self) -> WalkResults:
        """Assemble final :class:`WalkResults`, ordered by query id."""
        if not self.all_done():
            unfinished = sorted(set(self._paths) - self._finished)[:8]
            raise SimulationError(
                f"{len(self._paths) - len(self._finished)} queries unfinished "
                f"(first: {unfinished})"
            )
        results = WalkResults()
        for query_id in sorted(self._paths):
            results.add_path(self._paths[query_id])
        return results
