"""Butterfly interconnects built from Dispatcher/Merger primitives.

Three fabrics (paper Figures 7a/7b):

* :class:`DistributionTree` — 1-to-N dispatcher tree distributing newly
  loaded queries (scheduler module 1);
* :class:`ButterflyBalancer` — the N-to-N availability-routed balancer
  (scheduler module 3, Figure 7b): ``log2(N)`` stages, each pairing node
  ``i`` with ``i XOR 2^s`` through one Dispatcher and one Merger per
  node.  Dispatchers spread load by backpressure, so local congestion is
  averaged upstream exactly as the 100/4 pkt/s example in Section VI-C1;
* :class:`ButterflyRouter` — the same topology routed by destination bits
  (the Task Router of Section IV-A): stage ``s`` corrects bit ``s`` of
  the destination, giving a unique path per (input, dest) pair.

All units are fully pipelined (II=1, latency 2), so a task crosses any
fabric in ``2*log2(N)`` cycles when uncongested — the ``C`` that sizes
the Theorem VI.1 FIFOs.
"""

from __future__ import annotations

import math

from repro.errors import SchedulerError
from repro.sim.fifo import StreamFifo
from repro.sim.kernel import SimulationKernel
from repro.sim.module import Module
from repro.core.scheduling import Dispatcher, Merger, RoutingDispatcher

#: Capacity of the shallow CLB FIFOs between stages (the paper notes a
#: single-CLB 32-entry FIFO suffices; 4 keeps pipelining without bulk).
_WIRE_DEPTH = 4


def _require_power_of_two(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise SchedulerError(f"butterfly width must be a power of two, got {n}")
    return int(math.log2(n)) if n > 1 else 0


class Forwarder(Module):
    """Degenerate 1-wide fabric: copies input to output, II=1, latency 1."""

    def __init__(self, name: str, input_fifo: StreamFifo, output_fifo: StreamFifo) -> None:
        super().__init__(name)
        self.input_fifo = input_fifo
        self.output_fifo = output_fifo

    def tick(self, cycle: int) -> None:
        if not self.input_fifo.is_empty():
            if not self.output_fifo.is_full():
                self.output_fifo.push(self.input_fifo.pop())
                self.stats.active_cycles += 1
                self.stats.items_processed += 1
            else:
                self.stats.blocked_cycles += 1
        else:
            self.stats.starved_cycles += 1


class ButterflyBalancer:
    """N-to-N availability-routed balancer (Figure 7b).

    Wires ``inputs[i] -> stages -> outputs[i]``; callers own the input
    and output FIFOs, the balancer creates its internal wires and units
    and registers them with the kernel.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        name: str,
        inputs: list[StreamFifo],
        outputs: list[StreamFifo],
    ) -> None:
        if len(inputs) != len(outputs):
            raise SchedulerError("balancer needs equal input/output counts")
        self.width = len(inputs)
        num_stages = _require_power_of_two(self.width)
        self.name = name
        self.modules: list[Module] = []

        if num_stages == 0:
            self.modules.append(Forwarder(f"{name}.fwd", inputs[0], outputs[0]))
            kernel.add_modules(self.modules)
            return

        current = inputs
        for stage in range(num_stages):
            straight = [
                kernel.make_fifo(_WIRE_DEPTH, f"{name}.s{stage}.straight{i}")
                for i in range(self.width)
            ]
            cross = [
                kernel.make_fifo(_WIRE_DEPTH, f"{name}.s{stage}.cross{i}")
                for i in range(self.width)
            ]
            is_last = stage == num_stages - 1
            nxt = (
                outputs
                if is_last
                else [
                    kernel.make_fifo(_WIRE_DEPTH, f"{name}.s{stage}.out{i}")
                    for i in range(self.width)
                ]
            )
            for i in range(self.width):
                partner = i ^ (1 << stage)
                dispatcher = Dispatcher(
                    f"{name}.s{stage}.d{i}", current[i], straight[i], cross[i]
                )
                merger = Merger(
                    f"{name}.s{stage}.m{i}", straight[i], cross[partner], nxt[i]
                )
                self.modules.extend((dispatcher, merger))
            current = nxt
        kernel.add_modules(self.modules)

    @property
    def latency_bound(self) -> int:
        """Uncongested traversal latency: 2 units of 2 cycles per stage."""
        stages = _require_power_of_two(self.width)
        return 4 * stages


class ButterflyRouter:
    """N-to-N destination-routed butterfly (the Task Router).

    Items must expose an integer ``dest`` attribute in ``[0, N)``.
    Stage ``s`` sends the item straight or across depending on whether
    bit ``s`` of ``dest`` matches the node index, so after ``log2(N)``
    stages every item sits at its destination output.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        name: str,
        inputs: list[StreamFifo],
        outputs: list[StreamFifo],
    ) -> None:
        if len(inputs) != len(outputs):
            raise SchedulerError("router needs equal input/output counts")
        self.width = len(inputs)
        num_stages = _require_power_of_two(self.width)
        self.name = name
        self.modules: list[Module] = []

        if num_stages == 0:
            self.modules.append(Forwarder(f"{name}.fwd", inputs[0], outputs[0]))
            kernel.add_modules(self.modules)
            return

        current = inputs
        for stage in range(num_stages):
            straight = [
                kernel.make_fifo(_WIRE_DEPTH, f"{name}.s{stage}.straight{i}")
                for i in range(self.width)
            ]
            cross = [
                kernel.make_fifo(_WIRE_DEPTH, f"{name}.s{stage}.cross{i}")
                for i in range(self.width)
            ]
            is_last = stage == num_stages - 1
            nxt = (
                outputs
                if is_last
                else [
                    kernel.make_fifo(_WIRE_DEPTH, f"{name}.s{stage}.out{i}")
                    for i in range(self.width)
                ]
            )
            for i in range(self.width):
                partner = i ^ (1 << stage)
                # Output 0 keeps bit ``stage`` equal to the node's bit
                # (straight), output 1 flips it (cross to the partner).
                dispatcher = _BitRouter(
                    f"{name}.s{stage}.d{i}",
                    current[i],
                    straight[i],
                    cross[i],
                    bit=stage,
                    node_bit=(i >> stage) & 1,
                )
                merger = Merger(
                    f"{name}.s{stage}.m{i}", straight[i], cross[partner], nxt[i]
                )
                self.modules.extend((dispatcher, merger))
            current = nxt
        kernel.add_modules(self.modules)


class _BitRouter(RoutingDispatcher):
    """Stage dispatcher: straight if dest bit matches node bit, else cross."""

    def __init__(self, name, input_fifo, out0, out1, bit, node_bit):
        super().__init__(name, input_fifo, out0, out1, bit=bit)
        self.node_bit = node_bit

    def _choose(self):
        item = self._pipe[0][1]
        wanted = 0 if ((item.dest >> self.bit) & 1) == self.node_bit else 1
        if self.outputs[wanted].is_full():
            return None
        return wanted


class DistributionTree:
    """1-to-N dispatcher tree (scheduler module 1: initial balancing)."""

    def __init__(
        self,
        kernel: SimulationKernel,
        name: str,
        root: StreamFifo,
        outputs: list[StreamFifo],
    ) -> None:
        width = len(outputs)
        levels = _require_power_of_two(width)
        self.name = name
        self.modules: list[Module] = []
        if levels == 0:
            self.modules.append(Forwarder(f"{name}.fwd", root, outputs[0]))
            kernel.add_modules(self.modules)
            return
        current = [root]
        for level in range(levels):
            is_last = level == levels - 1
            nxt = (
                outputs
                if is_last
                else [
                    kernel.make_fifo(_WIRE_DEPTH, f"{name}.l{level}.out{i}")
                    for i in range(2 ** (level + 1))
                ]
            )
            for i, fifo in enumerate(current):
                self.modules.append(
                    Dispatcher(f"{name}.l{level}.d{i}", fifo, nxt[2 * i], nxt[2 * i + 1])
                )
            current = nxt
        kernel.add_modules(self.modules)
