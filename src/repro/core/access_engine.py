"""Asynchronous memory access engine (paper Section V-B, Figure 6).

The engine decouples request issue from response handling so the pipeline
never serializes on memory latency:

* the **request proxy** side pulls one task per cycle from the upstream
  FIFO, translates its vertex into a (channel, address, burst) triple via
  the graph layout, and issues a non-blocking request — up to
  ``outstanding_capacity`` in flight (128 in the paper's build, 1 in the
  synchronous ablation);
* task metadata bypasses the data path: the simulator carries the task
  object *as* the AXI transaction tag, playing the role of the BRAM
  metadata queue sized for the round-trip latency;
* the **response proxy** side reunites returned data with its task (the
  channel preserves issue order, as AXI does per transaction id) and
  forwards the completed task downstream, again one per cycle.

Terminated and ghost tasks flow through without touching memory — the
hardware equivalent is a bypass lane in the request proxy.

A single :class:`ResponseRouter` per memory system plays the butterfly
return network: it delivers each channel response to the response FIFO
named in its tag, honouring backpressure.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.memory.channel import MemoryRequest
from repro.memory.system import ChannelGroup, MemorySystem
from repro.sim.fifo import StreamFifo
from repro.sim.module import Module
from repro.core.task import Task

#: (group, channel index, burst words) chosen by the routing function.
RouteResult = tuple[ChannelGroup, int, int]


class AccessEngine(Module):
    """One Row Access or Column Access engine of one pipeline."""

    def __init__(
        self,
        name: str,
        input_fifo: StreamFifo,
        output_fifo: StreamFifo,
        response_fifo: StreamFifo,
        memory: MemorySystem,
        route: Callable[[Task], RouteResult],
        on_response: Callable[[Task, int], None],
        outstanding_capacity: int,
    ) -> None:
        super().__init__(name)
        if outstanding_capacity < 1:
            raise SimulationError("outstanding_capacity must be >= 1")
        self.input_fifo = input_fifo
        self.output_fifo = output_fifo
        self.response_fifo = response_fifo
        self._memory = memory
        self._route = route
        self._on_response = on_response
        self._capacity = outstanding_capacity
        self._outstanding = 0
        self.requests_issued = 0
        self.responses_handled = 0

    @property
    def outstanding(self) -> int:
        """Requests in flight right now."""
        return self._outstanding

    def tick(self, cycle: int) -> None:
        progressed = False

        # Response proxy: reunite one returned task per cycle.
        if not self.response_fifo.is_empty() and not self.output_fifo.is_full():
            task = self.response_fifo.pop()
            self._outstanding -= 1
            self._on_response(task, cycle)
            self.output_fifo.push(task)
            self.responses_handled += 1
            self.stats.items_processed += 1
            progressed = True

        # Request proxy: issue one new request per cycle.
        if not self.input_fifo.is_empty():
            task = self.input_fifo.front()
            if not task.needs_memory():
                # Bypass lane: terminated/ghost tasks skip memory entirely.
                if not self.output_fifo.is_full():
                    self.input_fifo.pop()
                    self.output_fifo.push(task)
                    self.stats.items_processed += 1
                    progressed = True
            elif self._outstanding < self._capacity:
                group, channel, burst = self._route(task)
                if self._memory.can_accept(group, channel):
                    self.input_fifo.pop()
                    self._memory.submit(
                        group,
                        channel,
                        MemoryRequest(tag=(self.response_fifo, task), burst_words=burst),
                    )
                    self._outstanding += 1
                    self.requests_issued += 1
                    progressed = True

        if progressed:
            self.stats.active_cycles += 1
        elif self.input_fifo.is_empty() and self._outstanding == 0:
            self.stats.starved_cycles += 1
        else:
            self.stats.blocked_cycles += 1

    def busy(self) -> bool:
        return self._outstanding > 0


class ResponseRouter(Module):
    """Delivers channel responses to their engines' response FIFOs.

    Plays the return half of the Task Router.  Delivery is out-of-order
    *across* destination engines within a bounded reorder window —
    matching the engine's 64-transaction-id reorder buffer (Section V-B)
    — but strictly in-order *per* destination: once one engine's FIFO
    refuses a response, later responses for that engine stay queued.
    Without the reorder window, one slow engine's backlog would convoy
    every other engine sharing the channel.
    """

    #: Matches the paper's "on-chip buffer supporting up to 64
    #: transaction IDs to reconstruct out-of-order returns".
    REORDER_WINDOW = 64

    def __init__(self, name: str, memory: MemorySystem) -> None:
        super().__init__(name)
        self._memory = memory
        self.delivered = 0

    def tick(self, cycle: int) -> None:
        delivered_this_cycle = 0
        for channel in self._memory.all_channels():
            if not channel.has_response():
                continue
            blocked: set[int] = set()

            def try_deliver(request) -> bool:
                fifo, task = request.tag
                if id(fifo) in blocked:
                    return False
                if fifo.is_full():
                    blocked.add(id(fifo))
                    return False
                fifo.push(task)
                return True

            delivered_this_cycle += channel.deliver_out_of_order(
                try_deliver, window=self.REORDER_WINDOW
            )
        if delivered_this_cycle:
            self.stats.active_cycles += 1
            self.delivered += delivered_this_cycle
        else:
            self.stats.starved_cycles += 1
