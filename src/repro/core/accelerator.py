"""The RidgeWalker accelerator: top-level assembly and run loop.

Builds the full Figure 4a machine over the simulation kernel:

* a :class:`~repro.memory.system.MemorySystem` with one row and one
  column channel per pipeline (Section IV-A's channel assignment);
* N :class:`~repro.core.pipeline.AsyncPipeline` instances;
* the Zero-Bubble Scheduler (Figure 7a): a distribution tree for new
  queries, per-pipeline Mergers prioritizing recirculated (unfinished)
  tasks, and the N-to-N butterfly balancer in front of the Theorem VI.1
  sized pipeline FIFOs — or, under ``dynamic_scheduling=False``, a
  static query-to-pipeline binding with direct feedback;
* per-pipeline demux into recirculation vs the Query Writer.

``run()`` executes a query batch to completion and returns both the
walk results (statistically interchangeable with the reference engine's)
and the cycle-accurate :class:`~repro.sim.stats.RunMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.access_engine import ResponseRouter
from repro.core.config import RidgeWalkerConfig
from repro.core.endpoints import FlatBalancer, QueryLoader, QueryWriter, TaskDemux
from repro.core.interconnect import ButterflyBalancer, DistributionTree
from repro.core.pipeline import AsyncPipeline
from repro.core.recorder import WalkRecorder
from repro.core.scheduling import Merger
from repro.errors import SchedulerError, WalkConfigError
from repro.graph.csr import CSRGraph
from repro.memory.layout import GraphMemoryLayout
from repro.memory.system import MemorySystem
from repro.rng.thundering import ThunderRing
from repro.sampling.base import RingRandomSource
from repro.sim.kernel import SimulationKernel
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkResults, WalkSpec

#: Depth of loader-side distribution FIFOs.
_NEW_TASK_DEPTH = 4
#: Writer-side completion FIFOs.
_FINISH_DEPTH = 8


@dataclass
class RidgeWalkerRun:
    """Everything one accelerator run produced."""

    results: WalkResults
    metrics: RunMetrics
    recorder: WalkRecorder


class RidgeWalker:
    """The simulated accelerator, built per (graph, walk spec, config)."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        config: RidgeWalkerConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config or RidgeWalkerConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, queries: Sequence[Query]) -> RidgeWalkerRun:
        """Execute a query batch to completion on a fresh machine.

        Returns complete paths for every query — use this for statistical
        correctness work (the walk results are interchangeable with the
        reference engine's).
        """
        if not queries:
            raise WalkConfigError("query batch must not be empty")
        machine = _Machine(self.graph, self.spec, self.config, self.seed, queries)
        return machine.execute()

    def run_streaming(
        self,
        queries: Sequence[Query],
        warmup_cycles: int = 4000,
        measure_cycles: int = 12_000,
        tracer: "UtilizationTracer | None" = None,
    ) -> RunMetrics:
        """Measure steady-state throughput under a continuous query stream.

        Mirrors the paper's methodology (Section VIII-A4): the machine is
        warmed up, queries arrive as an endless stream (the given batch
        repeats with fresh ids), and throughput is measured over a fixed
        window, excluding ramp-up and drain.  Returns metrics only —
        paths of still-running queries are incomplete by construction.

        Pass a :class:`~repro.sim.trace.UtilizationTracer` to record
        per-window activity of every pipeline's sampling stage and
        scheduler FIFO (the cycle-level visibility Section VI's design
        is built around).
        """
        if not queries:
            raise WalkConfigError("query batch must not be empty")
        if warmup_cycles < 0 or measure_cycles < 1:
            raise WalkConfigError("invalid warmup/measure cycle counts")
        machine = _Machine(
            self.graph, self.spec, self.config, self.seed, queries, endless=True
        )
        if tracer is not None:
            machine.attach_tracer(tracer)
        return machine.execute_streaming(warmup_cycles, measure_cycles)


class _Machine:
    """One fully wired instance; single use (run once, read stats)."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        config: RidgeWalkerConfig,
        seed: int,
        queries: Sequence[Query],
        endless: bool = False,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config
        self.queries = list(queries)
        self.endless = endless
        n = config.num_pipelines

        self.kernel = SimulationKernel(core_mhz=config.core_mhz)
        self.memory = self.kernel.add_memory(
            MemorySystem(
                spec=config.memory,
                core_mhz=config.core_mhz,
                num_row_channels=n,
                num_column_channels=n,
            )
        )
        self.layout = GraphMemoryLayout(
            graph,
            num_row_channels=n,
            num_column_channels=n,
            rp_entry_bits=spec.rp_entry_bits,
        )
        self.recorder = WalkRecorder()

        # ThundeRiNG streams: one per sampling module, one per column
        # engine (PPR termination draws), mirroring the per-module RNG
        # pairing of Section VII.
        self.ring = ThunderRing(num_streams=2 * n, seed=seed)
        sampler_proto = spec.make_sampler()
        sampler_proto.prepare(graph)

        # --- pipeline input/output plumbing -------------------------------
        depth = config.effective_fifo_depth
        pipe_in = [self.kernel.make_fifo(depth, f"sched.pipe_in{i}") for i in range(n)]
        pipe_out = [
            self.kernel.make_fifo(_NEW_TASK_DEPTH, f"pipe{i}.out") for i in range(n)
        ]
        recirc = [
            self.kernel.make_fifo(config.recirculation_depth, f"recirc{i}")
            for i in range(n)
        ]
        finished = [self.kernel.make_fifo(_FINISH_DEPTH, f"finished{i}") for i in range(n)]

        self.pipelines = [
            AsyncPipeline(
                kernel=self.kernel,
                index=i,
                graph=graph,
                layout=self.layout,
                memory=self.memory,
                spec=spec,
                sampler=sampler_proto,
                sampling_random=RingRandomSource(self.ring, i),
                termination_random=RingRandomSource(self.ring, n + i),
                recorder=self.recorder,
                input_fifo=pipe_in[i],
                output_fifo=pipe_out[i],
                outstanding_capacity=config.effective_outstanding,
            )
            for i in range(n)
        ]
        self.kernel.add_module(ResponseRouter("resp_router", self.memory))

        for i in range(n):
            self.kernel.add_module(
                TaskDemux(
                    f"demux{i}",
                    input_fifo=pipe_out[i],
                    recirculate_fifo=recirc[i],
                    finished_fifo=finished[i],
                    bulk_synchronous=config.bulk_synchronous,
                    max_length=spec.max_length,
                )
            )

        # --- scheduler -----------------------------------------------------
        if config.dynamic_scheduling:
            self._build_dynamic_scheduler(pipe_in, recirc)
        else:
            self._build_static_scheduler(pipe_in, recirc)

        self.writer = QueryWriter("writer", finished, self.recorder)
        self.kernel.add_module(self.writer)

    # ------------------------------------------------------------------
    # Scheduler variants
    # ------------------------------------------------------------------
    def _build_dynamic_scheduler(self, pipe_in, recirc) -> None:
        """Figure 7a: tree -> priority mergers -> butterfly balancer."""
        n = self.config.num_pipelines
        loader_out = self.kernel.make_fifo(_NEW_TASK_DEPTH, "loader.out")
        new_tasks = [
            self.kernel.make_fifo(_NEW_TASK_DEPTH, f"sched.new{i}") for i in range(n)
        ]
        merged = [
            self.kernel.make_fifo(_NEW_TASK_DEPTH, f"sched.merged{i}") for i in range(n)
        ]
        DistributionTree(self.kernel, "sched.tree", loader_out, new_tasks)
        for i in range(n):
            # Module (2): recirculated (unfinished) queries take priority.
            self.kernel.add_module(
                Merger(
                    f"sched.merge{i}",
                    in0=recirc[i],
                    in1=new_tasks[i],
                    output_fifo=merged[i],
                    priority_input=0,
                )
            )
        if self.config.scheduler_detail == "butterfly":
            ButterflyBalancer(self.kernel, "sched.balancer", merged, pipe_in)
        else:
            self.kernel.add_module(
                FlatBalancer(
                    "sched.balancer",
                    inputs=merged,
                    outputs=pipe_in,
                    latency=max(2, self.config.scheduler_latency_cycles // 2),
                )
            )
        self.loader = QueryLoader(
            "loader",
            queries=self.queries,
            outputs=[loader_out],
            recorder=self.recorder,
            max_inflight=self.config.safe_inflight_limit(),
            endless=self.endless,
        )
        self.kernel.add_module(self.loader)

    def _build_static_scheduler(self, pipe_in, recirc) -> None:
        """Static binding: query -> pipeline (id mod N), local feedback."""
        n = self.config.num_pipelines
        new_tasks = [
            self.kernel.make_fifo(_NEW_TASK_DEPTH, f"static.new{i}") for i in range(n)
        ]
        for i in range(n):
            self.kernel.add_module(
                Merger(
                    f"static.merge{i}",
                    in0=recirc[i],
                    in1=new_tasks[i],
                    output_fifo=pipe_in[i],
                    priority_input=0,
                )
            )
        batch = None
        if self.config.bulk_synchronous:
            # A LightRW-style design buffers a large query batch in BRAM;
            # half the admission limit keeps the batch comfortably inside
            # the loop while leaving the barrier's drain phase visible.
            batch = max(n, self.config.safe_inflight_limit() // 2)
        self.loader = QueryLoader(
            "loader",
            queries=self.queries,
            outputs=new_tasks,
            recorder=self.recorder,
            max_inflight=self.config.safe_inflight_limit(),
            static_binding=True,
            batch_size=batch,
            endless=self.endless,
        )
        self.kernel.add_module(self.loader)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self) -> RidgeWalkerRun:
        total = len(self.queries)

        def done() -> bool:
            return self.writer.completed >= total

        cycles = self.kernel.run_until(done)
        results = self.recorder.to_results()
        metrics = self._metrics(results.total_steps, max(1, cycles))
        return RidgeWalkerRun(results=results, metrics=metrics, recorder=self.recorder)

    def attach_tracer(self, tracer) -> None:
        """Watch every sampling stage and scheduler FIFO with ``tracer``."""
        self._tracer = tracer
        for pipeline in self.pipelines:
            tracer.watch_module(pipeline.sampling)
        for fifo in self.kernel.fifos:
            if fifo.name.startswith("sched.pipe_in"):
                tracer.watch_fifo(fifo)

    def execute_streaming(self, warmup_cycles: int, measure_cycles: int) -> RunMetrics:
        tracer = getattr(self, "_tracer", None)
        for _ in range(warmup_cycles):
            self.kernel.step()
        hops_before = self.recorder.total_hops
        words_before = self.memory.total_words_transferred()
        requests_before = self.memory.total_requests()
        starved_before = sum(p.compute_stats().starved_cycles for p in self.pipelines)
        total_before = sum(p.compute_stats().total_cycles() for p in self.pipelines)
        for _ in range(measure_cycles):
            self.kernel.step()
            if tracer is not None:
                tracer.sample(self.kernel.cycle)
        metrics = self._metrics(
            total_steps=self.recorder.total_hops - hops_before,
            cycles=measure_cycles,
        )
        metrics.random_transactions = self.memory.total_requests() - requests_before
        metrics.words_transferred = self.memory.total_words_transferred() - words_before
        metrics.bubble_cycles = (
            sum(p.compute_stats().starved_cycles for p in self.pipelines) - starved_before
        )
        metrics.pipeline_cycles = (
            sum(p.compute_stats().total_cycles() for p in self.pipelines) - total_before
        )
        return metrics

    def _metrics(self, total_steps: int, cycles: int) -> RunMetrics:
        return RunMetrics(
            total_steps=total_steps,
            cycles=max(1, cycles),
            core_mhz=self.config.core_mhz,
            random_transactions=self.memory.total_requests(),
            words_transferred=self.memory.total_words_transferred(),
            peak_random_tx_per_cycle=self.config.peak_random_tx_per_cycle(),
            bubble_cycles=sum(p.compute_stats().starved_cycles for p in self.pipelines),
            pipeline_cycles=sum(
                p.compute_stats().total_cycles() for p in self.pipelines
            ),
            extra={
                "ghost_laps": sum(
                    m.ghost_laps
                    for m in self.kernel.modules
                    if isinstance(m, TaskDemux)
                ),
                "num_pipelines": self.config.num_pipelines,
                "dynamic_scheduling": self.config.dynamic_scheduling,
                "async_memory": self.config.async_memory,
            },
        )


def run_ridgewalker(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    config: RidgeWalkerConfig | None = None,
    seed: int = 0,
) -> RidgeWalkerRun:
    """One-call convenience wrapper: build, run, return results+metrics."""
    return RidgeWalker(graph, spec, config=config, seed=seed).run(queries)
