"""The Sampling module of one asynchronous pipeline (Figure 4a, step 5).

Sampling sits between Row Access and Column Access.  It consumes one task
per cycle in the best case (uniform/alias sampling: the paired ThundeRiNG
stream delivers pipelined random numbers, so the draw itself never
stalls), but data-dependent samplers occupy the stage longer:

* **rejection sampling** (Node2Vec unweighted) loops until acceptance —
  one cycle per proposal, the "rejection retries" inner loop of
  Section VI-A's problem statement;
* **reservoir sampling** (Node2Vec weighted, MetaPath) streams the whole
  neighbor list through the stage at one neighbor per cycle, and prices
  the scan as a sequential burst on the column channel.

The *semantic* decision is made by the exact same sampler objects the
reference engine uses (statistical equivalence by construction); only the
*timing* comes from the outcome's cost counters.
"""

from __future__ import annotations

from repro.core.task import Task, TaskStatus
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, SampleOutcome, Sampler, StepContext
from repro.sim.fifo import StreamFifo
from repro.sim.module import Module
from repro.walks.base import WalkSpec

#: Cap on the burst length charged for one sampling-driven scan, so one
#: mega-hub vertex cannot stall a channel for thousands of cycles (the
#: hardware would tile such scans; 64 words = one 512B tile).
MAX_SCAN_BURST_WORDS = 64

#: 64-bit neighbor words one 512-bit AXI beat delivers per cycle — the
#: reservoir scanner consumes a full beat per cycle, not one neighbor.
SCAN_WORDS_PER_CYCLE = 8


def sampling_service_cycles(sampler: Sampler, outcome: SampleOutcome, degree: int) -> int:
    """Stage occupancy in cycles for one sampling decision."""
    if sampler.name in ("uniform", "alias"):
        return 1
    if sampler.name == "rejection":
        return max(1, outcome.proposals)
    # reservoir / inverse-transform: scan the list one 512-bit beat per
    # cycle, tiled at the burst cap.
    words = min(degree, MAX_SCAN_BURST_WORDS)
    return max(1, (words + SCAN_WORDS_PER_CYCLE - 1) // SCAN_WORDS_PER_CYCLE)


def column_burst_words(sampler: Sampler, outcome: SampleOutcome, degree: int) -> int:
    """Column-channel burst length charged for this hop's data movement."""
    if sampler.name == "uniform":
        return 1
    if sampler.name == "alias":
        return 2  # alias slot + neighbor, fetched in one burst
    if sampler.name == "rejection":
        # Each proposal reads one candidate; adjacency probes are bounded
        # scans of the previous vertex's list, tiled like reservoir scans.
        return min(max(1, outcome.neighbor_reads), MAX_SCAN_BURST_WORDS)
    # reservoir-style scans read the whole list once.
    return min(max(1, degree), MAX_SCAN_BURST_WORDS)


class SamplingModule(Module):
    """One pipeline's sampling stage with data-dependent occupancy."""

    def __init__(
        self,
        name: str,
        input_fifo: StreamFifo,
        output_fifo: StreamFifo,
        graph: CSRGraph,
        spec: WalkSpec,
        sampler: Sampler,
        random_source: RandomSource,
    ) -> None:
        super().__init__(name)
        self.input_fifo = input_fifo
        self.output_fifo = output_fifo
        self._graph = graph
        self._spec = spec
        self._sampler = sampler
        self._random = random_source
        self._current: Task | None = None
        self._ready_at = 0
        self.samples_taken = 0

    def tick(self, cycle: int) -> None:
        progressed = False
        # Retire the in-service task once its occupancy elapsed.
        if self._current is not None and cycle >= self._ready_at:
            if not self.output_fifo.is_full():
                self.output_fifo.push(self._current)
                self._current = None
                self.stats.items_processed += 1
                progressed = True
            else:
                self.stats.blocked_cycles += 1
                return
        # Accept and decide the next task.
        if self._current is None and not self.input_fifo.is_empty():
            task = self.input_fifo.pop()
            service = 1
            if task.is_running():
                service = self._decide(task)
            self._current = task
            self._ready_at = cycle + service
            progressed = True
        if progressed or self._current is not None:
            self.stats.active_cycles += 1
        else:
            self.stats.starved_cycles += 1

    def _decide(self, task: Task) -> int:
        """Run the sampler on a live task; returns stage occupancy."""
        if task.degree <= 0:
            raise SimulationError(
                f"running task for query {task.query_id} reached sampling with "
                f"degree {task.degree}; Row Access must terminate dangling walks"
            )
        context = StepContext(
            vertex=task.vertex,
            prev_vertex=(
                task.prev_vertex
                if self._spec.needs_prev_vertex and task.prev_vertex >= 0
                else None
            ),
            admissible_type=self._spec.admissible_type(task.step),
        )
        outcome = self._sampler.sample(self._graph, context, self._random)
        self.samples_taken += 1
        if outcome.terminated:
            task.status = TaskStatus.TERMINATED_FILTERED
            return 1
        task.sample_index = outcome.index
        task.column_burst_words = column_burst_words(self._sampler, outcome, task.degree)
        return sampling_service_cycles(self._sampler, outcome, task.degree)

    def busy(self) -> bool:
        return self._current is not None
