"""One asynchronous pipeline: Row Access -> Sampling -> Column Access.

Assembles the three modules of Figure 4a around their FIFOs and the two
access engines, with the routing and response callbacks that implement
the degree-aware memory layout (Figure 4b):

* **Row Access** targets the row channel owning the task's vertex; its
  response decodes the RP entry (degree, column channel, column address)
  into the task and terminates walks that reached a dangling vertex;
* **Sampling** draws the neighbor index (see
  :mod:`repro.core.sampling_module`);
* **Column Access** targets the column channel from the RP entry, and its
  response advances the walk: record the hop, bump the step counter,
  thread ``prev_vertex`` for second-order walks, and apply length or
  probabilistic (PPR) termination.
"""

from __future__ import annotations

from repro.core.access_engine import AccessEngine
from repro.core.recorder import WalkRecorder
from repro.core.sampling_module import SamplingModule
from repro.core.task import Task, TaskStatus
from repro.graph.csr import CSRGraph
from repro.memory.layout import GraphMemoryLayout
from repro.memory.system import ChannelGroup, MemorySystem
from repro.sampling.base import RandomSource, Sampler
from repro.sim.fifo import StreamFifo
from repro.sim.kernel import SimulationKernel
from repro.sim.module import Module
from repro.walks.base import WalkSpec

#: Depth of the intra-pipeline FIFOs ("shallow FIFOs within the
#: AXI-Stream protocol", Section IV-B).
_STAGE_FIFO_DEPTH = 4

#: Depth of the engines' response FIFOs (return-path buffering).
_RESPONSE_FIFO_DEPTH = 8


class AsyncPipeline:
    """One of the N asynchronous pipelines, fully wired."""

    def __init__(
        self,
        kernel: SimulationKernel,
        index: int,
        graph: CSRGraph,
        layout: GraphMemoryLayout,
        memory: MemorySystem,
        spec: WalkSpec,
        sampler: Sampler,
        sampling_random: RandomSource,
        termination_random: RandomSource,
        recorder: WalkRecorder,
        input_fifo: StreamFifo,
        output_fifo: StreamFifo,
        outstanding_capacity: int,
    ) -> None:
        self.index = index
        self._graph = graph
        self._layout = layout
        self._spec = spec
        self._termination_random = termination_random
        self._recorder = recorder

        name = f"pipe{index}"
        sp_in = kernel.make_fifo(_STAGE_FIFO_DEPTH, f"{name}.sp_in")
        ca_in = kernel.make_fifo(_STAGE_FIFO_DEPTH, f"{name}.ca_in")
        ra_resp = kernel.make_fifo(_RESPONSE_FIFO_DEPTH, f"{name}.ra_resp")
        ca_resp = kernel.make_fifo(_RESPONSE_FIFO_DEPTH, f"{name}.ca_resp")

        self.row_access = AccessEngine(
            name=f"{name}.ra",
            input_fifo=input_fifo,
            output_fifo=sp_in,
            response_fifo=ra_resp,
            memory=memory,
            route=self._route_row,
            on_response=self._on_row_response,
            outstanding_capacity=outstanding_capacity,
        )
        self.sampling = SamplingModule(
            name=f"{name}.sp",
            input_fifo=sp_in,
            output_fifo=ca_in,
            graph=graph,
            spec=spec,
            sampler=sampler,
            random_source=sampling_random,
        )
        self.column_access = AccessEngine(
            name=f"{name}.ca",
            input_fifo=ca_in,
            output_fifo=output_fifo,
            response_fifo=ca_resp,
            memory=memory,
            route=self._route_column,
            on_response=self._on_column_response,
            outstanding_capacity=outstanding_capacity,
        )
        kernel.add_modules([self.row_access, self.sampling, self.column_access])

    # ------------------------------------------------------------------
    # Row Access callbacks
    # ------------------------------------------------------------------
    def _route_row(self, task: Task):
        # Replicated hot entries are served from this pipeline's home
        # channel; everything else from its id-partitioned owner.
        home = self.index % self._layout.num_row_channels
        channel = self._layout.row_channel(task.vertex, home_channel=home)
        return ChannelGroup.ROW, channel, self._layout.rp_entry_words()

    def _on_row_response(self, task: Task, cycle: int) -> None:
        entry = self._layout.row_entry(task.vertex)
        task.degree = entry.degree
        task.column_channel = entry.column_channel
        task.column_address = entry.column_address
        if task.is_ghost():
            return  # dead slot: the fetch happened, nothing to decode
        if entry.degree == 0:
            # Figure 1b case II: no outgoing edges, the walk ends here.
            task.status = TaskStatus.TERMINATED_DANGLING

    # ------------------------------------------------------------------
    # Column Access callbacks
    # ------------------------------------------------------------------
    def _route_column(self, task: Task):
        if task.is_ghost():
            # Dead slot: the schedule still spends a column transaction.
            channel = task.query_id % self._layout.num_column_channels
            return ChannelGroup.COLUMN, channel, 1
        # Element interleaving: the sampled element's channel, not the
        # list-head channel — hub lists span all channels (Figure 4b).
        channel = self._layout.column_channel_of(task.column_address + task.sample_index)
        return ChannelGroup.COLUMN, channel, task.column_burst_words

    def _on_column_response(self, task: Task, cycle: int) -> None:
        if task.is_ghost():
            return  # demux advances the ghost's slot counter
        next_vertex = int(self._graph.col[task.column_address + task.sample_index])
        self._recorder.record_hop(task.query_id, next_vertex)
        task.prev_vertex = task.vertex
        task.vertex = next_vertex
        task.step += 1
        if task.step >= self._spec.max_length:
            task.status = TaskStatus.TERMINATED_LENGTH
        elif self._spec.terminates_probabilistically(task.step - 1, self._termination_random):
            task.status = TaskStatus.TERMINATED_PROBABILISTIC

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def modules(self) -> list[Module]:
        return [self.row_access, self.sampling, self.column_access]

    def compute_stats(self):
        """The sampling stage's stats — the pipeline-utilization signal
        the bubble-ratio metric is computed from."""
        return self.sampling.stats
