"""Query Loader, Query Writer, task demux and the flat balancer.

These are the boundary modules of the accelerator (Figure 4a steps 1 and
the write-back path) plus two simulation conveniences:

* :class:`TaskDemux` splits a pipeline's Column Access output into the
  recirculation stream (unfinished queries, fed back to the scheduler)
  and the completion stream (to the Query Writer);
* :class:`FlatBalancer` is a functional stand-in for the butterfly
  balancer with identical interface, work-conserving availability
  routing and the same ``2*log2(N)``-cycle latency, used by large
  benchmark sweeps where simulating 128 butterfly units dominates
  wall-clock time.  Equivalence of delivered throughput is covered by
  the scheduler test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.core.recorder import WalkRecorder
from repro.core.task import Task, TaskStatus
from repro.errors import SchedulerError
from repro.sim.fifo import StreamFifo
from repro.sim.module import Module
from repro.walks.base import Query


class QueryLoader(Module):
    """Streams queries into the scheduler, bounded by the in-flight cap.

    In bulk-synchronous mode (the Figure 11 baseline) the loader releases
    queries in batches and waits for the whole batch to drain, mimicking
    FastRW/LightRW's batched execution.
    """

    def __init__(
        self,
        name: str,
        queries: Sequence[Query],
        outputs: list[StreamFifo],
        recorder: WalkRecorder,
        max_inflight: int,
        static_binding: bool = False,
        batch_size: int | None = None,
        endless: bool = False,
    ) -> None:
        super().__init__(name)
        if not outputs:
            raise SchedulerError("loader needs at least one output")
        if max_inflight < 1:
            raise SchedulerError("max_inflight must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise SchedulerError("batch_size must be >= 1")
        self._queries = list(queries)
        self._outputs = outputs
        self._recorder = recorder
        self._max_inflight = max_inflight
        self._static = static_binding
        self._batch_size = batch_size
        self._endless = endless
        self._next = 0
        self.injected = 0

    def _inflight(self) -> int:
        return self._recorder.started - self._recorder.finished

    def _batch_open(self) -> bool:
        if self._batch_size is None:
            return True
        # A new batch opens only when everything injected so far finished.
        position_in_batch = self.injected % self._batch_size
        if position_in_batch != 0:
            return True
        return self._recorder.finished == self.injected

    def _peek_query(self) -> Query | None:
        """Next query to inject, wrapping with fresh ids when endless."""
        if self._next < len(self._queries):
            return self._queries[self._next]
        if not self._endless:
            return None
        base = self._queries[self._next % len(self._queries)]
        return Query(query_id=self._next, start_vertex=base.start_vertex)

    def tick(self, cycle: int) -> None:
        injected_this_cycle = 0
        # Up to one injection per output port per cycle.
        for port, fifo in enumerate(self._outputs):
            query = self._peek_query()
            if query is None:
                break
            if self._inflight() + injected_this_cycle >= self._max_inflight:
                break
            if not self._batch_open():
                break
            if self._static and port != query.query_id % len(self._outputs):
                continue
            if fifo.is_full():
                continue
            task = Task(query_id=query.query_id, vertex=query.start_vertex)
            self._recorder.start_query(query.query_id, query.start_vertex)
            fifo.push(task)
            self._next += 1
            self.injected += 1
            injected_this_cycle += 1
        if injected_this_cycle:
            self.stats.active_cycles += 1
            self.stats.items_processed += injected_this_cycle
        elif self.done():
            self.stats.starved_cycles += 1
        else:
            self.stats.blocked_cycles += 1

    def done(self) -> bool:
        """Whether every query has been injected (never, when endless)."""
        return not self._endless and self._next >= len(self._queries)


class QueryWriter(Module):
    """Collects finished queries from all pipelines (Figure 4a writer).

    Path contents were recorded hop-by-hop (the streaming-window write
    back overlaps execution, so it costs no simulated time); the writer's
    job is completion accounting and freeing the in-flight budget.
    """

    def __init__(self, name: str, inputs: list[StreamFifo], recorder: WalkRecorder) -> None:
        super().__init__(name)
        self._inputs = inputs
        self._recorder = recorder
        self.completed = 0

    def tick(self, cycle: int) -> None:
        drained = 0
        for fifo in self._inputs:
            task = fifo.try_pop()
            if task is not None:
                self._recorder.finish_query(task.query_id)
                self.completed += 1
                drained += 1
        if drained:
            self.stats.active_cycles += 1
            self.stats.items_processed += drained
        else:
            self.stats.starved_cycles += 1


class TaskDemux(Module):
    """Splits Column Access output into recirculation vs completion.

    In bulk-synchronous mode ("without early-termination handling",
    Figure 11 baseline) a query that dies before the full walk length
    keeps its reserved slots: the demux converts it into a *ghost* that
    recirculates — consuming one pipeline slot per remaining hop without
    touching memory — until the schedule would have retired it.  Those
    ghost laps are exactly the bubbles the zero-bubble scheduler removes.
    """

    def __init__(
        self,
        name: str,
        input_fifo: StreamFifo,
        recirculate_fifo: StreamFifo,
        finished_fifo: StreamFifo,
        bulk_synchronous: bool = False,
        max_length: int = 0,
    ) -> None:
        super().__init__(name)
        if bulk_synchronous and max_length < 1:
            raise SchedulerError("bulk_synchronous demux needs the walk length")
        self.input_fifo = input_fifo
        self.recirculate_fifo = recirculate_fifo
        self.finished_fifo = finished_fifo
        self._bulk = bulk_synchronous
        self._max_length = max_length
        self.ghost_laps = 0

    def tick(self, cycle: int) -> None:
        if self.input_fifo.is_empty():
            self.stats.starved_cycles += 1
            return
        task = self.input_fifo.front()

        if task.is_ghost():
            # One wasted slot per lap; retire once the schedule would have.
            if task.step + 1 >= self._max_length:
                task.status = TaskStatus.TERMINATED_LENGTH
                target = self.finished_fifo
            else:
                target = self.recirculate_fifo
        elif self._bulk and task.is_terminal() and task.step < self._max_length:
            # Early termination without handling: slot becomes a ghost.
            task.status = TaskStatus.GHOST
            target = self.recirculate_fifo
        elif task.is_terminal():
            target = self.finished_fifo
        else:
            target = self.recirculate_fifo

        if target.is_full():
            self.stats.blocked_cycles += 1
            return
        self.input_fifo.pop()
        if task.is_ghost():
            task.step += 1
            self.ghost_laps += 1
            task.reset_hop_state()
        elif not task.is_terminal():
            task.reset_hop_state()
        target.push(task)
        self.stats.active_cycles += 1
        self.stats.items_processed += 1


class FlatBalancer(Module):
    """Work-conserving N-to-N balancer with butterfly-equivalent latency.

    Each cycle it accepts up to one task per input and, after the modeled
    fabric latency, delivers each task to the least-occupied non-full
    output — the steady-state behaviour the butterfly converges to.
    """

    def __init__(
        self,
        name: str,
        inputs: list[StreamFifo],
        outputs: list[StreamFifo],
        latency: int,
    ) -> None:
        super().__init__(name)
        if latency < 1:
            raise SchedulerError("latency must be >= 1")
        self._inputs = inputs
        self._outputs = outputs
        self._latency = latency
        self._pipe: deque[tuple[int, Task]] = deque()
        self._capacity = max(2 * len(inputs), 2) * latency
        self._rr = 0

    def tick(self, cycle: int) -> None:
        progressed = False
        # Deliver every ready task to the emptiest available output.
        while self._pipe and self._pipe[0][0] <= cycle:
            candidates = [f for f in self._outputs if not f.is_full()]
            if not candidates:
                break
            target = min(candidates, key=lambda f: f.in_flight())
            _, task = self._pipe.popleft()
            target.push(task)
            self.stats.items_processed += 1
            progressed = True
        # Accept one task per input port, round-robin start for fairness.
        n = len(self._inputs)
        for k in range(n):
            if len(self._pipe) >= self._capacity:
                break
            fifo = self._inputs[(self._rr + k) % n]
            task = fifo.try_pop()
            if task is not None:
                self._pipe.append((cycle + self._latency, task))
                progressed = True
        self._rr = (self._rr + 1) % n
        if progressed or self._pipe:
            self.stats.active_cycles += 1
        else:
            self.stats.starved_cycles += 1

    def busy(self) -> bool:
        return bool(self._pipe)
