"""RNG substrate: bit-exact generators for the simulated hardware."""

from repro.rng.thundering import ThunderRing, stream_correlation
from repro.rng.xorshift import SplitMix64, XorShift128, splitmix64_next

__all__ = [
    "SplitMix64",
    "ThunderRing",
    "XorShift128",
    "splitmix64_next",
    "stream_correlation",
]
