"""Deterministic 64-bit generators used by the simulated hardware.

Hardware RNGs are bit-exact state machines, so the simulator uses explicit
integer implementations rather than numpy's Generator:

* :func:`splitmix64_next` / :class:`SplitMix64` — the standard seeding
  sequence (Steele et al.); used to expand one seed into many.
* :class:`XorShift128` — Marsaglia's xorshift128, the cheap-on-FPGA
  shift/xor core ThundeRiNG builds its output scrambler from.

All arithmetic is modulo 2**64 with explicit masking.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def splitmix64_next(state: int) -> tuple[int, int]:
    """Advance a splitmix64 state; returns ``(new_state, output)``."""
    state = (state + _SPLITMIX_GAMMA) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return state, z


class SplitMix64:
    """Streamable splitmix64, mainly used to derive sub-seeds."""

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Next 64-bit output."""
        self._state, value = splitmix64_next(self._state)
        return value

    def spawn_seeds(self, count: int) -> list[int]:
        """Derive ``count`` well-separated 64-bit seeds."""
        return [self.next_u64() for _ in range(count)]


@dataclass
class XorShift128:
    """Marsaglia xorshift128 with 32-bit lanes.

    Period ``2**128 - 1``; the all-zero state is forbidden, so seeding
    falls back to splitmix64 expansion which cannot produce it (we re-draw
    in the astronomically unlikely case).
    """

    x: int
    y: int
    z: int
    w: int

    @classmethod
    def from_seed(cls, seed: int) -> "XorShift128":
        """Seed the four 32-bit lanes from one 64-bit seed."""
        mixer = SplitMix64(seed)
        while True:
            a = mixer.next_u64()
            b = mixer.next_u64()
            lanes = (
                a & _MASK32,
                (a >> 32) & _MASK32,
                b & _MASK32,
                (b >> 32) & _MASK32,
            )
            if any(lanes):
                return cls(*lanes)

    def next_u32(self) -> int:
        """Next 32-bit output."""
        t = (self.x ^ ((self.x << 11) & _MASK32)) & _MASK32
        self.x, self.y, self.z = self.y, self.z, self.w
        self.w = (self.w ^ (self.w >> 19) ^ (t ^ (t >> 8))) & _MASK32
        return self.w

    def next_u64(self) -> int:
        """Next 64-bit output (two 32-bit draws)."""
        high = self.next_u32()
        return (high << 32) | self.next_u32()

    def uniform(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 usable bits."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))
