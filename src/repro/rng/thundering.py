"""ThundeRiNG-style multi-stream random number generation.

RidgeWalker pairs every sampling module with ThundeRiNG (Tan et al.,
ICS'21), an FPGA generator that produces many *mutually independent*
streams from one shared core.  The construction simulated here follows
that paper's recipe:

1. a single shared **MCG/LCG root** sequence advanced once per cycle
   (cheap: one multiplier on the FPGA, one shared state);
2. a per-stream **decorrelator**: each stream adds a distinct odd
   increment to the shared state, which yields distinct LCG sequences of
   the same multiplier (Lehmer-style stream splitting);
3. a per-stream **xorshift output scrambler** that breaks the linear
   lattice structure the LCG family shares.

The result is one 64-bit uniform per stream per ``tick()``, matching the
hardware's one-sample-per-cycle-per-pipeline rate, with no per-stream
multiplier (that is ThundeRiNG's resource win — captured in
:mod:`repro.resources.model`).

This avoids FastRW's design of pre-generating random numbers on the CPU
and streaming them through HBM, which the paper shows steals graph
bandwidth (Figure 8a discussion).
"""

from __future__ import annotations

from repro.errors import SamplingError
from repro.rng.xorshift import SplitMix64, XorShift128

_MASK64 = (1 << 64) - 1

# Knuth's MMIX LCG multiplier; one shared multiplier serves all streams.
_LCG_MULTIPLIER = 6364136223846793005
_LCG_INCREMENT = 1442695040888963407


class ThunderRing:
    """A bank of decorrelated uniform random streams.

    Parameters
    ----------
    num_streams:
        Number of independent streams (one per sampling module in the
        accelerator).
    seed:
        Root seed; every derived quantity is deterministic in it.
    """

    def __init__(self, num_streams: int, seed: int = 0) -> None:
        if num_streams < 1:
            raise SamplingError(f"num_streams must be >= 1, got {num_streams}")
        self._num_streams = num_streams
        mixer = SplitMix64(seed)
        self._root_state = mixer.next_u64()
        # Distinct odd increments decorrelate the streams (step 2).
        self._increments = [(mixer.next_u64() | 1) for _ in range(num_streams)]
        # Per-stream xorshift scramblers (step 3).
        self._scramblers = [XorShift128.from_seed(mixer.next_u64()) for _ in range(num_streams)]

    @property
    def num_streams(self) -> int:
        """Number of independent streams."""
        return self._num_streams

    def tick(self) -> None:
        """Advance the shared root state by one cycle."""
        self._root_state = (self._root_state * _LCG_MULTIPLIER + _LCG_INCREMENT) & _MASK64

    def next_u64(self, stream: int) -> int:
        """Next 64-bit uniform from ``stream`` (also advances the root).

        Hardware draws all streams each cycle; in simulation a stream is
        usually consumed on demand, so each draw advances the shared root
        once — the per-stream sequences remain decorrelated either way.
        """
        self._check_stream(stream)
        self.tick()
        mixed = (self._root_state + self._increments[stream]) & _MASK64
        return mixed ^ self._scramblers[stream].next_u64()

    def uniform(self, stream: int) -> float:
        """Uniform float in ``[0, 1)`` from ``stream``."""
        return (self.next_u64(stream) >> 11) * (1.0 / (1 << 53))

    def uniform_pair(self, stream: int) -> tuple[float, float]:
        """Two uniforms, as alias sampling consumes per draw."""
        return self.uniform(stream), self.uniform(stream)

    def randint(self, stream: int, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via 64-bit rejection.

        Rejection keeps the distribution exactly uniform, matching the
        hardware's modulo-free sampling datapath.
        """
        if bound <= 0:
            raise SamplingError(f"bound must be positive, got {bound}")
        # Zone rejection: accept draws below the largest multiple of bound.
        zone = (1 << 64) - ((1 << 64) % bound)
        while True:
            draw = self.next_u64(stream)
            if draw < zone:
                return draw % bound

    def _check_stream(self, stream: int) -> None:
        if not 0 <= stream < self._num_streams:
            raise SamplingError(
                f"stream {stream} out of range for {self._num_streams} streams"
            )


def stream_correlation(ring: ThunderRing, stream_a: int, stream_b: int, samples: int = 4096) -> float:
    """Empirical Pearson correlation between two streams' uniforms.

    Used by tests to check decorrelation: well-separated streams should
    show |r| within a few sigma of zero (sigma ~ 1/sqrt(samples)).
    """
    xs = []
    ys = []
    for _ in range(samples):
        xs.append(ring.uniform(stream_a))
        ys.append(ring.uniform(stream_b))
    n = float(samples)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    var_x = sum((x - mean_x) ** 2 for x in xs) / n
    var_y = sum((y - mean_y) ** 2 for y in ys) / n
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5
