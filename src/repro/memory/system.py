"""Multi-channel memory system with split row/column channel groups.

RidgeWalker assigns each asynchronous pipeline two dedicated channels —
one for Row Access and one for Column Access — "which avoids inter-channel
arbitration and contention" (Section IV-A).  The system object owns all
channels, splits them into the two groups, and gives engines a uniform
submit/collect interface keyed by (group, channel index).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import MemoryModelError
from repro.memory.channel import MemoryChannel, MemoryRequest
from repro.memory.spec import MemorySpec


class ChannelGroup(Enum):
    """Which CSR array a channel serves."""

    ROW = "row"
    COLUMN = "column"


class MemorySystem:
    """All memory channels of one device, split into row/column groups."""

    def __init__(
        self,
        spec: MemorySpec,
        core_mhz: float,
        num_row_channels: int,
        num_column_channels: int,
    ) -> None:
        total = num_row_channels + num_column_channels
        if total > spec.num_channels:
            raise MemoryModelError(
                f"layout needs {total} channels but {spec.name} exposes "
                f"{spec.num_channels}"
            )
        if num_row_channels < 1 or num_column_channels < 1:
            raise MemoryModelError("need at least one channel per group")
        self.spec = spec
        self.core_mhz = core_mhz
        self._row_channels = [
            MemoryChannel(spec, core_mhz, channel_id=i) for i in range(num_row_channels)
        ]
        self._column_channels = [
            MemoryChannel(spec, core_mhz, channel_id=num_row_channels + i)
            for i in range(num_column_channels)
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def channel(self, group: ChannelGroup, index: int) -> MemoryChannel:
        """The channel at ``index`` within ``group``."""
        channels = self._group(group)
        if not 0 <= index < len(channels):
            raise MemoryModelError(
                f"{group.value} channel {index} out of range (have {len(channels)})"
            )
        return channels[index]

    def submit(self, group: ChannelGroup, index: int, request: MemoryRequest) -> None:
        """Submit a request to one channel."""
        self.channel(group, index).submit(request)

    def can_accept(self, group: ChannelGroup, index: int) -> bool:
        """Whether the channel can take another request this cycle."""
        return self.channel(group, index).can_accept()

    @property
    def num_row_channels(self) -> int:
        return len(self._row_channels)

    @property
    def num_column_channels(self) -> int:
        return len(self._column_channels)

    def all_channels(self) -> list[MemoryChannel]:
        """Every channel, row group first."""
        return [*self._row_channels, *self._column_channels]

    def _group(self, group: ChannelGroup) -> list[MemoryChannel]:
        return self._row_channels if group is ChannelGroup.ROW else self._column_channels

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance every channel one core cycle."""
        for channel in self._row_channels:
            channel.tick()
        for channel in self._column_channels:
            channel.tick()

    def idle(self) -> bool:
        """Whether no channel holds pending or in-flight work."""
        return all(c.drain_complete() for c in self.all_channels())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_words_transferred(self) -> int:
        """Words moved across all channels (bandwidth numerator)."""
        return sum(c.stats.words_transferred for c in self.all_channels())

    def total_requests(self) -> int:
        """Random transactions accepted across all channels."""
        return sum(c.stats.requests_accepted for c in self.all_channels())

    def effective_bandwidth_gbs(self, cycles: int) -> float:
        """Achieved bandwidth over ``cycles`` core cycles, in GB/s.

        ``B_measured`` in the paper's utilization metric: bytes moved
        divided by elapsed time at the core clock.
        """
        if cycles <= 0:
            raise MemoryModelError("cycles must be positive")
        seconds = cycles / (self.core_mhz * 1e6)
        return self.total_words_transferred() * 8 / seconds / 1e9

    def utilization(self, cycles: int) -> float:
        """``B_measured / B_peak`` against the Equation (1) peak of the
        channels actually provisioned (not the full stack)."""
        provisioned = len(self.all_channels())
        peak = self.spec.random_tx_rate_mhz * 1e6 * provisioned * 8 / 1e9
        return self.effective_bandwidth_gbs(cycles) / peak
