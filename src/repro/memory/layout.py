"""Degree-aware graph memory layout (paper Figure 4b).

The CSR graph is mapped onto channels exactly as Section IV-B describes:

* the **row pointer array is partitioned** across the Row Access channels
  (vertex ``v``'s RP entry lives in row channel ``v mod N``);
* the **column list is element-interleaved** across the Column Access
  channels ("Interleaved Shared Memory" in Figure 4b): element ``e`` of
  the global CL array lives on channel ``e mod N``.  This is what keeps
  hub vertices from hot-spotting one channel — a hub's neighbor list
  spans every channel, and the randomly sampled index lands uniformly;
* each **RP entry encodes the column channel id and starting address**
  of the neighbor list, so Column Access needs no extra lookup — the
  Task Router reads the channel id straight out of the entry.

The layout also fixes per-entry widths.  Table I makes the RP entry
width algorithm-dependent (64b uniform / 128b reservoir / 256b alias);
column-list entries are 64-bit vertex ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryModelError
from repro.graph.csr import CSRGraph

#: Knuth multiplicative hash constant (64-bit golden ratio).
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class RowPointerEntry:
    """Decoded RP entry: what one Row Access response carries."""

    degree: int
    column_channel: int
    column_address: int


class GraphMemoryLayout:
    """Mapping from graph structure to channels and addresses.

    Parameters
    ----------
    graph:
        The CSR graph being laid out.
    num_row_channels, num_column_channels:
        How many channels each array is spread over (one of each per
        pipeline in the default RidgeWalker configuration).
    rp_entry_bits:
        Row-pointer entry width (Table I; depends on the sampler).
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_row_channels: int,
        num_column_channels: int,
        rp_entry_bits: int = 64,
        replicate_hot_entries: int | None = None,
    ) -> None:
        if num_row_channels < 1 or num_column_channels < 1:
            raise MemoryModelError("channel counts must be >= 1")
        if rp_entry_bits not in (64, 128, 256):
            raise MemoryModelError(
                f"rp_entry_bits must be one of 64/128/256 (Table I), got {rp_entry_bits}"
            )
        self.graph = graph
        self.num_row_channels = num_row_channels
        self.num_column_channels = num_column_channels
        self.rp_entry_bits = rp_entry_bits
        # Degree-aware replication: RP entries are read-only and tiny, so
        # the layout stores copies of the hottest (highest in-degree)
        # vertices' entries in *every* row channel; a reader then serves
        # them from its own home channel.  This is what keeps a single
        # celebrity vertex from serializing one channel — the "degree-
        # aware" part of Figure 4's graph memory.  Cost: K entries of
        # extra capacity per channel, no coherence (read-only).
        if replicate_hot_entries is None:
            replicate_hot_entries = max(64, graph.num_vertices // 64)
        if replicate_hot_entries < 0:
            raise MemoryModelError("replicate_hot_entries must be >= 0")
        self.replicate_hot_entries = min(replicate_hot_entries, graph.num_vertices)
        if self.replicate_hot_entries and graph.num_edges:
            in_degree = np.bincount(graph.col, minlength=graph.num_vertices)
            hottest = np.argsort(in_degree)[::-1][: self.replicate_hot_entries]
            self._replicated = frozenset(int(v) for v in hottest)
        else:
            self._replicated = frozenset()

    # ------------------------------------------------------------------
    # Channel placement
    # ------------------------------------------------------------------
    def row_channel(self, vertex: int, home_channel: int | None = None) -> int:
        """Row Access channel serving ``vertex``'s RP entry.

        The row pointer array is *randomly* partitioned (Section IV-B:
        "the CSR graph is randomly partitioned and distributed across all
        HBM channels") — a multiplicative hash of the vertex id, so that
        structured id patterns (RMAT's hot low-bit ids, for instance)
        cannot align with a channel.  Replicated hot entries are served
        from the reader's ``home_channel`` when one is given.
        """
        self._check_vertex(vertex)
        if home_channel is not None and vertex in self._replicated:
            self._check_row_channel(home_channel)
            return home_channel
        hashed = (vertex * _HASH_MULTIPLIER) & _MASK64
        return int(hashed >> 24) % self.num_row_channels

    def is_replicated(self, vertex: int) -> bool:
        """Whether this vertex's RP entry is replicated on every channel."""
        self._check_vertex(vertex)
        return vertex in self._replicated

    def column_channel(self, vertex: int) -> int:
        """Column Access channel holding the *start* of ``vertex``'s
        neighbor list (element-interleaved: later elements round-robin
        onward from here)."""
        self._check_vertex(vertex)
        return self.column_channel_of(int(self.graph.row_ptr[vertex]))

    def column_channel_of(self, element_index: int) -> int:
        """Channel holding global column-list element ``element_index``.

        Element-granularity interleaving: consecutive CL elements cycle
        through the column channels, so a random sampled index maps to a
        near-uniform channel — the round-robin shuffle of Section IV-B.
        """
        if element_index < 0:
            raise MemoryModelError(f"element index must be >= 0, got {element_index}")
        return element_index % self.num_column_channels

    # ------------------------------------------------------------------
    # Entry decoding and sizes
    # ------------------------------------------------------------------
    def row_entry(self, vertex: int) -> RowPointerEntry:
        """Decode the RP entry for ``vertex`` (Figure 4b's packed word)."""
        self._check_vertex(vertex)
        return RowPointerEntry(
            degree=self.graph.degree(vertex),
            column_channel=self.column_channel(vertex),
            column_address=int(self.graph.row_ptr[vertex]),
        )

    def rp_entry_words(self) -> int:
        """RP entry size in 64-bit words (burst length of one row access)."""
        return self.rp_entry_bits // 64

    def row_partition_bytes(self, channel: int) -> int:
        """Bytes of RP data stored in one row channel (hash partition)."""
        self._check_row_channel(channel)
        entries = sum(
            1
            for v in range(self.graph.num_vertices)
            if self.row_channel(v) == channel
        )
        return entries * self.rp_entry_bits // 8

    def column_partition_bytes(self, channel: int) -> int:
        """Bytes of CL data stored in one column channel.

        Element interleaving spreads the array to within one element per
        channel, independent of the degree distribution.
        """
        self._check_column_channel(channel)
        m = self.graph.num_edges
        n = self.num_column_channels
        elements = (m - channel + n - 1) // n if channel < m else 0
        return elements * 8

    def column_load_balance(self) -> float:
        """max/mean bytes across column channels (1.0 = perfectly even)."""
        sizes = [self.column_partition_bytes(c) for c in range(self.num_column_channels)]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.graph.num_vertices:
            raise MemoryModelError(
                f"vertex {vertex} out of range for {self.graph.num_vertices} vertices"
            )

    def _check_row_channel(self, channel: int) -> None:
        if not 0 <= channel < self.num_row_channels:
            raise MemoryModelError(f"row channel {channel} out of range")

    def _check_column_channel(self, channel: int) -> None:
        if not 0 <= channel < self.num_column_channels:
            raise MemoryModelError(f"column channel {channel} out of range")
