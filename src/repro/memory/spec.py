"""Memory technology specifications and the paper's Equation (1).

The paper derives the peak 64-bit *random-access* bandwidth of a memory
stack as::

    B_peak = f_mem / t_RRD * N_chn * 64bit/8          (Equation 1)

because every GRW step lands on a fresh DRAM row, so the row-to-row
activation delay ``t_RRD`` — not the pin bandwidth — caps random
transaction rate.  Each channel therefore sustains ``f_mem / t_RRD``
random 64-bit transactions per second, far below its sequential rate.

Specs below are calibrated against the paper's own numbers:

* Section IV-A: one HBM2 channel sustains ~284 MT/s of 64-bit random
  transactions on the U55C-class stack (450 MHz @ ``t_RRD`` ~= 3 memory
  cycles gives 150 MT/s *effective* once bank-group constraints are
  folded in; we keep the effective value because Table III's measured
  throughput (2098 MStep/s at 88% utilization over 16 pipelines) implies
  ~150 MT/s per channel: 2098e6 steps * 2 tx / 32 channels / 0.88).
* Table III row 2 gives the sequential bandwidths used for burst costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError

#: Word size of one random transaction, in bytes (64-bit per Equation 1).
RANDOM_TX_BYTES = 8


@dataclass(frozen=True)
class MemorySpec:
    """Timing/bandwidth parameters of one memory technology instance.

    Parameters
    ----------
    name:
        Technology label (``HBM2-u55c`` etc.).
    num_channels:
        Independent pseudo-channels exposed to the fabric.
    random_tx_rate_mhz:
        Per-channel random 64-bit transactions per microsecond
        (``f_mem / t_RRD`` in Equation 1 terms).
    sequential_gbs:
        Aggregate sequential bandwidth (Table III row 2) — used to price
        burst reads (alias tables, reservoir scans) relative to random
        transactions.
    round_trip_cycles:
        Request-to-response latency in *core* clock cycles (the paper's
        metadata queue is sized for ~100 cycles at 320 MHz).
    max_outstanding:
        Outstanding transactions one channel accepts (AXI capability;
        the paper's engine issues up to 128).
    """

    name: str
    num_channels: int
    random_tx_rate_mhz: float
    sequential_gbs: float
    round_trip_cycles: int = 100
    max_outstanding: int = 64

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise MemoryModelError(f"num_channels must be >= 1, got {self.num_channels}")
        if self.random_tx_rate_mhz <= 0:
            raise MemoryModelError("random_tx_rate_mhz must be positive")
        if self.sequential_gbs <= 0:
            raise MemoryModelError("sequential_gbs must be positive")
        if self.round_trip_cycles < 1:
            raise MemoryModelError("round_trip_cycles must be >= 1")
        if self.max_outstanding < 1:
            raise MemoryModelError("max_outstanding must be >= 1")

    def peak_random_bandwidth_gbs(self) -> float:
        """Equation (1): peak random-access bandwidth in GB/s."""
        return self.random_tx_rate_mhz * 1e6 * self.num_channels * RANDOM_TX_BYTES / 1e9

    def peak_random_tx_per_second(self) -> float:
        """Total random 64-bit transactions per second across channels."""
        return self.random_tx_rate_mhz * 1e6 * self.num_channels

    def channel_tx_per_core_cycle(self, core_mhz: float) -> float:
        """Random transactions one channel can issue per core clock cycle."""
        if core_mhz <= 0:
            raise MemoryModelError("core_mhz must be positive")
        return self.random_tx_rate_mhz / core_mhz

    def sequential_words_per_tx(self) -> float:
        """How many extra sequential 64-bit words fit in one random-tx slot.

        A burst of ``k`` words costs ``1 + (k - 1) / sequential_words_per_tx()``
        token units on the channel: the first word pays the row activation,
        subsequent words stream at the sequential rate.
        """
        seq_words_per_channel = (
            self.sequential_gbs * 1e9 / self.num_channels / RANDOM_TX_BYTES
        )
        return seq_words_per_channel / (self.random_tx_rate_mhz * 1e6)

    def burst_cost_tx(self, words: int) -> float:
        """Channel token cost of a burst of ``words`` sequential words."""
        if words < 1:
            raise MemoryModelError(f"burst must cover >= 1 word, got {words}")
        return 1.0 + (words - 1) / self.sequential_words_per_tx()


def equation1_peak_gbs(f_mem_mhz: float, t_rrd_ns: float, num_channels: int) -> float:
    """Equation (1) in its literal form: ``f_mem/t_RRD * N_chn * 8B``.

    ``f_mem/t_RRD`` is the row-activation-limited random transaction rate;
    with ``f_mem`` in MHz and ``t_RRD`` in nanoseconds the product
    ``f_mem * 1e6 / (t_RRD * f_mem * 1e6 * 1e-9) = 1/t_RRD * 1e9``
    collapses to activations per second.
    """
    if f_mem_mhz <= 0 or t_rrd_ns <= 0 or num_channels < 1:
        raise MemoryModelError("f_mem, t_RRD and channel count must be positive")
    activations_per_second = 1e9 / t_rrd_ns
    return activations_per_second * num_channels * RANDOM_TX_BYTES / 1e9


# ---------------------------------------------------------------------------
# Technology catalog (calibrated to Table III)
# ---------------------------------------------------------------------------

#: U55C-class HBM2: 32 channels, 460 GB/s sequential.
HBM2_U55C = MemorySpec(
    name="HBM2-u55c",
    num_channels=32,
    random_tx_rate_mhz=150.0,
    sequential_gbs=460.0,
    round_trip_cycles=100,
    max_outstanding=64,
)

#: U50-class HBM2: same channel count, lower clock (316 GB/s sequential).
HBM2_U50 = MemorySpec(
    name="HBM2-u50",
    num_channels=32,
    random_tx_rate_mhz=103.0,
    sequential_gbs=316.0,
    round_trip_cycles=100,
    max_outstanding=64,
)

#: U280-class HBM2 (Su et al. baseline board): 32 channels, 460 GB/s.
HBM2_U280 = MemorySpec(
    name="HBM2-u280",
    num_channels=32,
    random_tx_rate_mhz=140.0,
    sequential_gbs=460.0,
    round_trip_cycles=100,
    max_outstanding=64,
)

#: U250-class DDR4: 4 channels, 77 GB/s sequential.
DDR4_U250 = MemorySpec(
    name="DDR4-u250",
    num_channels=4,
    random_tx_rate_mhz=160.0,
    sequential_gbs=77.0,
    round_trip_cycles=80,
    max_outstanding=32,
)

#: VCK5000 DDR4 behind the hardened NoC: 4 channels, 102 GB/s sequential,
#: NoC adds latency and trims the random rate (interleaving disabled, as
#: Section VIII-E describes).
DDR4_VCK5000 = MemorySpec(
    name="DDR4-vck5000-noc",
    num_channels=4,
    random_tx_rate_mhz=116.0,
    sequential_gbs=102.0,
    round_trip_cycles=120,
    max_outstanding=32,
)

#: Hypothetical next-generation HBM3 stack: 64 pseudo-channels at a
#: higher per-channel random rate.  Section VIII-F argues the scheduler
#: scales "beyond 32 HBM channels"; this spec backs the scalability
#: study in ``benchmarks/bench_micro_scaling.py`` — it is a projection,
#: not a shipping device.
HBM3_PROJECTED = MemorySpec(
    name="HBM3-projected",
    num_channels=64,
    random_tx_rate_mhz=190.0,
    sequential_gbs=1200.0,
    round_trip_cycles=110,
    max_outstanding=96,
)
