"""Memory substrate: channel timing models, layouts, device specs."""

from repro.memory.channel import ChannelStats, MemoryChannel, MemoryRequest
from repro.memory.layout import GraphMemoryLayout, RowPointerEntry
from repro.memory.spec import (
    DDR4_U250,
    DDR4_VCK5000,
    HBM2_U50,
    HBM2_U280,
    HBM2_U55C,
    RANDOM_TX_BYTES,
    MemorySpec,
    equation1_peak_gbs,
)
from repro.memory.system import ChannelGroup, MemorySystem

__all__ = [
    "ChannelGroup",
    "ChannelStats",
    "DDR4_U250",
    "DDR4_VCK5000",
    "GraphMemoryLayout",
    "HBM2_U50",
    "HBM2_U280",
    "HBM2_U55C",
    "MemoryChannel",
    "MemoryRequest",
    "MemorySpec",
    "MemorySystem",
    "RANDOM_TX_BYTES",
    "RowPointerEntry",
    "equation1_peak_gbs",
]
