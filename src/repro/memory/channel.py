"""Cycle-level model of one memory channel.

The channel is the unit of contention in the whole simulator.  Its model
has three ingredients, each traceable to a real DRAM mechanism:

* **token-bucket issue rate** — a channel can start at most
  ``random_tx_rate / f_core`` random transactions per core cycle
  (row-activation limit, Equation 1).  Bursts consume extra fractional
  tokens priced by the sequential/random bandwidth ratio.
* **bounded outstanding window** — at most ``max_outstanding`` requests
  are in flight (AXI/controller capability); a full window back-pressures
  the requester, which is what serializes the naive single-outstanding
  baselines.
* **fixed round-trip latency** — issued requests complete a constant
  number of core cycles later (the paper sizes its metadata queue for
  ~100 cycles at 320 MHz).  Queueing delay adds on top when the issue
  rate saturates.

Responses return in issue order per channel, matching AXI's in-order
semantics per transaction id stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MemoryModelError
from repro.memory.spec import MemorySpec


@dataclass(frozen=True)
class MemoryRequest:
    """One memory access issued by an access engine.

    ``burst_words`` > 1 prices a sequential burst starting at a random
    address (alias-table slot reads, reservoir neighbor scans).
    ``tag`` is opaque to the channel and returned with the response —
    the simulated analogue of AXI transaction metadata.
    """

    tag: Any
    burst_words: int = 1

    def __post_init__(self) -> None:
        if self.burst_words < 1:
            raise MemoryModelError(f"burst_words must be >= 1, got {self.burst_words}")


@dataclass
class ChannelStats:
    """Bandwidth accounting for one channel."""

    requests_accepted: int = 0
    requests_completed: int = 0
    words_transferred: int = 0
    tokens_spent: float = 0.0
    busy_cycles: int = 0
    stalled_cycles: int = 0  # had pending work but no token/window space

    def bytes_transferred(self) -> int:
        return self.words_transferred * 8


class MemoryChannel:
    """One rate-limited, latency-bound memory channel."""

    def __init__(
        self,
        spec: MemorySpec,
        core_mhz: float,
        channel_id: int = 0,
        queue_capacity: int = 256,
    ) -> None:
        if queue_capacity < 1:
            raise MemoryModelError("queue_capacity must be >= 1")
        self.spec = spec
        self.channel_id = channel_id
        self._tokens_per_cycle = spec.channel_tx_per_core_cycle(core_mhz)
        self._tokens = 0.0
        self._latency = spec.round_trip_cycles
        self._max_outstanding = spec.max_outstanding
        self._queue_capacity = queue_capacity
        self._pending: deque[MemoryRequest] = deque()
        self._in_flight: deque[tuple[int, MemoryRequest]] = deque()  # (done_cycle, req)
        self._responses: deque[MemoryRequest] = deque()
        self._now = 0
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    # Requester side
    # ------------------------------------------------------------------
    def can_accept(self) -> bool:
        """Whether a new request can be enqueued this cycle."""
        return len(self._pending) < self._queue_capacity

    def submit(self, request: MemoryRequest) -> None:
        """Enqueue a request (caller must check :meth:`can_accept`)."""
        if not self.can_accept():
            raise MemoryModelError(
                f"channel {self.channel_id} request queue overflow "
                f"(capacity {self._queue_capacity})"
            )
        self._pending.append(request)
        self.stats.requests_accepted += 1

    def pending_count(self) -> int:
        """Requests waiting to be issued."""
        return len(self._pending)

    def in_flight_count(self) -> int:
        """Requests issued but not yet completed."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # Response side
    # ------------------------------------------------------------------
    def has_response(self) -> bool:
        """Whether a completed response is waiting to be collected."""
        return bool(self._responses)

    def peek_response(self) -> MemoryRequest:
        """Inspect the oldest completed response without consuming it."""
        if not self._responses:
            raise MemoryModelError(f"channel {self.channel_id} has no response ready")
        return self._responses[0]

    def deliver_out_of_order(self, try_deliver, window: int = 64) -> int:
        """Deliver responses out of order within a bounded reorder window.

        AXI returns responses in order *per transaction id* but ids
        complete independently; the paper's access engine keeps an
        on-chip reorder buffer of up to 64 transaction ids to exploit
        exactly that (Section V-B).  ``try_deliver(request) -> bool`` is
        called on up to ``window`` oldest responses; accepted ones are
        removed, rejected ones keep their relative order.  The caller is
        responsible for refusing later responses to a destination that
        already refused one, preserving per-destination ordering.
        """
        if window < 1:
            raise MemoryModelError(f"reorder window must be >= 1, got {window}")
        kept: list[MemoryRequest] = []
        delivered = 0
        limit = min(window, len(self._responses))
        for _ in range(limit):
            request = self._responses.popleft()
            if try_deliver(request):
                delivered += 1
            else:
                kept.append(request)
        for request in reversed(kept):
            self._responses.appendleft(request)
        return delivered

    def pop_response(self) -> MemoryRequest:
        """Collect the oldest completed response."""
        if not self._responses:
            raise MemoryModelError(f"channel {self.channel_id} has no response ready")
        return self._responses.popleft()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance one core cycle: issue, progress, complete."""
        self._now += 1
        # Refill the token bucket; cap so idle periods cannot bank
        # unbounded burst credit (row activations don't accumulate).
        self._tokens = min(self._tokens + self._tokens_per_cycle, 4.0)

        issued_any = False
        while self._pending and len(self._in_flight) < self._max_outstanding:
            head = self._pending[0]
            cost = self.spec.burst_cost_tx(head.burst_words)
            # A burst is issued once one activation's worth of credit is
            # available; its full cost may drive the balance negative,
            # which stalls subsequent issues while the burst streams —
            # exactly how a long burst occupies the channel for several
            # cycles.  (Requiring the full cost up front would make any
            # burst costing more than the bank cap unissuable.)
            if self._tokens < min(cost, 1.0):
                break
            self._tokens -= cost
            self._pending.popleft()
            self._in_flight.append((self._now + self._latency, head))
            self.stats.tokens_spent += cost
            self.stats.words_transferred += head.burst_words
            issued_any = True

        if issued_any or self._in_flight:
            self.stats.busy_cycles += 1
        elif self._pending:
            self.stats.stalled_cycles += 1

        while self._in_flight and self._in_flight[0][0] <= self._now:
            _, request = self._in_flight.popleft()
            self._responses.append(request)
            self.stats.requests_completed += 1

    def drain_complete(self) -> bool:
        """Whether nothing is pending, in flight, or waiting collection."""
        return not (self._pending or self._in_flight or self._responses)

    @property
    def now(self) -> int:
        """Current cycle count."""
        return self._now
