"""Graph substrate: CSR representation, generators, datasets, alias tables.

Public API::

    from repro.graph import (
        CSRGraph, from_edges, from_adjacency, from_adjacency_dict,
        rmat, powerlaw, erdos_renyi,
        load_dataset, dataset_names, get_spec,
        build_alias_table, AliasTable,
        degree_statistics, estimate_diameter,
    )
"""

from repro.graph.alias import (
    AliasTable,
    alias_expected_distribution,
    build_alias_slots,
    build_alias_table,
)
from repro.graph.builders import (
    from_adjacency,
    from_adjacency_dict,
    from_edges,
    paper_example_graph,
    validate_edge_weights,
)
from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    DATASET_ORDER,
    PAPER_DATASETS,
    DatasetSpec,
    assign_metapath_schema,
    dataset_names,
    get_spec,
    load_dataset,
    thunderrw_weights,
)
from repro.graph.generators import (
    BALANCED_INITIATOR,
    GRAPH500_INITIATOR,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    powerlaw,
    rmat,
    star_graph,
)
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graph.properties import (
    DegreeStatistics,
    degree_ccdf,
    degree_histogram,
    degree_statistics,
    estimate_diameter,
    fit_powerlaw_exponent,
    gini_coefficient,
    largest_out_component_fraction,
    working_set_bytes,
)

__all__ = [
    "AliasTable",
    "BALANCED_INITIATOR",
    "CSRGraph",
    "DATASET_ORDER",
    "DatasetSpec",
    "DegreeStatistics",
    "GRAPH500_INITIATOR",
    "PAPER_DATASETS",
    "alias_expected_distribution",
    "assign_metapath_schema",
    "build_alias_slots",
    "build_alias_table",
    "complete_graph",
    "cycle_graph",
    "dataset_names",
    "degree_ccdf",
    "degree_histogram",
    "degree_statistics",
    "erdos_renyi",
    "estimate_diameter",
    "from_adjacency",
    "from_adjacency_dict",
    "fit_powerlaw_exponent",
    "from_edges",
    "get_spec",
    "gini_coefficient",
    "largest_out_component_fraction",
    "load_dataset",
    "load_edge_list",
    "load_npz",
    "paper_example_graph",
    "path_graph",
    "powerlaw",
    "rmat",
    "save_edge_list",
    "save_npz",
    "star_graph",
    "thunderrw_weights",
    "validate_edge_weights",
    "working_set_bytes",
]
